//! Head-to-head comparison of all five schedulers on one scenario — the
//! single-point version of Figs. 6–8.
//!
//! Run with: `cargo run --release --example baseline_comparison [episodes]`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn main() {
    let mut env = EnvConfig::paper_default();
    env.num_pois = 100;
    env.horizon = 200;
    let episodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(200);

    println!(
        "== scheduler shoot-out: W={} P={} T={} ==",
        env.num_workers, env.num_pois, env.horizon
    );

    // DRL-CEWS: sparse reward + spatial curiosity.
    println!("training DRL-CEWS ({episodes} episodes)...");
    let mut cews_cfg = TrainerConfig::drl_cews(env.clone());
    cews_cfg.num_employees = 2;
    cews_cfg.ppo.epochs = 4;
    cews_cfg.ppo.minibatch = 128;
    let mut cews = Trainer::new(cews_cfg).unwrap();
    cews.train(episodes).unwrap();
    let mut cews_policy = PolicyScheduler::from_trainer(&cews, "drl-cews");

    // DPPO: dense reward, no curiosity — same trainer machinery.
    println!("training DPPO ({episodes} episodes)...");
    let mut dppo_cfg = TrainerConfig::dppo(env.clone());
    dppo_cfg.num_employees = 2;
    dppo_cfg.ppo.epochs = 4;
    dppo_cfg.ppo.minibatch = 128;
    let mut dppo = Trainer::new(dppo_cfg).unwrap();
    dppo.train(episodes).unwrap();
    let mut dppo_policy = PolicyScheduler::from_trainer(&dppo, "dppo");

    // Edics: one independent dense-reward agent per worker.
    println!("training Edics ({} episodes)...", episodes / 2);
    let mut edics = Edics::new(&env, EdicsConfig::default());
    let mut edics_env = CrowdsensingEnv::new(env.clone());
    for _ in 0..episodes / 2 {
        edics.train_episode(&mut edics_env);
    }

    println!("\nevaluating on 4 held-out scenarios:\n");
    println!("{:>10}  {:>7}  {:>7}  {:>7}", "algorithm", "kappa", "xi", "rho");
    let mut dnc = DncScheduler::default();
    let mut greedy = GreedyScheduler;
    let mut random = RandomScheduler;
    let schedulers: Vec<&mut dyn Scheduler> =
        vec![&mut cews_policy, &mut dppo_policy, &mut edics, &mut dnc, &mut greedy, &mut random];
    for s in schedulers {
        let name = s.name();
        let m = evaluate(s, &env, 4, 11);
        println!(
            "{:>10}  {:>7.3}  {:>7.3}  {:>7.3}",
            name, m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
        );
    }
}
