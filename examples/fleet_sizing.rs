//! Fleet sizing for traffic monitoring — the Fig. 6(b)/8(b) trade-off.
//!
//! A city deploys unmanned vehicles to stream data from road-side sensors.
//! More vehicles collect more data (κ rises with W), but past the point
//! where the map is covered, energy efficiency ρ collapses — the paper's
//! argument for right-sizing the fleet. This example sweeps W with the D&C
//! planner (training-free, so the sweep runs in seconds) and reports where
//! ρ peaks.
//!
//! Run with: `cargo run --release --example fleet_sizing`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn main() {
    let fleet_sizes = [1usize, 2, 4, 8, 16, 25];
    println!("== fleet sizing for vehicular traffic monitoring ==");
    println!("{:>7}  {:>7}  {:>7}  {:>7}", "fleet", "kappa", "xi", "rho");

    let mut best = (0usize, f32::MIN);
    for &w in &fleet_sizes {
        let mut env = EnvConfig::paper_default();
        env.num_workers = w;
        env.num_pois = 150;
        env.horizon = 150;
        let m = evaluate(&mut DncScheduler::default(), &env, 3, 21);
        println!(
            "{:>7}  {:>7.3}  {:>7.3}  {:>7.3}",
            w, m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
        );
        if m.energy_efficiency > best.1 {
            best = (w, m.energy_efficiency);
        }
    }
    println!(
        "\nmost energy-efficient fleet: {} vehicles (rho = {:.3}) — beyond it, extra \
         vehicles burn energy re-covering drained sensors",
        best.0, best.1
    );
}
