//! Post-earthquake rescue — the paper's motivating scenario (Section VII-A).
//!
//! Drones sweep a damage map whose PoIs are audio life detectors and
//! infrared cameras clustered around collapsed buildings, including a
//! semi-destroyed corner area reachable only through a narrow passage. The
//! example trains DRL-CEWS with the spatial curiosity model, prints the
//! training progress, then renders each drone's trajectory and the curiosity
//! heat map over the visited area.
//!
//! Run with: `cargo run --release --example earthquake_rescue [episodes]`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_rl::prelude::*;

fn main() {
    // The Fig. 2(b) map: collapsed buildings, a corner room with a narrow
    // passage at its top wall, 4 charging stations, 2 drones.
    let mut env_cfg = EnvConfig::paper_default();
    env_cfg.num_pois = 120;
    env_cfg.horizon = 200;

    let mut cfg = TrainerConfig::drl_cews(env_cfg.clone());
    cfg.num_employees = 2;
    cfg.ppo.epochs = 4;
    cfg.ppo.minibatch = 128;

    let episodes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(150);

    println!("== drone-assisted post-earthquake rescue ==");
    println!(
        "map {}x{}, {} sensors, {} charging stations, horizon {} slots",
        env_cfg.size_x, env_cfg.size_y, env_cfg.num_pois, env_cfg.num_stations, env_cfg.horizon
    );
    let mut trainer = Trainer::new(cfg).unwrap();
    for ep in 0..episodes {
        let s = trainer.train_episode().unwrap();
        if ep % 25 == 0 || ep + 1 == episodes {
            println!(
                "episode {ep:>4}: kappa={:.3} xi={:.3} rho={:.3} curiosity={:.1}",
                s.kappa, s.xi, s.rho, s.int_reward
            );
        }
    }

    // Fly one evaluation mission, recording the trajectory and the curiosity
    // value at every visited location.
    let spatial = trainer.curiosity().as_spatial().expect("spatial curiosity configured");
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    env.reset_with_seed(env_cfg.seed.wrapping_add(999));
    let mut rng = StdRng::seed_from_u64(17);
    let mut trajectory = Trajectory::new(env_cfg.num_workers);
    let mut heat = HeatMap::new(env_cfg.grid);
    trajectory.record(env.workers().iter().map(|w| w.pos));
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
    while !env.done() {
        let a = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
        let before: Vec<Point> = env.workers().iter().map(|w| w.pos).collect();
        env.step(&a.actions);
        for (wi, pos) in before.iter().enumerate() {
            let next = env.workers()[wi].pos;
            heat.deposit(&env_cfg, pos, spatial.prediction_error(wi, pos, a.moves[wi], &next));
        }
        trajectory.record(env.workers().iter().map(|w| w.pos));
    }

    let m = env.metrics();
    println!(
        "\nmission result: kappa={:.3} xi={:.3} rho={:.3}",
        m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
    );
    for w in 0..env_cfg.num_workers {
        println!(
            "\ndrone {w} trajectory (S start, E end, # rubble, * path), length {:.1}:",
            trajectory.path_length(w)
        );
        println!("{}", trajectory.ascii(&env_cfg, w));
    }
    println!("\ncuriosity heat map of the mission ({} cells visited):", heat.visited_cells());
    println!("{}", heat.ascii());
}
