//! Designing a custom scenario with `MapBuilder` and auditing an episode
//! with `EpisodeSummary`.
//!
//! A warehouse operator wants drones to stream inventory data from two
//! shelving aisles separated by a wall, with a single charging dock. The
//! map is hand-placed (no random generation), the D&C planner flies it, and
//! the episode summary reports utilization and charging behavior.
//!
//! Run with: `cargo run --release --example custom_map`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn main() {
    // 12×12 warehouse: a central wall with a gap, one aisle of sensors on
    // each side, a dock in the south-west corner.
    let mut env = MapBuilder::new(12.0, 12.0, 12)
        .horizon(150)
        .energy(35.0)
        .obstacle(5.5, 3.0, 6.5, 12.0) // central wall, gap at y < 3
        .poi_line(2.0, 2.0, 2.0, 10.0, 8, 0.8) // west aisle
        .poi_line(10.0, 2.0, 10.0, 10.0, 8, 0.8) // east aisle
        .station(1.0, 1.0)
        .worker(4.0, 1.5)
        .worker(8.0, 1.5)
        .build();

    println!("== warehouse inventory sweep ==");
    println!(
        "{} sensors across two aisles, wall gap at the south, dock at (1,1)\n",
        env.pois().len()
    );

    let mut rng = StdRng::seed_from_u64(7);
    let mut scheduler = DncScheduler::default();
    let mut summary = EpisodeSummary::new(env.workers().len());
    let mut trajectory = Trajectory::new(env.workers().len());
    trajectory.record(env.workers().iter().map(|w| w.pos));
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        let result = env.step(&actions);
        summary.record(&result);
        trajectory.record(env.workers().iter().map(|w| w.pos));
    }

    let m = env.metrics();
    println!(
        "metrics: kappa={:.3} xi={:.3} rho={:.3}",
        m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
    );
    println!("episode: {}\n", summary.digest());
    for (wi, w) in summary.workers.iter().enumerate() {
        println!(
            "drone {wi}: collected {:.2} over {:.1} distance ({:.2} data/energy), \
             {} charging slots, {} collisions",
            w.collected,
            w.traveled,
            w.efficiency(),
            w.charge_slots,
            w.collisions
        );
    }
    println!("\ndrone 0 path (S start, E end, # wall, * path):");
    println!("{}", trajectory.ascii(env.config(), 0));
}
