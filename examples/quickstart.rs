//! Quickstart: train DRL-CEWS briefly on a small scenario and evaluate it
//! against the Greedy baseline.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn main() {
    // The calibrated small scenario: long enough for the sparse-reward
    // pulses to be informative, small enough to finish in about a minute.
    let mut env = EnvConfig::paper_default();
    env.num_pois = 100;
    env.horizon = 200;
    env.num_workers = 2;

    let mut cfg = TrainerConfig::drl_cews(env.clone());
    cfg.num_employees = 2;
    cfg.ppo.epochs = 6;
    cfg.ppo.minibatch = 128;

    println!("training DRL-CEWS (2 employees, spatial curiosity, sparse reward)...");
    let mut trainer = Trainer::new(cfg).unwrap();
    let episodes = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(150usize);
    for ep in 0..episodes {
        let s = trainer.train_episode().unwrap();
        if ep % 5 == 0 || ep + 1 == episodes {
            println!(
                "episode {ep:>3}: kappa={:.3} xi={:.3} rho={:.3} r_ext={:+.2} r_int={:.2} collisions={}",
                s.kappa, s.xi, s.rho, s.ext_reward, s.int_reward, s.collisions
            );
        }
    }

    println!("\nevaluating against baselines (4 fresh scenarios each):");
    let mut policy = PolicyScheduler::from_trainer(&trainer, "drl-cews");
    for (name, m) in [
        ("drl-cews", evaluate(&mut policy, &env, 4, 1)),
        ("greedy", evaluate(&mut GreedyScheduler, &env, 4, 1)),
        ("random", evaluate(&mut RandomScheduler, &env, 4, 1)),
    ] {
        println!(
            "  {name:>8}: kappa={:.3} xi={:.3} rho={:.3}",
            m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
        );
    }
}
