//! Edge-case coverage for the autograd graph that the in-crate unit tests
//! don't reach: broadcast gradients, mixed-parent graphs, and shape guards.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::prelude::*;

#[test]
fn add_row_broadcast_bias_grad_sums_over_rows() {
    let mut store = ParamStore::new();
    let b = store.add("b", Tensor::from_vec(&[3], vec![0.1, 0.2, 0.3]));
    let mut g = Graph::new();
    let x = g.leaf(Tensor::zeros(&[4, 3]));
    let bn = g.param(&store, b);
    let y = g.add_row_broadcast(x, bn);
    let loss = g.sum_all(y);
    g.backward(loss, &mut store);
    // Each bias coordinate is added to 4 rows, so its gradient is 4.
    assert_eq!(store.grad(b).data(), &[4.0, 4.0, 4.0]);
}

#[test]
fn mean_rows_known_values() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::from_vec(&[2, 3], vec![1., 2., 3., 10., 20., 30.]));
    let m = g.mean_rows(x);
    assert_eq!(g.value(m).data(), &[2.0, 20.0]);
}

#[test]
fn graph_len_counts_nodes() {
    let mut g = Graph::new();
    assert!(g.is_empty());
    let a = g.leaf(Tensor::ones(&[2]));
    let b = g.leaf(Tensor::ones(&[2]));
    let _ = g.add(a, b);
    assert_eq!(g.len(), 3);
}

#[test]
fn leaf_without_params_gets_no_store_grads() {
    let mut store = ParamStore::new();
    let p = store.add("p", Tensor::ones(&[2]));
    let mut g = Graph::new();
    let a = g.leaf(Tensor::from_vec(&[2], vec![1.0, 2.0]));
    let sq = g.square(a);
    let loss = g.sum_all(sq);
    g.backward(loss, &mut store);
    assert_eq!(store.grad(p).data(), &[0.0, 0.0], "unrelated param must stay clean");
}

#[test]
fn grad_of_returns_none_when_disconnected() {
    let mut g = Graph::new();
    let a = g.leaf(Tensor::ones(&[1]));
    let b = g.leaf(Tensor::ones(&[1]));
    let loss = g.sum_all(a);
    assert!(g.grad_of(loss, b).is_none());
    assert!(g.grad_of(loss, a).is_some());
}

#[test]
fn two_backwards_accumulate_param_grads() {
    // The employee pattern: several minibatch graphs backward into the same
    // store between zero_grads calls.
    let mut store = ParamStore::new();
    let w = store.add("w", Tensor::from_vec(&[1], vec![2.0]));
    for _ in 0..2 {
        let mut g = Graph::new();
        let wn = g.param(&store, w);
        let sq = g.square(wn);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
    }
    // d(w²)/dw = 4 per pass, two passes accumulate to 8.
    assert!((store.grad(w).data()[0] - 8.0).abs() < 1e-5);
}

#[test]
#[should_panic(expected = "zip shape mismatch")]
fn mismatched_elementwise_shapes_panic() {
    let mut g = Graph::new();
    let a = g.leaf(Tensor::ones(&[2]));
    let b = g.leaf(Tensor::ones(&[3]));
    g.add(a, b);
}

#[test]
#[should_panic(expected = "matmul inner dims")]
fn mismatched_matmul_panics() {
    let mut g = Graph::new();
    let a = g.leaf(Tensor::ones(&[2, 3]));
    let b = g.leaf(Tensor::ones(&[4, 2]));
    g.matmul(a, b);
}

#[test]
#[should_panic(expected = "pick index")]
fn pick_column_out_of_range_panics() {
    let mut g = Graph::new();
    let a = g.leaf(Tensor::ones(&[2, 3]));
    g.pick_column(a, vec![0, 3]);
}

#[test]
fn op_names_are_stable() {
    use vc_nn::op::Op;
    assert_eq!(Op::Leaf.name(), "leaf");
    assert_eq!(Op::MatMul.name(), "matmul");
    assert_eq!(Op::LogSoftmax.name(), "log_softmax");
    assert_eq!(Op::Clamp { lo: 0.0, hi: 1.0 }.name(), "clamp");
}

#[test]
fn sigmoid_saturates_sanely() {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::from_vec(&[3], vec![-50.0, 0.0, 50.0]));
    let s = g.sigmoid(x);
    let v = g.value(s).data().to_vec();
    assert!(v[0] < 1e-6);
    assert!((v[1] - 0.5).abs() < 1e-6);
    assert!(v[2] > 1.0 - 1e-6);
    assert!(!g.value(s).has_non_finite());
}

#[test]
fn exp_ln_roundtrip_grads_are_identity_like() {
    // d/dx sum(ln(exp(x))) = 1.
    let mut g = Graph::new();
    let x = g.leaf(Tensor::from_vec(&[1, 4], vec![0.5, -0.25, 1.0, 0.0]));
    let e = g.exp(x);
    let l = g.ln(e, 1e-12);
    let loss = g.sum_all(l);
    let grad = g.grad_of(loss, x).unwrap();
    for &gv in grad.data() {
        assert!((gv - 1.0).abs() < 1e-4);
    }
}
