//! Fleet-scale smoke: a 1000-worker environment driven end-to-end through
//! both action sources the mega-fleet path supports — the deterministic
//! [`SweepScheduler`] patrol and the factored [`FleetActorCritic`] policy
//! (per-worker heads over a shared trunk, one forward for the whole fleet).
//!
//! This is the CI `fleet-scale` job's rollout leg; the bitwise SoA≡AoS
//! proof lives in `crates/env/tests/fleet_equivalence.rs` and the
//! zero-allocation guarantee in `crates/env/tests/fleet_alloc.rs`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;
use vc_nn::prelude::*;
use vc_rl::prelude::*;

const WORKERS: usize = 1000;

/// 1000 workers on a 64×64 map dense with PoIs — big enough that a scalar
/// per-entity path would be visibly slow, small enough for a debug-build CI
/// smoke.
fn mega_config() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.size_x = 64.0;
    cfg.size_y = 64.0;
    cfg.grid = 16;
    cfg.num_workers = WORKERS;
    cfg.num_pois = 2000;
    cfg.num_stations = 16;
    cfg.horizon = 50;
    cfg.obstacles.clear();
    cfg.poi_distribution = PoiDistribution::Uniform;
    cfg.seed = 99;
    cfg
}

#[test]
fn sweep_scheduler_drives_a_thousand_worker_episode() {
    let mut env = CrowdsensingEnv::new(mega_config());
    let mut rng = StdRng::seed_from_u64(7);
    let metrics = run_episode(&mut SweepScheduler::new(), &mut env, &mut rng);
    assert!(env.done());
    assert_eq!(env.time(), 50);
    assert!(
        metrics.data_collection_ratio > 0.05,
        "1000 sweeping workers on a dense map collected almost nothing \
         (ratio {})",
        metrics.data_collection_ratio
    );
    assert!(metrics.energy_efficiency.is_finite());
}

#[test]
fn factored_policy_rolls_a_thousand_worker_fleet() {
    let mut env = CrowdsensingEnv::new(mega_config());
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let net = FleetActorCritic::new(
        &mut store,
        NetConfig::for_scenario(env.config().grid, WORKERS),
        &mut rng,
    );

    for _ in 0..3 {
        let sampled = sample_action_fleet(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert_eq!(sampled.actions.len(), WORKERS);
        assert!(sampled.logp.is_finite());
        assert!(sampled.value.is_finite());
        let result = env.step(&sampled.actions);
        assert_eq!(result.outcomes.len(), WORKERS);
    }
    assert_eq!(env.time(), 3);

    // The factored heads keep the parameter count fleet-size-agnostic up to
    // the per-worker embedding rows — a joint head over 9^1000 · 2^1000
    // actions could not even be constructed.
    let values = state_values_fleet(&net, &store, &[&env]);
    assert_eq!(values.len(), 1);
    assert!(values[0].is_finite());
}
