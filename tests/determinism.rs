//! Determinism guarantees: identical seeds must give bit-identical models,
//! the foundation of every recorded experiment in EXPERIMENTS.md.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_env::prelude::*;

fn cfg() -> TrainerConfig {
    let mut env = EnvConfig::tiny();
    env.horizon = 12;
    let mut c = TrainerConfig::drl_cews(env).quick();
    c.num_employees = 1;
    c
}

#[test]
fn single_employee_training_is_bit_deterministic() {
    let mut a = Trainer::new(cfg()).unwrap();
    let mut b = Trainer::new(cfg()).unwrap();
    for _ in 0..3 {
        a.train_episode().unwrap();
        b.train_episode().unwrap();
    }
    assert_eq!(
        a.store().flat_values(),
        b.store().flat_values(),
        "same seed, same episode count, different parameters"
    );
    assert_eq!(a.history(), b.history());
}

#[test]
fn different_seeds_diverge() {
    let a = Trainer::new(cfg()).unwrap();
    let mut c2 = cfg();
    c2.seed = 999;
    let b = Trainer::new(c2).unwrap();
    assert_ne!(a.store().flat_values(), b.store().flat_values());
}

#[test]
fn scenario_generation_is_stable_across_env_instances() {
    let e = EnvConfig::paper_default();
    let a = CrowdsensingEnv::new(e.clone());
    let b = CrowdsensingEnv::new(e);
    assert_eq!(a.pois(), b.pois());
    assert_eq!(a.stations(), b.stations());
    assert_eq!(a.workers(), b.workers());
}

#[test]
fn curiosity_models_are_seed_deterministic() {
    let c = CuriosityChoice::paper_spatial();
    let env = EnvConfig::tiny();
    let a = c.build(&env, 7);
    let b = c.build(&env, 7);
    assert_eq!(a.params().flat_values(), b.params().flat_values());
    let d = c.build(&env, 8);
    assert_ne!(a.params().flat_values(), d.params().flat_values());
}
