//! Differential scheduler testing: every engineered scheduler steps through
//! the *same* seeded scenarios — the paper map plus every procedural family
//! from `vc_env::scenario_gen` — and a shared invariant checker audits every
//! slot. A scheduler may be smart or dumb, but it must never drive the
//! environment into a physically impossible state.
//!
//! Invariants checked at every time slot, for every scheduler:
//! * worker energy never goes negative and never exceeds capacity;
//! * no worker ever occupies an obstacle cell;
//! * `metrics::compute` outputs stay bounded (κ/ξ/fairness in [0,1],
//!   ρ finite and non-negative).
//!
//! On top of the physics audit, the per-slot cost chain pins the assignment
//! oracle's ordering: hungarian-cost ≤ greedy-cost ≤ expected-random-cost on
//! every slot's worker × PoI distance matrix, for every scenario family.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::hungarian;
use vc_baselines::prelude::*;
use vc_env::prelude::*;
use vc_env::scenario_gen::generate;

/// The shared arena: the paper map with its obstacle layout, short horizon.
fn arena() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 30;
    cfg.num_pois = 60;
    cfg
}

/// Steps `scheduler` through one full episode on a prebuilt environment,
/// asserting the physical invariants after every slot (obstacles come from
/// the env's own config, so generated-family layouts audit correctly).
/// Returns final metrics.
fn audit_episode(
    scheduler: &mut dyn Scheduler,
    env: &mut CrowdsensingEnv,
    seed: u64,
    context: &str,
) -> Metrics {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let name = scheduler.name();
    while !env.done() {
        let actions = scheduler.decide(env, &mut rng);
        assert_eq!(
            actions.len(),
            env.workers().len(),
            "{name} on {context}: action count must match worker count"
        );
        let res = env.step(&actions);
        let t = res.t;
        for (i, w) in env.workers().iter().enumerate() {
            assert!(
                w.energy >= 0.0,
                "{name} on {context} t={t}: worker {i} energy went negative ({})",
                w.energy
            );
            assert!(
                w.energy <= w.capacity,
                "{name} on {context} t={t}: worker {i} energy {} exceeds capacity {}",
                w.energy,
                w.capacity
            );
            for (k, rect) in env.config().obstacles.clone().iter().enumerate() {
                assert!(
                    !rect.contains(&w.pos),
                    "{name} on {context} t={t}: worker {i} at ({}, {}) is inside obstacle {k}",
                    w.pos.x,
                    w.pos.y
                );
            }
        }
        let m = env.metrics();
        assert!(
            (0.0..=1.0).contains(&m.data_collection_ratio),
            "{name} on {context} t={t}: kappa {} out of [0,1]",
            m.data_collection_ratio
        );
        assert!(
            (0.0..=1.0).contains(&m.remaining_data_ratio),
            "{name} on {context} t={t}: xi {} out of [0,1]",
            m.remaining_data_ratio
        );
        assert!(
            (0.0..=1.0).contains(&m.fairness_index),
            "{name} on {context} t={t}: fairness {} out of [0,1]",
            m.fairness_index
        );
        assert!(
            m.energy_efficiency.is_finite() && m.energy_efficiency >= 0.0,
            "{name} on {context} t={t}: rho {} is not a finite non-negative ratio",
            m.energy_efficiency
        );
    }
    env.metrics()
}

/// The original paper-map entry point: reseed `cfg` and audit one episode.
fn run_audited_episode(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, seed: u64) -> Metrics {
    let mut env = CrowdsensingEnv::new(cfg.clone());
    env.reset_with_seed(seed);
    audit_episode(scheduler, &mut env, seed, &format!("paper-map seed {seed}"))
}

#[test]
fn all_planners_respect_physics_on_identical_scenarios() {
    let cfg = arena();
    for seed in [3u64, 9, 17] {
        let mut edics = Edics::new(&cfg, EdicsConfig::default());
        let mut dnc = DncScheduler::default();
        let mut greedy = GreedyScheduler;
        let mut random = RandomScheduler;
        let mut hungarian = HungarianScheduler;
        let schedulers: [&mut dyn Scheduler; 5] =
            [&mut greedy, &mut edics, &mut dnc, &mut random, &mut hungarian];
        for s in schedulers {
            let m = run_audited_episode(s, &cfg, seed);
            // End-of-episode sanity on the same run: in these scenarios
            // every scheduler collects less data than it burns energy, so
            // ρ stays under 1 as well (empirical envelope on the paper map).
            assert!(
                m.energy_efficiency <= 1.0,
                "{} seed {seed}: rho {} above the paper-map envelope",
                s.name(),
                m.energy_efficiency
            );
        }
    }
}

#[test]
fn scenario_matrix_audits_every_family_times_every_scheduler() {
    // The full sweep: 5 families × 5 engineered schedulers × 2 seeds, each
    // episode audited slot by slot. Families regenerate per episode because
    // their entities (battery classes, drift trails, component-restricted
    // spawns) are richer than what `reset_with_seed` can rebuild.
    for family in ScenarioFamily::ALL {
        for seed in [5u64, 11] {
            let scn = generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
            let context = format!("{} seed {seed}", family.name());
            let mut edics = Edics::new(&scn.config, EdicsConfig::default());
            let mut dnc = DncScheduler::default();
            let mut greedy = GreedyScheduler;
            let mut random = RandomScheduler;
            let mut hungarian = HungarianScheduler;
            let schedulers: [&mut dyn Scheduler; 5] =
                [&mut hungarian, &mut greedy, &mut random, &mut edics, &mut dnc];
            for s in schedulers {
                let mut env = scn.try_env().unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
                audit_episode(s, &mut env, seed, &context);
            }
        }
    }
}

/// Sequential nearest-available assignment cost on a row-major matrix: each
/// row takes its cheapest untaken column, in row order — the greedy
/// assignment the one-step planners approximate.
fn greedy_assignment_cost(costs: &[f32], rows: usize, cols: usize) -> f32 {
    let mut taken = vec![false; cols];
    let mut total = 0.0f32;
    for r in 0..rows {
        let best = (0..cols)
            .filter(|c| !taken[*c])
            .min_by(|a, b| costs[r * cols + a].total_cmp(&costs[r * cols + b]));
        if let Some(c) = best {
            taken[c] = true;
            total += costs[r * cols + c];
        }
    }
    total
}

/// Expected cost of a uniformly random injective assignment: by symmetry
/// each row is equally likely to land on any column, so the expectation is
/// the sum of row means — a deterministic random-floor proxy.
fn expected_random_cost(costs: &[f32], rows: usize, cols: usize) -> f32 {
    (0..rows).map(|r| costs[r * cols..(r + 1) * cols].iter().sum::<f32>() / cols as f32).sum()
}

#[test]
fn per_slot_cost_chain_hungarian_greedy_random_on_every_family() {
    // On every slot of every family: the Hungarian total is the proven
    // minimum (≤ both by optimality), and greedy beats the random floor on
    // these dense distance matrices. Slots with fewer targets than workers
    // are skipped (the chain compares full assignments).
    const EPS: f32 = 1e-3;
    for family in ScenarioFamily::ALL {
        let mut slots_checked = 0usize;
        for seed in [5u64, 11] {
            let scn = generate(family, seed).unwrap();
            let mut env = scn.try_env().unwrap();
            let mut scheduler = HungarianScheduler;
            let mut rng = StdRng::seed_from_u64(seed);
            while !env.done() {
                let (costs, targets) = HungarianScheduler::cost_matrix(&env);
                let (w, n) = (env.workers().len(), targets.len());
                if n >= w && w > 0 {
                    let h = hungarian::solve(&costs, w, n).unwrap().total_cost;
                    let g = greedy_assignment_cost(&costs, w, n);
                    let r = expected_random_cost(&costs, w, n);
                    let t = env.time();
                    assert!(
                        h <= g + EPS,
                        "{} seed {seed} t={t}: hungarian {h} above greedy {g}",
                        family.name()
                    );
                    assert!(
                        g <= r + EPS,
                        "{} seed {seed} t={t}: greedy {g} above the random floor {r}",
                        family.name()
                    );
                    assert!(
                        h <= r + EPS,
                        "{} seed {seed} t={t}: hungarian {h} above the random floor {r}",
                        family.name()
                    );
                    slots_checked += 1;
                }
                let actions = scheduler.decide(&env, &mut rng);
                env.step(&actions);
            }
        }
        assert!(
            slots_checked > 0,
            "{}: no slot ever had enough targets — the chain was never exercised",
            family.name()
        );
    }
}

#[test]
fn greedy_lookahead_beats_the_random_floor() {
    // Averaged over episodes on a dense map, one-step lookahead must collect
    // at least as much as uniform-random motion (paper Table ordering).
    let cfg = arena();
    let greedy = evaluate_kappa(&mut GreedyScheduler, &cfg, 3, 9);
    let random = evaluate_kappa(&mut RandomScheduler, &cfg, 3, 9);
    assert!(
        greedy >= random,
        "greedy kappa {greedy} lost to random kappa {random} on the shared scenario"
    );
    assert!(greedy > 0.0, "greedy collected nothing at all");
}

/// Mean κ over `episodes` audited episodes (seeds `seed`, `seed+1`, ...).
fn evaluate_kappa(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, episodes: u64, seed: u64) -> f32 {
    let mut acc = 0.0;
    for ep in 0..episodes {
        acc += run_audited_episode(scheduler, cfg, seed + ep).data_collection_ratio;
    }
    acc / episodes as f32
}

#[test]
fn differential_runs_are_deterministic_per_seed() {
    // The audit is only trustworthy if a (scheduler, seed) pair replays to
    // the same final metrics — otherwise a latent violation could hide
    // behind run-to-run jitter.
    let cfg = arena();
    for seed in [9u64, 17] {
        let a = run_audited_episode(&mut GreedyScheduler, &cfg, seed);
        let b = run_audited_episode(&mut GreedyScheduler, &cfg, seed);
        assert_eq!(a, b, "greedy replay diverged at seed {seed}");
        let a = run_audited_episode(&mut DncScheduler::default(), &cfg, seed);
        let b = run_audited_episode(&mut DncScheduler::default(), &cfg, seed);
        assert_eq!(a, b, "d&c replay diverged at seed {seed}");
        let a = run_audited_episode(&mut HungarianScheduler, &cfg, seed);
        let b = run_audited_episode(&mut HungarianScheduler, &cfg, seed);
        assert_eq!(a, b, "hungarian replay diverged at seed {seed}");
    }
}
