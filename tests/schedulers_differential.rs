//! Differential scheduler testing: greedy, eDiCS and D&C all step through
//! the *same* seeded scenarios, and a shared invariant checker audits every
//! slot. A scheduler may be smart or dumb, but it must never drive the
//! environment into a physically impossible state.
//!
//! Invariants checked at every time slot, for every scheduler:
//! * worker energy never goes negative;
//! * no worker ever occupies an obstacle cell;
//! * `metrics::compute` outputs stay bounded (κ/ξ/fairness in [0,1],
//!   ρ finite and non-negative).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

/// The shared arena: the paper map with its obstacle layout, short horizon.
fn arena() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 30;
    cfg.num_pois = 60;
    cfg
}

/// Steps `scheduler` through one full episode on `cfg` reseeded with `seed`,
/// asserting the physical invariants after every slot. Returns final metrics.
fn run_audited_episode(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, seed: u64) -> Metrics {
    let mut env = CrowdsensingEnv::new(cfg.clone());
    env.reset_with_seed(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let name = scheduler.name();
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        assert_eq!(
            actions.len(),
            env.workers().len(),
            "{name}: action count must match worker count"
        );
        let res = env.step(&actions);
        let t = res.t;
        for (i, w) in env.workers().iter().enumerate() {
            assert!(
                w.energy >= 0.0,
                "{name} seed {seed} t={t}: worker {i} energy went negative ({})",
                w.energy
            );
            assert!(
                w.energy <= w.capacity,
                "{name} seed {seed} t={t}: worker {i} energy {} exceeds capacity {}",
                w.energy,
                w.capacity
            );
            for (k, rect) in cfg.obstacles.iter().enumerate() {
                assert!(
                    !rect.contains(&w.pos),
                    "{name} seed {seed} t={t}: worker {i} at ({}, {}) is inside obstacle {k}",
                    w.pos.x,
                    w.pos.y
                );
            }
        }
        let m = env.metrics();
        assert!(
            (0.0..=1.0).contains(&m.data_collection_ratio),
            "{name} seed {seed} t={t}: kappa {} out of [0,1]",
            m.data_collection_ratio
        );
        assert!(
            (0.0..=1.0).contains(&m.remaining_data_ratio),
            "{name} seed {seed} t={t}: xi {} out of [0,1]",
            m.remaining_data_ratio
        );
        assert!(
            (0.0..=1.0).contains(&m.fairness_index),
            "{name} seed {seed} t={t}: fairness {} out of [0,1]",
            m.fairness_index
        );
        assert!(
            m.energy_efficiency.is_finite() && m.energy_efficiency >= 0.0,
            "{name} seed {seed} t={t}: rho {} is not a finite non-negative ratio",
            m.energy_efficiency
        );
    }
    env.metrics()
}

#[test]
fn all_planners_respect_physics_on_identical_scenarios() {
    let cfg = arena();
    for seed in [3u64, 9, 17] {
        let mut edics = Edics::new(&cfg, EdicsConfig::default());
        let mut dnc = DncScheduler::default();
        let mut greedy = GreedyScheduler;
        let mut random = RandomScheduler;
        let schedulers: [&mut dyn Scheduler; 4] = [&mut greedy, &mut edics, &mut dnc, &mut random];
        for s in schedulers {
            let m = run_audited_episode(s, &cfg, seed);
            // End-of-episode sanity on the same run: in these scenarios
            // every scheduler collects less data than it burns energy, so
            // ρ stays under 1 as well (empirical envelope on the paper map).
            assert!(
                m.energy_efficiency <= 1.0,
                "{} seed {seed}: rho {} above the paper-map envelope",
                s.name(),
                m.energy_efficiency
            );
        }
    }
}

#[test]
fn greedy_lookahead_beats_the_random_floor() {
    // Averaged over episodes on a dense map, one-step lookahead must collect
    // at least as much as uniform-random motion (paper Table ordering).
    let cfg = arena();
    let greedy = evaluate_kappa(&mut GreedyScheduler, &cfg, 3, 9);
    let random = evaluate_kappa(&mut RandomScheduler, &cfg, 3, 9);
    assert!(
        greedy >= random,
        "greedy kappa {greedy} lost to random kappa {random} on the shared scenario"
    );
    assert!(greedy > 0.0, "greedy collected nothing at all");
}

/// Mean κ over `episodes` audited episodes (seeds `seed`, `seed+1`, ...).
fn evaluate_kappa(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, episodes: u64, seed: u64) -> f32 {
    let mut acc = 0.0;
    for ep in 0..episodes {
        acc += run_audited_episode(scheduler, cfg, seed + ep).data_collection_ratio;
    }
    acc / episodes as f32
}

#[test]
fn differential_runs_are_deterministic_per_seed() {
    // The audit is only trustworthy if a (scheduler, seed) pair replays to
    // the same final metrics — otherwise a latent violation could hide
    // behind run-to-run jitter.
    let cfg = arena();
    for seed in [9u64, 17] {
        let a = run_audited_episode(&mut GreedyScheduler, &cfg, seed);
        let b = run_audited_episode(&mut GreedyScheduler, &cfg, seed);
        assert_eq!(a, b, "greedy replay diverged at seed {seed}");
        let a = run_audited_episode(&mut DncScheduler::default(), &cfg, seed);
        let b = run_audited_episode(&mut DncScheduler::default(), &cfg, seed);
        assert_eq!(a, b, "d&c replay diverged at seed {seed}");
    }
}
