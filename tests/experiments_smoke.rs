//! Smoke tests: every experiment harness regenerates its table end-to-end
//! at the smallest scale.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::experiments::{fig2c, fig3, fig4, fig5, fig9, sweeps, table2, Scale};

#[test]
fn table2_smoke() {
    let t = table2::run(&Scale::smoke()).unwrap();
    assert_eq!(t.headers, vec!["batch", "employees", "kappa", "xi", "rho"]);
    assert!(!t.rows.is_empty());
    // Every metric cell parses as a float in range.
    for row in &t.rows {
        for cell in &row[2..] {
            let v: f32 = cell.parse().expect("numeric cell");
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}

#[test]
fn fig3_smoke() {
    let t = fig3::run(&Scale::smoke()).unwrap();
    assert_eq!(t.headers[0], "employees");
    // Relative column starts at 1.00 for the first entry.
    assert_eq!(t.rows[0][2], "1.00");
}

#[test]
fn fig4_smoke() {
    let t = fig4::run(&Scale::smoke()).unwrap();
    // 5 paper variants + the count-based reference, × 3 checkpoints.
    assert_eq!(t.rows.len(), 18);
    let variants: std::collections::HashSet<&String> = t.rows.iter().map(|r| &r[0]).collect();
    assert_eq!(variants.len(), 6);
}

#[test]
fn fig5_smoke() {
    let t = fig5::run(&Scale::smoke()).unwrap();
    assert_eq!(t.rows.len(), 12); // 4 mechanisms × 3 checkpoints
}

#[test]
fn sweep_smoke_single_axis() {
    let t = sweeps::run(&Scale::smoke(), sweeps::Axis::Stations).unwrap();
    // 2 sweep points × 5 algorithms at smoke scale.
    assert_eq!(t.rows.len(), 10);
    let algos: std::collections::HashSet<&String> = t.rows.iter().map(|r| &r[1]).collect();
    assert_eq!(algos.len(), 5);
}

#[test]
fn fig9_smoke() {
    let (t, snaps) = fig9::run(&Scale::smoke()).unwrap();
    // 2 methods × (initial + 4 checkpoints).
    assert_eq!(t.rows.len(), 10);
    assert_eq!(snaps.len(), 10);
    for (_, s) in &snaps {
        assert!(s.heatmap.visited_cells() > 0, "policy never moved");
    }
}

#[test]
fn fig2c_smoke() {
    let (t, run) = fig2c::run(&Scale::smoke()).unwrap();
    assert_eq!(t.rows.len(), 2); // two drones
    let art = run.trajectory.ascii(&run.env_cfg, 0);
    assert_eq!(art.lines().count(), run.env_cfg.grid);
}
