//! Cross-crate integration: record a *policy-driven* episode, serialize it,
//! replay it, and verify the replay reproduces the exact trajectory — on
//! the default map and on every procedural scenario family.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_rl::prelude::*;

#[test]
fn policy_episode_records_and_replays_exactly() {
    let mut env_cfg = EnvConfig::tiny();
    env_cfg.horizon = 15;
    let mut cfg = TrainerConfig::drl_cews(env_cfg.clone()).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train(2).unwrap();

    // Drive + record.
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    let mut recorder = Recorder::new(&env);
    let mut rng = StdRng::seed_from_u64(11);
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
    let mut live_positions = Vec::new();
    while !env.done() {
        let a = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
        recorder.log(&a.actions);
        env.step(&a.actions);
        live_positions.push(env.workers()[0].pos);
    }
    let recording = recorder.finish(&env);

    // Serialize / deserialize.
    let json = recording.to_json().unwrap();
    let restored = Recording::from_json(&json).unwrap();
    assert_eq!(restored, recording);

    // Replay and compare the trajectory step by step.
    let mut replay_positions = Vec::new();
    let replayed_env = restored.replay(|e, _| replay_positions.push(e.workers()[0].pos));
    assert_eq!(replay_positions, live_positions, "replay diverged from the live episode");
    assert_eq!(replayed_env.metrics(), env.metrics());
}

#[test]
fn summary_of_replay_matches_live_summary() {
    let mut env_cfg = EnvConfig::tiny();
    env_cfg.horizon = 10;
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    let mut recorder = Recorder::new(&env);
    let mut live = EpisodeSummary::new(1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sched = vc_baselines::greedy::GreedyScheduler;
    use vc_baselines::scheduler::Scheduler;
    while !env.done() {
        let actions = sched.decide(&env, &mut rng);
        recorder.log(&actions);
        let r = env.step(&actions);
        live.record(&r);
    }
    let recording = recorder.finish(&env);

    let mut replayed = EpisodeSummary::new(1);
    recording.replay(|_, r| replayed.record(r));
    assert_eq!(replayed, live);
}

#[test]
fn every_family_records_serializes_and_replays_bit_identically() {
    // The recorder snapshots the slot-0 entities, so the generated
    // families' richer templates (heterogeneous batteries, drift-placed
    // PoIs, scarce stations) must survive JSON and replay to the exact
    // trajectory — positions, energies and final metrics alike.
    use vc_baselines::scheduler::Scheduler;
    use vc_env::scenario_gen::generate;
    for family in ScenarioFamily::ALL {
        let scn = generate(family, 23).unwrap_or_else(|e| panic!("{family:?}: {e}"));
        let mut env = scn.try_env().unwrap_or_else(|e| panic!("{family:?}: {e}"));
        let mut recorder = Recorder::new(&env);
        let mut rng = StdRng::seed_from_u64(23);
        let mut sched = vc_baselines::greedy::GreedyScheduler;
        let mut live_states = Vec::new();
        while !env.done() {
            let actions = sched.decide(&env, &mut rng);
            recorder.log(&actions);
            env.step(&actions);
            live_states.push(env.workers().iter().map(|w| (w.pos, w.energy)).collect::<Vec<_>>());
        }
        let recording = recorder.finish(&env);

        let json = recording.to_json().unwrap_or_else(|e| panic!("{family:?}: {e}"));
        let restored = Recording::from_json(&json).unwrap_or_else(|e| panic!("{family:?}: {e}"));
        assert_eq!(restored, recording, "{family:?}: JSON round-trip altered the recording");

        let mut replay_states = Vec::new();
        let replayed_env = restored.replay(|e, _| {
            replay_states.push(e.workers().iter().map(|w| (w.pos, w.energy)).collect::<Vec<_>>());
        });
        assert_eq!(replay_states, live_states, "{family:?}: replay trajectory diverged");
        assert_eq!(replayed_env.metrics(), env.metrics(), "{family:?}: final metrics diverged");
        assert_eq!(
            replayed_env.workers(),
            env.workers(),
            "{family:?}: final worker state diverged"
        );
    }
}
