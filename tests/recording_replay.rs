//! Cross-crate integration: record a *policy-driven* episode, serialize it,
//! replay it, and verify the replay reproduces the exact trajectory.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_rl::prelude::*;

#[test]
fn policy_episode_records_and_replays_exactly() {
    let mut env_cfg = EnvConfig::tiny();
    env_cfg.horizon = 15;
    let mut cfg = TrainerConfig::drl_cews(env_cfg.clone()).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train(2).unwrap();

    // Drive + record.
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    let mut recorder = Recorder::new(&env);
    let mut rng = StdRng::seed_from_u64(11);
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
    let mut live_positions = Vec::new();
    while !env.done() {
        let a = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
        recorder.log(&a.actions);
        env.step(&a.actions);
        live_positions.push(env.workers()[0].pos);
    }
    let recording = recorder.finish(&env);

    // Serialize / deserialize.
    let json = recording.to_json().unwrap();
    let restored = Recording::from_json(&json).unwrap();
    assert_eq!(restored, recording);

    // Replay and compare the trajectory step by step.
    let mut replay_positions = Vec::new();
    let replayed_env = restored.replay(|e, _| replay_positions.push(e.workers()[0].pos));
    assert_eq!(replay_positions, live_positions, "replay diverged from the live episode");
    assert_eq!(replayed_env.metrics(), env.metrics());
}

#[test]
fn summary_of_replay_matches_live_summary() {
    let mut env_cfg = EnvConfig::tiny();
    env_cfg.horizon = 10;
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    let mut recorder = Recorder::new(&env);
    let mut live = EpisodeSummary::new(1);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sched = vc_baselines::greedy::GreedyScheduler;
    use vc_baselines::scheduler::Scheduler;
    while !env.done() {
        let actions = sched.decide(&env, &mut rng);
        recorder.log(&actions);
        let r = env.step(&actions);
        live.record(&r);
    }
    let recording = recorder.finish(&env);

    let mut replayed = EpisodeSummary::new(1);
    recording.replay(|_, r| replayed.record(r));
    assert_eq!(replayed, live);
}
