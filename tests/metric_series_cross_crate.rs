//! Cross-crate integration: the metric time series tracks a trained policy's
//! mission progress and distinguishes earlier collectors via AUC.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn run_series(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, seed: u64) -> MetricSeries {
    let mut env = CrowdsensingEnv::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = MetricSeries::new();
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        env.step(&actions);
        series.sample(&env);
    }
    series
}

#[test]
fn series_tracks_full_episode_and_is_monotone() {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 60;
    cfg.num_pois = 80;
    let series = run_series(&mut DncScheduler::default(), &cfg, 1);
    assert_eq!(series.len(), cfg.horizon);
    for w in series.kappa.windows(2) {
        assert!(w[1] >= w[0] - 1e-6);
    }
    assert!(series.kappa_auc() > 0.0);
}

#[test]
fn dnc_collects_earlier_than_random_by_auc() {
    // Both may end in similar places on a long horizon; the lookahead
    // planner must get there *sooner* (higher area under the κ curve).
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 80;
    cfg.num_pois = 80;
    let dnc = run_series(&mut DncScheduler::default(), &cfg, 2);
    let random = run_series(&mut RandomScheduler, &cfg, 2);
    assert!(
        dnc.kappa_auc() > random.kappa_auc(),
        "d&c AUC {} vs random AUC {}",
        dnc.kappa_auc(),
        random.kappa_auc()
    );
}

#[test]
fn trained_policy_series_is_well_formed() {
    let mut cfg = EnvConfig::tiny();
    cfg.horizon = 15;
    let mut tcfg = TrainerConfig::drl_cews(cfg.clone()).quick();
    tcfg.num_employees = 1;
    let mut trainer = Trainer::new(tcfg).unwrap();
    trainer.train(2).unwrap();
    let mut policy = PolicyScheduler::from_trainer(&trainer, "p");
    let series = run_series(&mut policy, &cfg, 3);
    assert_eq!(series.len(), 15);
    assert!(series.kappa.iter().all(|k| (0.0..=1.0).contains(k)));
    assert!(series.rho.iter().all(|r| r.is_finite()));
    // CSV export of the mission is parseable back.
    let csv = series.to_csv();
    assert_eq!(csv.lines().count(), 16);
}
