//! Per-family golden traces: each procedural scenario family replays a
//! Greedy-driven episode series and must reproduce its committed metric
//! fixture exactly (to float-noise tolerance).
//!
//! Where `tests/golden_trace.rs` pins the *trainer* on the default map,
//! these fixtures pin the *environment dynamics* across the whole scenario
//! matrix — maze collision geometry, hotspot drift, heterogeneous
//! batteries, recharge scarcity — plus both reward channels, so a silent
//! change to any of them diffs against
//! `tests/fixtures/golden_trace_<family>.json`.
//!
//! When a change is *intentional*, regenerate all fixtures with
//! `cargo xtask regen-golden` and commit the new files alongside it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;
use vc_env::reward::{dense_reward, sparse_reward};
use vc_env::scenario_gen::generate;

/// Absolute tolerance: the runs are fully deterministic, so the slack only
/// absorbs shortest-round-trip JSON parse noise.
const TOL: f64 = 1e-5;

const BASE_SEED: u64 = 404;
const EPISODES: usize = 3;

/// The pinned families. `DefaultGrid` is deliberately absent — the trainer
/// trace in `golden_trace.rs` already covers the default map.
const FAMILIES: [ScenarioFamily; 4] = [
    ScenarioFamily::CityBlockMaze,
    ScenarioFamily::DriftingHotspots,
    ScenarioFamily::HeterogeneousFleet,
    ScenarioFamily::RechargeScarce,
];

const FIELDS: [&str; 7] =
    ["kappa", "xi", "rho", "fairness", "sparse_return", "dense_return", "collisions"];

fn fixture_path(family: ScenarioFamily) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(format!("../../tests/fixtures/golden_trace_{}.json", family.name()))
}

/// One pinned episode: metric snapshot plus accumulated reward returns.
struct EpisodeRow {
    metrics: Metrics,
    sparse_return: f32,
    dense_return: f32,
    collisions: u32,
}

/// Drives a Greedy episode on a fresh scenario and accumulates both reward
/// channels from the step outcomes (the same signals the trainer consumes).
fn run_family_episode(family: ScenarioFamily, seed: u64, epsilon1: Option<f32>) -> EpisodeRow {
    let mut scn = generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
    if let Some(eps) = epsilon1 {
        scn.config.epsilon1 = eps;
    }
    let mut env = scn.try_env().unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
    let mut scheduler = GreedyScheduler;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut sparse = 0.0f32;
    let mut dense = 0.0f32;
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        let result = env.step(&actions);
        sparse += sparse_reward(env.config(), &result.outcomes);
        dense += dense_reward(env.config(), &result.outcomes);
    }
    EpisodeRow {
        metrics: env.metrics(),
        sparse_return: sparse,
        dense_return: dense,
        collisions: env.workers().iter().map(|w| w.collisions).sum(),
    }
}

fn run_family_trace(family: ScenarioFamily, epsilon1: Option<f32>) -> Vec<EpisodeRow> {
    (0..EPISODES).map(|e| run_family_episode(family, BASE_SEED + e as u64, epsilon1)).collect()
}

fn fmt_field(v: f32) -> String {
    // Shortest round-trip form: parses back bit-exactly, so the fixture
    // carries the full mantissa instead of a truncated decimal.
    let s = format!("{v:?}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn render_fixture(family: ScenarioFamily, rows: &[EpisodeRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"family\": \"{}\", \"base_seed\": {BASE_SEED}, \"episodes\": {EPISODES}, \"scheduler\": \"greedy\"}},\n",
        family.name()
    ));
    out.push_str("  \"episodes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kappa\": {}, \"xi\": {}, \"rho\": {}, \"fairness\": {}, \"sparse_return\": {}, \"dense_return\": {}, \"collisions\": {}}}{}\n",
            fmt_field(r.metrics.data_collection_ratio),
            fmt_field(r.metrics.remaining_data_ratio),
            fmt_field(r.metrics.energy_efficiency),
            fmt_field(r.metrics.fairness_index),
            fmt_field(r.sparse_return),
            fmt_field(r.dense_return),
            r.collisions,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_fixture(family: ScenarioFamily, text: &str) -> Vec<(String, f64)> {
    let v: serde::Value = serde_json::from_str(text).expect("fixture must be valid JSON");
    let declared = v
        .get("scenario")
        .and_then(|s| s.get("family"))
        .and_then(serde::Value::as_str)
        .expect("fixture missing `scenario.family`");
    assert_eq!(declared, family.name(), "fixture belongs to a different family");
    let episodes = v.get("episodes").expect("fixture missing `episodes`");
    let serde::Value::Seq(rows) = episodes else {
        panic!("`episodes` must be an array");
    };
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for key in FIELDS {
            let cell = row
                .get(key)
                .and_then(serde::Value::as_f64)
                .unwrap_or_else(|| panic!("episode {i} missing numeric `{key}`"));
            out.push((format!("{} episode {i} {key}", family.name()), cell));
        }
    }
    out
}

fn flatten(rows: &[EpisodeRow]) -> Vec<f64> {
    rows.iter()
        .flat_map(|r| {
            [
                f64::from(r.metrics.data_collection_ratio),
                f64::from(r.metrics.remaining_data_ratio),
                f64::from(r.metrics.energy_efficiency),
                f64::from(r.metrics.fairness_index),
                f64::from(r.sparse_return),
                f64::from(r.dense_return),
                f64::from(r.collisions),
            ]
        })
        .collect()
}

fn diff_against_fixture(family: ScenarioFamily, actual: &[f64]) -> Vec<String> {
    let path = fixture_path(family);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {} ({e}); run `cargo xtask regen-golden` to create it", path.display())
    });
    let expected = parse_fixture(family, &text);
    assert_eq!(
        expected.len(),
        actual.len(),
        "{}: fixture pins {} values but the run produced {}",
        family.name(),
        expected.len(),
        actual.len()
    );
    expected
        .iter()
        .zip(actual)
        .filter(|((_, want), got)| (*want - **got).abs() > TOL)
        .map(|((label, want), got)| format!("{label}: fixture {want} vs run {got}"))
        .collect()
}

#[test]
fn family_traces_match_committed_fixtures() {
    let mut diffs = Vec::new();
    for family in FAMILIES {
        diffs.extend(diff_against_fixture(family, &flatten(&run_family_trace(family, None))));
    }
    assert!(
        diffs.is_empty(),
        "family traces diverged from tests/fixtures/golden_trace_<family>.json \
         (if the change is intentional, run `cargo xtask regen-golden`):\n{}",
        diffs.join("\n")
    );
}

#[test]
fn family_runs_are_reproducible_in_process() {
    // The fixture comparison is only meaningful if the runs themselves are
    // deterministic: two back-to-back traces must agree bit for bit.
    for family in FAMILIES {
        let a = flatten(&run_family_trace(family, None));
        let b = flatten(&run_family_trace(family, None));
        assert_eq!(a, b, "{}: trace is not deterministic — fixture would flake", family.name());
    }
}

#[test]
fn reward_perturbation_is_caught_by_a_family_trace() {
    // Sensitivity check on the harness itself: nudging the sparse-reward
    // pulse threshold ε₁ (0.05 → 0.07) must push at least one family's
    // trace outside tolerance. If every fixture still matched, the golden
    // matrix would be blind to reward-constant drift.
    let mut caught = 0usize;
    for family in FAMILIES {
        let perturbed = flatten(&run_family_trace(family, Some(0.07)));
        if !diff_against_fixture(family, &perturbed).is_empty() {
            caught += 1;
        }
    }
    assert!(caught >= 1, "an ε₁ perturbation slipped past every family fixture");
}

/// Rewrites every committed family fixture from the current code. Run via
/// `cargo xtask regen-golden`, never as part of a normal test pass.
#[test]
#[ignore = "regenerates the fixtures; run via `cargo xtask regen-golden`"]
fn regen_family_fixtures() {
    for family in FAMILIES {
        let rows = run_family_trace(family, None);
        let path = fixture_path(family);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).unwrap();
        }
        std::fs::write(&path, render_fixture(family, &rows)).unwrap();
        println!("wrote {} ({} episodes)", path.display(), rows.len());
    }
}
