//! Integration: checkpoints round-trip across independent trainer instances
//! and preserve policy behavior exactly.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_env::prelude::*;

fn env() -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    cfg.horizon = 12;
    cfg
}

fn cfg() -> TrainerConfig {
    let mut c = TrainerConfig::drl_cews(env()).quick();
    c.num_employees = 1;
    c.curiosity = CuriosityChoice::None;
    c
}

#[test]
fn checkpoint_transfers_between_trainers() {
    let mut a = Trainer::new(cfg()).unwrap();
    a.train(3).unwrap();
    let ckpt = a.checkpoint();

    let mut b = Trainer::new(cfg()).unwrap();
    assert_ne!(b.store().flat_values(), a.store().flat_values());
    b.restore(&ckpt).unwrap();
    assert_eq!(b.store().flat_values(), a.store().flat_values());
}

#[test]
fn restored_policy_behaves_identically() {
    let mut a = Trainer::new(cfg()).unwrap();
    a.train(2).unwrap();
    let ckpt = a.checkpoint();
    let mut b = Trainer::new(cfg()).unwrap();
    b.restore(&ckpt).unwrap();

    let e = env();
    let mut pa = PolicyScheduler::from_trainer(&a, "a");
    let mut pb = PolicyScheduler::from_trainer(&b, "b");
    let ma = evaluate(&mut pa, &e, 2, 3);
    let mb = evaluate(&mut pb, &e, 2, 3);
    assert_eq!(ma, mb, "same weights + same seeds must act identically");
}

#[test]
fn corrupt_checkpoint_is_rejected_not_applied() {
    let mut t = Trainer::new(cfg()).unwrap();
    let before = t.store().flat_values();
    let mut ckpt = t.checkpoint().to_vec();
    ckpt[0] ^= 0xFF;
    assert!(t.restore(&ckpt).is_err());
    assert_eq!(t.store().flat_values(), before, "failed restore must not corrupt params");
}

#[test]
fn checkpoint_is_stable_across_serialization_cycles() {
    let t = Trainer::new(cfg()).unwrap();
    let c1 = t.checkpoint();
    let restored = vc_nn::serialize::load_checkpoint(&c1).unwrap();
    let c2 = vc_nn::serialize::save_checkpoint(&restored);
    assert_eq!(c1, c2, "save∘load must be the identity on checkpoints");
}
