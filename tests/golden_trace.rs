//! Golden-trace regression: a fixed seeded scenario must reproduce the
//! committed per-episode metric series exactly (to float-noise tolerance).
//!
//! The trace pins κ/ξ/ρ and both reward channels for every episode, so any
//! silent change to the reward constants, the environment dynamics, the
//! PPO update, or the curiosity module shows up as a diff against
//! `tests/fixtures/golden_trace.json`.
//!
//! When a change is *intentional*, regenerate the fixture with
//! `cargo xtask regen-golden` and commit the new file alongside the change.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_env::prelude::*;
use vc_rl::prelude::EpisodeStats;

/// Absolute tolerance for the pinned series. Training is deterministic at
/// 2 employees (commutative two-term gradient sums), so the slack only has
/// to absorb shortest-round-trip JSON parse noise, not run-to-run jitter.
const TOL: f64 = 1e-5;

const SEED: u64 = 42;
const EPISODES: usize = 6;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden_trace.json")
}

/// The pinned scenario: 2 workers, 8 PoIs, short horizon, 2 employees.
fn golden_config() -> TrainerConfig {
    let mut env = EnvConfig::tiny();
    env.num_workers = 2;
    env.num_pois = 8;
    env.horizon = 20;
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.num_employees = 2;
    cfg.seed = SEED;
    cfg
}

fn run_golden_trace() -> Vec<EpisodeStats> {
    let mut trainer = Trainer::new(golden_config()).unwrap();
    trainer.train(EPISODES).unwrap()
}

fn fmt_field(v: f32) -> String {
    // Shortest round-trip form: parses back bit-exactly, so the fixture
    // carries the full mantissa instead of a truncated decimal.
    let s = format!("{v:?}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

fn render_fixture(stats: &[EpisodeStats]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"scenario\": {{\"seed\": {SEED}, \"episodes\": {EPISODES}, \"workers\": 2, \"pois\": 8, \"employees\": 2}},\n"
    ));
    out.push_str("  \"episodes\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kappa\": {}, \"xi\": {}, \"rho\": {}, \"ext_reward\": {}, \"int_reward\": {}, \"collisions\": {}}}{}\n",
            fmt_field(s.kappa),
            fmt_field(s.xi),
            fmt_field(s.rho),
            fmt_field(s.ext_reward),
            fmt_field(s.int_reward),
            s.collisions,
            if i + 1 < stats.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_fixture(text: &str) -> Vec<(String, f64)> {
    let v: serde::Value = serde_json::from_str(text).expect("fixture must be valid JSON");
    let episodes = v.get("episodes").expect("fixture missing `episodes`");
    let serde::Value::Seq(rows) = episodes else {
        panic!("`episodes` must be an array");
    };
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        for key in ["kappa", "xi", "rho", "ext_reward", "int_reward", "collisions"] {
            let cell = row
                .get(key)
                .and_then(serde::Value::as_f64)
                .unwrap_or_else(|| panic!("episode {i} missing numeric `{key}`"));
            out.push((format!("episode {i} {key}"), cell));
        }
    }
    out
}

fn flatten(stats: &[EpisodeStats]) -> Vec<f64> {
    stats
        .iter()
        .flat_map(|s| {
            [
                f64::from(s.kappa),
                f64::from(s.xi),
                f64::from(s.rho),
                f64::from(s.ext_reward),
                f64::from(s.int_reward),
                f64::from(s.collisions),
            ]
        })
        .collect()
}

#[test]
fn golden_trace_matches_committed_fixture() {
    let path = fixture_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {} ({e}); run `cargo xtask regen-golden` to create it", path.display())
    });
    let expected = parse_fixture(&text);
    let actual = flatten(&run_golden_trace());
    assert_eq!(
        expected.len(),
        actual.len(),
        "fixture pins {} values but the run produced {} — episode count changed?",
        expected.len(),
        actual.len()
    );
    let mut diffs = Vec::new();
    for ((label, want), got) in expected.iter().zip(&actual) {
        if (want - got).abs() > TOL {
            diffs.push(format!("{label}: fixture {want} vs run {got}"));
        }
    }
    assert!(
        diffs.is_empty(),
        "golden trace diverged from tests/fixtures/golden_trace.json \
         (if the change is intentional, run `cargo xtask regen-golden`):\n{}",
        diffs.join("\n")
    );
}

#[test]
fn golden_run_is_reproducible_in_process() {
    // The fixture comparison is only meaningful if the run itself is
    // deterministic: two back-to-back runs must agree bit for bit.
    let a = flatten(&run_golden_trace());
    let b = flatten(&run_golden_trace());
    assert_eq!(a, b, "golden scenario is not deterministic — fixture would flake");
}

/// Rewrites the committed fixture from the current code. Run via
/// `cargo xtask regen-golden`, never as part of a normal test pass.
#[test]
#[ignore = "regenerates the fixture; run via `cargo xtask regen-golden`"]
fn regen_golden_fixture() {
    let stats = run_golden_trace();
    let path = fixture_path();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).unwrap();
    }
    std::fs::write(&path, render_fixture(&stats)).unwrap();
    println!("wrote {} ({} episodes)", path.display(), stats.len());
}
