//! Cross-crate integration: every scheduler — learned or engineered — runs
//! through the same evaluation harness on the same scenarios, and the
//! engineered set additionally sweeps every procedural scenario family.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;
use vc_env::scenario_gen::generate;

fn arena() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 25;
    cfg.num_pois = 60;
    cfg
}

#[test]
fn all_algorithms_run_on_the_paper_map() {
    let env = arena();
    let mut cfg = TrainerConfig::drl_cews(env.clone()).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train(2).unwrap();
    let mut cews = PolicyScheduler::from_trainer(&trainer, "drl-cews");

    let mut dppo_cfg = TrainerConfig::dppo(env.clone()).quick();
    dppo_cfg.num_employees = 1;
    let mut dppo_trainer = Trainer::new(dppo_cfg).unwrap();
    dppo_trainer.train(2).unwrap();
    let mut dppo = PolicyScheduler::from_trainer(&dppo_trainer, "dppo");

    let mut edics = Edics::new(&env, EdicsConfig::default());

    let mut dnc = DncScheduler::default();
    let mut greedy = GreedyScheduler;
    let mut hungarian = HungarianScheduler;
    let schedulers: Vec<&mut dyn Scheduler> =
        vec![&mut cews, &mut dppo, &mut edics, &mut dnc, &mut greedy, &mut hungarian];
    for s in schedulers {
        let m = evaluate(s, &env, 1, 5);
        assert!(
            m.data_collection_ratio.is_finite() && (0.0..=1.0).contains(&m.data_collection_ratio),
            "{} produced invalid kappa",
            s.name()
        );
        assert!(m.energy_efficiency >= 0.0, "{} produced negative rho", s.name());
    }
}

#[test]
fn planner_ordering_matches_paper() {
    // The paper's consistent baseline ordering: D&C's two-step lookahead and
    // station seeking collect at least as much as the trapped Greedy.
    let env = arena();
    let greedy = evaluate(&mut GreedyScheduler, &env, 3, 9).data_collection_ratio;
    let dnc = evaluate(&mut DncScheduler::default(), &env, 3, 9).data_collection_ratio;
    assert!(dnc >= greedy, "d&c {dnc} must not lose to greedy {greedy}");
    assert!(greedy > 0.0, "greedy collected nothing at all");
    // Random stays a sane floor (bounded, nonzero on a dense map).
    let random = evaluate(&mut RandomScheduler, &env, 3, 9).data_collection_ratio;
    assert!((0.0..=1.0).contains(&random));
}

#[test]
fn identical_seeds_give_identical_evaluations() {
    let env = arena();
    let a = evaluate(&mut GreedyScheduler, &env, 2, 7);
    let b = evaluate(&mut GreedyScheduler, &env, 2, 7);
    assert_eq!(a, b, "evaluation must be deterministic under a fixed seed");
}

#[test]
fn evaluation_does_not_mutate_shared_config() {
    let env = arena();
    let snapshot = env.clone();
    let _ = evaluate(&mut GreedyScheduler, &env, 1, 0);
    assert_eq!(env, snapshot);
}

/// Mean metrics over `episodes` episodes of a generated family scenario.
/// Families carry explicit entity templates (battery classes, drift
/// trails), so evaluation instantiates the generated env and resets it
/// between episodes instead of going through `evaluate`'s reseeding path.
fn eval_on_family(
    scheduler: &mut dyn Scheduler,
    family: ScenarioFamily,
    episodes: usize,
    seed: u64,
) -> Metrics {
    let scn = generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
    let mut env = scn.try_env().unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3));
    let mut acc = Metrics::default();
    for _ in 0..episodes {
        env.reset();
        let m = run_episode(scheduler, &mut env, &mut rng);
        acc.data_collection_ratio += m.data_collection_ratio;
        acc.remaining_data_ratio += m.remaining_data_ratio;
        acc.energy_efficiency += m.energy_efficiency;
        acc.fairness_index += m.fairness_index;
    }
    let n = episodes as f32;
    acc.data_collection_ratio /= n;
    acc.remaining_data_ratio /= n;
    acc.energy_efficiency /= n;
    acc.fairness_index /= n;
    acc
}

#[test]
fn engineered_schedulers_sweep_every_family() {
    // Every engineered scheduler × every procedural family through the
    // shared harness: bounded metrics everywhere, and something actually
    // collected by the Hungarian planner on every family — it navigates
    // toward its assignment from anywhere, so an all-zero κ means the
    // planner broke, not that the map is hard. The local-lookahead and
    // stochastic schedulers are only held to the bounds: greedy can
    // legitimately stall when no data sits within one step (hotspot maps),
    // and random/eDiCS walks may miss everything.
    for family in ScenarioFamily::ALL {
        let cfg = generate(family, 5).unwrap().config;
        let mut edics = Edics::new(&cfg, EdicsConfig::default());
        let mut dnc = DncScheduler::default();
        let mut greedy = GreedyScheduler;
        let mut random = RandomScheduler;
        let mut hungarian = HungarianScheduler;
        let schedulers: Vec<&mut dyn Scheduler> =
            vec![&mut hungarian, &mut greedy, &mut dnc, &mut edics, &mut random];
        for s in schedulers {
            let m = eval_on_family(s, family, 2, 5);
            let name = s.name();
            assert!(
                m.data_collection_ratio.is_finite()
                    && (0.0..=1.0).contains(&m.data_collection_ratio),
                "{name} on {}: invalid kappa {}",
                family.name(),
                m.data_collection_ratio
            );
            assert!(
                (0.0..=1.0).contains(&m.remaining_data_ratio),
                "{name} on {}: invalid xi {}",
                family.name(),
                m.remaining_data_ratio
            );
            assert!(
                m.energy_efficiency.is_finite() && m.energy_efficiency >= 0.0,
                "{name} on {}: invalid rho {}",
                family.name(),
                m.energy_efficiency
            );
            if name == "hungarian" {
                assert!(
                    m.data_collection_ratio > 0.0,
                    "{name} collected nothing on {}",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn learned_policy_runs_on_a_generated_family() {
    // A quick-trained DRL-CEWS policy must drive a generated family env
    // (the obs layout is derived from the family's config, so the net and
    // the scenario have to agree end to end).
    let family = ScenarioFamily::CityBlockMaze;
    let scn = generate(family, 5).unwrap();
    let mut cfg = TrainerConfig::drl_cews(scn.config.clone()).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train(2).unwrap();
    let mut cews = PolicyScheduler::from_trainer(&trainer, "drl-cews");
    let m = eval_on_family(&mut cews, family, 1, 5);
    assert!(
        m.data_collection_ratio.is_finite() && (0.0..=1.0).contains(&m.data_collection_ratio),
        "learned policy produced invalid kappa {} on {}",
        m.data_collection_ratio,
        family.name()
    );
    assert!(m.energy_efficiency >= 0.0, "learned policy produced negative rho");
}
