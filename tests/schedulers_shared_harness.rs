//! Cross-crate integration: every scheduler — learned or engineered — runs
//! through the same evaluation harness on the same scenarios.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn arena() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 25;
    cfg.num_pois = 60;
    cfg
}

#[test]
fn all_five_algorithms_run_on_the_paper_map() {
    let env = arena();
    let mut cfg = TrainerConfig::drl_cews(env.clone()).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train(2).unwrap();
    let mut cews = PolicyScheduler::from_trainer(&trainer, "drl-cews");

    let mut dppo_cfg = TrainerConfig::dppo(env.clone()).quick();
    dppo_cfg.num_employees = 1;
    let mut dppo_trainer = Trainer::new(dppo_cfg).unwrap();
    dppo_trainer.train(2).unwrap();
    let mut dppo = PolicyScheduler::from_trainer(&dppo_trainer, "dppo");

    let mut edics = Edics::new(&env, EdicsConfig::default());

    let mut dnc = DncScheduler::default();
    let mut greedy = GreedyScheduler;
    let schedulers: Vec<&mut dyn Scheduler> =
        vec![&mut cews, &mut dppo, &mut edics, &mut dnc, &mut greedy];
    for s in schedulers {
        let m = evaluate(s, &env, 1, 5);
        assert!(
            m.data_collection_ratio.is_finite() && (0.0..=1.0).contains(&m.data_collection_ratio),
            "{} produced invalid kappa",
            s.name()
        );
        assert!(m.energy_efficiency >= 0.0, "{} produced negative rho", s.name());
    }
}

#[test]
fn planner_ordering_matches_paper() {
    // The paper's consistent baseline ordering: D&C's two-step lookahead and
    // station seeking collect at least as much as the trapped Greedy.
    let env = arena();
    let greedy = evaluate(&mut GreedyScheduler, &env, 3, 9).data_collection_ratio;
    let dnc = evaluate(&mut DncScheduler::default(), &env, 3, 9).data_collection_ratio;
    assert!(dnc >= greedy, "d&c {dnc} must not lose to greedy {greedy}");
    assert!(greedy > 0.0, "greedy collected nothing at all");
    // Random stays a sane floor (bounded, nonzero on a dense map).
    let random = evaluate(&mut RandomScheduler, &env, 3, 9).data_collection_ratio;
    assert!((0.0..=1.0).contains(&random));
}

#[test]
fn identical_seeds_give_identical_evaluations() {
    let env = arena();
    let a = evaluate(&mut GreedyScheduler, &env, 2, 7);
    let b = evaluate(&mut GreedyScheduler, &env, 2, 7);
    assert_eq!(a, b, "evaluation must be deterministic under a fixed seed");
}

#[test]
fn evaluation_does_not_mutate_shared_config() {
    let env = arena();
    let snapshot = env.clone();
    let _ = evaluate(&mut GreedyScheduler, &env, 1, 0);
    assert_eq!(env, snapshot);
}
