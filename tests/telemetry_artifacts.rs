//! Schema checks for the telemetry artifacts a training run leaves behind:
//! the `round_timings.jsonl` event log and the `metrics.prom` exposition
//! dump. Anything that consumes these files downstream (plot scripts,
//! dashboards) relies on exactly the shapes pinned here.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use serde::Value;
use vc_env::prelude::*;

fn artifact_dir() -> std::path::PathBuf {
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "vc_telemetry_artifacts_{}_{}",
        std::process::id(),
        NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ))
}

/// Runs a short instrumented training and returns the two artifact texts.
fn run_instrumented(dir: &std::path::Path) -> (String, String) {
    let jsonl_path = dir.join("round_timings.jsonl");
    let prom_path = dir.join("metrics.prom");
    let handle = vc_telemetry::Telemetry::new();
    handle.attach_jsonl(&jsonl_path).unwrap();

    let mut env = EnvConfig::tiny();
    env.horizon = 15;
    env.num_pois = 20;
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.num_employees = 2;
    cfg.seed = 11;
    let mut trainer = Trainer::with_telemetry(cfg, handle.clone()).unwrap();
    trainer.train(2).unwrap();
    trainer.publish_kernel_telemetry();
    handle.flush().unwrap();
    handle.write_prometheus(&prom_path).unwrap();

    let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
    let prom = std::fs::read_to_string(&prom_path).unwrap();
    (jsonl, prom)
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("{ctx}: missing numeric `{key}`"))
}

#[test]
fn round_timings_jsonl_matches_schema() {
    let dir = artifact_dir();
    let (jsonl, _) = run_instrumented(&dir);

    let mut last_seq: Option<u64> = None;
    let (mut rounds, mut episodes) = (0usize, 0usize);
    for (i, line) in jsonl.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line {i} is not valid JSON ({e:?}): {line}"));
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {i}: missing string `type`"));
        let seq = v.get("seq").and_then(Value::as_u64).unwrap_or_else(|| panic!("line {i}: seq"));
        if let Some(prev) = last_seq {
            assert!(seq > prev, "line {i}: seq {seq} not monotone after {prev}");
        }
        last_seq = Some(seq);
        match kind {
            "round" => {
                rounds += 1;
                let ctx = format!("round line {i}");
                for key in ["gather_ms", "apply_ms", "broadcast_ms", "sync_ms"] {
                    let ms = f64_field(&v, key, &ctx);
                    assert!(ms >= 0.0, "{ctx}: negative {key} {ms}");
                }
                for key in ["episode", "round", "contributors", "quarantined", "failed"] {
                    assert!(
                        v.get(key).and_then(Value::as_u64).is_some(),
                        "{ctx}: missing count `{key}`"
                    );
                }
            }
            "episode" => {
                episodes += 1;
                let ctx = format!("episode line {i}");
                for key in ["kappa", "xi", "rho", "fairness"] {
                    let x = f64_field(&v, key, &ctx);
                    assert!((0.0..=1.0).contains(&x), "{ctx}: {key} {x} out of [0,1]");
                }
                assert!(v.get("collisions").and_then(Value::as_u64).is_some(), "{ctx}: collisions");
            }
            // Fault events only appear under injection; tolerate but don't require.
            "chief_restart" => {}
            other => panic!("line {i}: unknown event type `{other}`"),
        }
    }
    // 2 episodes of training with quick() round counts: both event kinds
    // must actually be present, not just schema-valid-when-present.
    assert!(rounds >= 2, "expected at least one round event per episode, got {rounds}");
    assert!(episodes >= 2, "expected employee episode events, got {episodes}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn metrics_prom_matches_schema() {
    let dir = artifact_dir();
    let (_, prom) = run_instrumented(&dir);

    // Every series the instrumentation registers must be present with a
    // `# TYPE` declaration and at least one sample line.
    for (name, kind) in [
        ("chief_rounds_total", "counter"),
        ("chief_quarantined_total", "counter"),
        ("chief_restarts_total", "counter"),
        ("env_episodes_total", "counter"),
        ("env_kappa", "gauge"),
        ("nn_gemm_calls", "gauge"),
        ("nn_gemm_flops", "gauge"),
        ("chief_gather_seconds", "histogram"),
        ("chief_broadcast_seconds", "histogram"),
        ("trainer_apply_seconds", "histogram"),
    ] {
        assert!(
            prom.contains(&format!("# TYPE {name} {kind}")),
            "missing `# TYPE {name} {kind}` in metrics.prom"
        );
    }

    let sample = |name: &str| -> f64 {
        prom.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no sample line for {name}"))
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("unparsable sample for {name}: {e}"))
    };
    // 2 training episodes × quick() rounds: the chief must have turned.
    assert!(sample("chief_rounds_total") >= 2.0);
    // 2 employees × 2 episodes of rollouts.
    assert!(sample("env_episodes_total") >= 4.0);
    // GEMM kernels ran and were tallied.
    assert!(sample("nn_gemm_calls") > 0.0);
    assert!(sample("nn_gemm_flops") > 0.0);

    // Histograms expose cumulative buckets ending in +Inf, plus _sum/_count,
    // and the +Inf bucket equals _count.
    for name in ["chief_gather_seconds", "chief_broadcast_seconds"] {
        let inf: f64 = prom
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name}_bucket{{le=\"+Inf\"}} ")))
            .unwrap_or_else(|| panic!("no +Inf bucket for {name}"))
            .trim()
            .parse()
            .unwrap();
        let count = sample(&format!("{name}_count"));
        assert_eq!(inf, count, "{name}: +Inf bucket must equal _count");
        assert!(count > 0.0, "{name}: histogram never observed");
        assert!(sample(&format!("{name}_sum")) >= 0.0, "{name}: negative _sum");
        // Buckets are cumulative: values never decrease in `le` order.
        let buckets: Vec<f64> = prom
            .lines()
            .filter_map(|l| l.strip_prefix(&format!("{name}_bucket{{le=\"")))
            .map(|rest| rest.split("\"} ").nth(1).unwrap().trim().parse().unwrap())
            .collect();
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{name}: buckets are not cumulative: {buckets:?}"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}
