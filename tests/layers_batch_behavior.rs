//! Batch-consistency properties of the NN layers: running a batch through a
//! layer must equal running its rows independently — the invariant that
//! makes minibatched PPO updates equivalent to per-sample ones.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_nn::prelude::*;

fn rows_of(t: &Tensor) -> Vec<Vec<f32>> {
    let (r, c) = (t.shape()[0], t.shape()[1]);
    (0..r).map(|i| t.data()[i * c..(i + 1) * c].to_vec()).collect()
}

#[test]
fn linear_is_batch_consistent() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let layer = Linear::new(&mut store, "l", 4, 3, &mut rng);
    let batch = Tensor::from_vec(&[3, 4], (0..12).map(|i| (i as f32 * 0.37).sin()).collect());

    let mut g = Graph::new();
    let x = g.leaf(batch.clone());
    let yn = layer.forward(&mut g, &store, x);
    let y = g.value(yn).clone();

    for (i, row) in rows_of(&batch).into_iter().enumerate() {
        let mut g1 = Graph::new();
        let x1 = g1.leaf(Tensor::from_vec(&[1, 4], row));
        let y1n = layer.forward(&mut g1, &store, x1);
        let y1 = g1.value(y1n).clone();
        for c in 0..3 {
            assert!(
                (y.at2(i, c) - y1.at2(0, c)).abs() < 1e-5,
                "row {i} col {c}: batch {} vs single {}",
                y.at2(i, c),
                y1.at2(0, c)
            );
        }
    }
}

#[test]
fn mlp_is_batch_consistent() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, "m", &[3, 8, 2], Activation::Relu, &mut rng);
    let batch = Tensor::from_vec(&[4, 3], (0..12).map(|i| (i as f32 * 0.71).cos()).collect());

    let mut g = Graph::new();
    let x = g.leaf(batch.clone());
    let yn = mlp.forward(&mut g, &store, x);
    let y = g.value(yn).clone();

    for (i, row) in rows_of(&batch).into_iter().enumerate() {
        let mut g1 = Graph::new();
        let x1 = g1.leaf(Tensor::from_vec(&[1, 3], row));
        let y1n = mlp.forward(&mut g1, &store, x1);
        let y1 = g1.value(y1n).clone();
        for c in 0..2 {
            assert!((y.at2(i, c) - y1.at2(0, c)).abs() < 1e-5);
        }
    }
}

#[test]
fn conv_is_batch_consistent() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let cfg = ConvCfg { in_channels: 2, out_channels: 3, kernel: 3, stride: 1, padding: 1 };
    let layer = Conv2dLayer::new(&mut store, "c", cfg, &mut rng);
    let item = 2 * 4 * 4;
    let batch =
        Tensor::from_vec(&[2, 2, 4, 4], (0..2 * item).map(|i| (i as f32 * 0.19).sin()).collect());

    let mut g = Graph::new();
    let x = g.leaf(batch.clone());
    let yn = layer.forward(&mut g, &store, x);
    let y = g.value(yn).clone();
    let out_item = 3 * 4 * 4;

    for bi in 0..2 {
        let single =
            Tensor::from_vec(&[1, 2, 4, 4], batch.data()[bi * item..(bi + 1) * item].to_vec());
        let mut g1 = Graph::new();
        let x1 = g1.leaf(single);
        let y1n = layer.forward(&mut g1, &store, x1);
        let y1 = g1.value(y1n).clone();
        for j in 0..out_item {
            assert!(
                (y.data()[bi * out_item + j] - y1.data()[j]).abs() < 1e-5,
                "batch item {bi} coord {j}"
            );
        }
    }
}

#[test]
fn actor_critic_is_batch_consistent() {
    use vc_rl::prelude::*;
    let mut rng = StdRng::seed_from_u64(8);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(&mut store, NetConfig::for_scenario(8, 2), &mut rng);
    let item = 3 * 8 * 8;
    let batch =
        Tensor::from_vec(&[2, 3, 8, 8], (0..2 * item).map(|i| (i as f32 * 0.11).sin()).collect());

    let mut g = Graph::new();
    let x = g.leaf(batch.clone());
    let out = net.forward(&mut g, &store, x);
    let values = g.value(out.value).clone();
    let moves = g.value(out.move_logits).clone(); // [2*2, 9]

    for bi in 0..2 {
        let single =
            Tensor::from_vec(&[1, 3, 8, 8], batch.data()[bi * item..(bi + 1) * item].to_vec());
        let mut g1 = Graph::new();
        let x1 = g1.leaf(single);
        let o1 = net.forward(&mut g1, &store, x1);
        assert!((values.data()[bi] - g1.value(o1.value).item()).abs() < 1e-4);
        let m1 = g1.value(o1.move_logits); // [2, 9]
        for w in 0..2 {
            for a in 0..9 {
                assert!(
                    (moves.at2(bi * 2 + w, a) - m1.at2(w, a)).abs() < 1e-4,
                    "batch item {bi} worker {w} action {a}"
                );
            }
        }
    }
}
