//! Integration: durable v2 checkpoints resume training bit-exactly, and the
//! trainer survives scripted employee faults.
//!
//! The headline guarantee of the fault-tolerance work: a run killed at
//! episode `k` and resumed from its v2 checkpoint must produce parameters
//! bit-identical to the uninterrupted run — Adam moments, per-employee RNG
//! streams, and episode/round counters all travel in the checkpoint.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_env::prelude::*;
use vc_rl::chief::{FaultKind, FaultPlan};

fn env() -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    cfg.horizon = 12;
    cfg
}

/// Bit-exact resume is guaranteed for curiosity-free configs (curiosity
/// models hold internal state the checkpoint does not serialize).
fn cfg(employees: usize) -> TrainerConfig {
    let mut c = TrainerConfig::drl_cews(env()).quick();
    c.num_employees = employees;
    c.curiosity = CuriosityChoice::None;
    c
}

#[test]
fn resume_matches_uninterrupted_run_bit_exactly() {
    // Run A: six episodes straight through.
    let mut a = Trainer::new(cfg(2)).unwrap();
    a.train(6).unwrap();

    // Run B: three episodes, checkpoint, "crash", resume in a fresh trainer
    // built purely from the checkpoint bytes, three more episodes.
    let mut b = Trainer::new(cfg(2)).unwrap();
    b.train(3).unwrap();
    let ckpt = b.checkpoint_v2().unwrap();
    drop(b);

    let mut b2 = Trainer::resume_from(&ckpt).unwrap();
    assert_eq!(b2.episodes_trained(), 3);
    assert_eq!(b2.rounds_trained(), a.rounds_trained() / 2);
    b2.train(3).unwrap();

    assert_eq!(b2.episodes_trained(), a.episodes_trained());
    assert_eq!(b2.rounds_trained(), a.rounds_trained());
    assert_eq!(
        b2.store().flat_values(),
        a.store().flat_values(),
        "resumed parameters must be bit-identical to the uninterrupted run"
    );
}

#[test]
fn checkpoint_v2_restore_into_existing_trainer_is_exact() {
    let mut a = Trainer::new(cfg(1)).unwrap();
    a.train(2).unwrap();
    let ckpt = a.checkpoint_v2().unwrap();
    a.train(2).unwrap();
    let after_four = a.store().flat_values();

    // Rewind the same trainer to the checkpoint and replay: identical.
    a.restore_v2(&ckpt).unwrap();
    assert_eq!(a.episodes_trained(), 2);
    a.train(2).unwrap();
    assert_eq!(a.store().flat_values(), after_four, "replay after rewind must match");
}

#[test]
fn corrupt_v2_checkpoint_is_rejected() {
    let mut t = Trainer::new(cfg(1)).unwrap();
    t.train(1).unwrap();
    let mut ckpt = t.checkpoint_v2().unwrap().to_vec();
    let mid = ckpt.len() / 2;
    ckpt[mid] ^= 0x40;
    assert!(Trainer::resume_from(&ckpt).is_err(), "bit flip must be caught by the CRC");
    assert!(Trainer::resume_from(&ckpt[..mid]).is_err(), "truncation must be caught");
}

#[test]
fn trainer_survives_scripted_faults_within_budget() {
    let mut c = cfg(4);
    c.fault.round_timeout_ms = Some(2_000);
    c.fault.restart_budget = 4;
    c.fault.backoff_base_ms = 1;
    // One panic and one NaN round early in training.
    c.fault.faults = FaultPlan::none().with(1, 0, FaultKind::Panic).with(0, 2, FaultKind::NanGrads);

    let mut t = Trainer::new(c).unwrap();
    let stats = t.train(3).unwrap();
    assert_eq!(stats.len(), 3, "training must complete despite injected faults");
    assert_eq!(t.restarts_used(), 1, "the panic burns one restart, the NaN round none");
}

#[test]
fn fault_free_plan_uses_no_restarts() {
    let mut t = Trainer::new(cfg(2)).unwrap();
    t.train(2).unwrap();
    assert_eq!(t.restarts_used(), 0);
}
