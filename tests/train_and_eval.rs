//! End-to-end integration: the full DRL-CEWS stack (env → net → curiosity →
//! chief-employee trainer → evaluation) wired together.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use vc_env::prelude::*;

fn tiny_env() -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    cfg.horizon = 15;
    cfg.num_pois = 25;
    cfg
}

#[test]
fn full_stack_trains_and_evaluates() {
    let env = tiny_env();
    let mut cfg = TrainerConfig::drl_cews(env.clone()).quick();
    cfg.num_employees = 2;
    let mut trainer = Trainer::new(cfg).unwrap();
    let stats = trainer.train(3).unwrap();
    assert_eq!(stats.len(), 3);
    for s in &stats {
        assert!(s.kappa.is_finite() && (0.0..=1.0).contains(&s.kappa));
        assert!(s.int_reward >= 0.0);
    }
    let mut policy = PolicyScheduler::from_trainer(&trainer, "drl-cews");
    let m = evaluate(&mut policy, &env, 2, 0);
    assert!((0.0..=1.0).contains(&m.data_collection_ratio));
}

#[test]
fn employee_count_changes_wall_clock_not_correctness() {
    let env = tiny_env();
    for m in [1usize, 3] {
        let mut cfg = TrainerConfig::dppo(env.clone()).quick();
        cfg.num_employees = m;
        let mut trainer = Trainer::new(cfg).unwrap();
        let s = trainer.train_episode().unwrap();
        assert!(s.kappa.is_finite(), "M={m} produced NaN kappa");
        assert!(!trainer.store().flat_values().iter().any(|v| !v.is_finite()));
    }
}

#[test]
fn sparse_reward_counts_pulses_not_quantities() {
    // A DRL-CEWS trainer on an env where nothing can be collected must see
    // zero positive extrinsic reward (only collision penalties).
    let mut env = tiny_env();
    env.num_pois = 0;
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.curiosity = CuriosityChoice::None;
    let mut trainer = Trainer::new(cfg).unwrap();
    let s = trainer.train_episode().unwrap();
    assert!(s.ext_reward <= 0.0, "reward {} on an empty map", s.ext_reward);
    assert_eq!(s.kappa, 0.0);
}

#[test]
fn training_reduces_intrinsic_reward_over_time() {
    // The curiosity forward model trains alongside the policy, so the mean
    // intrinsic payout per episode must shrink (Fig. 9's fading brightness).
    let env = tiny_env();
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    let stats = trainer.train(40).unwrap();
    let early: f32 = stats[..8].iter().map(|s| s.int_reward).sum::<f32>() / 8.0;
    let late: f32 = stats[32..].iter().map(|s| s.int_reward).sum::<f32>() / 8.0;
    assert!(late < early, "intrinsic reward did not fade: early {early:.3} late {late:.3}");
}

#[test]
fn trainer_rejects_invalid_env() {
    let mut env = tiny_env();
    env.num_workers = 0;
    let cfg = TrainerConfig::drl_cews(env);
    match Trainer::new(cfg) {
        Err(err @ TrainerError::Env(_)) => {
            assert!(err.to_string().contains("worker"), "unhelpful message: {err}");
        }
        Err(other) => panic!("want a typed env error, got {other}"),
        Ok(_) => panic!("zero-worker config must be rejected"),
    }
}

#[test]
fn chief_aggregates_update_diagnostics() {
    let env = tiny_env();
    let mut cfg = TrainerConfig::dppo(env).quick();
    cfg.num_employees = 2;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.train_episode().unwrap();
    let stats = trainer.last_ppo_stats();
    assert!(stats.entropy > 0.0, "fresh policy entropy must be positive");
    assert!(stats.value_loss.is_finite());
    assert!(stats.approx_kl >= -1e-4, "KL proxy should be ~non-negative");
}

#[test]
fn on_policy_update_starts_at_unit_ratio() {
    // Regression test for the masking bug: immediately after sampling, the
    // recomputed log-probabilities must match the stored behavior
    // log-probabilities exactly (ratio 1, KL ~ 0) — including when validity
    // masks shaped the sampling distribution.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vc_nn::prelude::*;
    use vc_rl::prelude::*;

    let env_cfg = tiny_env();
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    // Corner the worker so several moves are masked.
    env.teleport_worker(0, Point::new(0.0, 0.0));

    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(
        &mut store,
        NetConfig::for_scenario(env_cfg.grid, env_cfg.num_workers),
        &mut rng,
    );
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };

    let mut buffer = RolloutBuffer::new();
    for _ in 0..6 {
        let state = vc_env::state::encode(&env);
        let s = sample_action(&net, &store, &env, opts, &mut rng);
        env.step(&s.actions);
        buffer.push(Transition {
            state,
            moves: s.moves,
            charges: s.charges,
            move_mask: s.move_mask,
            charge_mask: s.charge_mask,
            logp: s.logp,
            reward: 0.0,
            value: s.value,
        });
    }
    let ppo = PpoConfig::default();
    finish_rollout(&mut buffer, &ppo, 0.0);
    let idx: Vec<usize> = (0..buffer.len()).collect();
    let stats = compute_ppo_grads(&net, &mut store, &buffer, &idx, &ppo);
    assert!(
        stats.approx_kl.abs() < 1e-3,
        "on-policy KL should be ~0, got {} (mask mismatch between sampling and update?)",
        stats.approx_kl
    );
}

#[test]
fn lr_schedule_anneals_policy_learning_rate() {
    use vc_nn::optim::LrSchedule;
    let env = tiny_env();
    let mut cfg = TrainerConfig::dppo(env).quick();
    cfg.num_employees = 1;
    cfg.lr_schedule = LrSchedule::Linear { final_fraction: 0.0 };
    cfg.schedule_horizon = 4;
    let mut trainer = Trainer::new(cfg.clone()).unwrap();
    // Parameter movement per episode must shrink as the LR anneals to 0.
    let mut deltas = Vec::new();
    for _ in 0..5 {
        let before = trainer.store().flat_values();
        trainer.train_episode().unwrap();
        let after = trainer.store().flat_values();
        let delta: f32 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).sum();
        deltas.push(delta);
    }
    // Episode 5 runs at progress >= 1 -> lr 0 -> parameters frozen.
    assert!(deltas[4] < 1e-6, "annealed-to-zero schedule still moved params by {}", deltas[4]);
    assert!(deltas[0] > deltas[4], "no annealing effect visible");
}
