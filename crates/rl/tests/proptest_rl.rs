//! Randomized property tests for the return/advantage estimators, the
//! rollout buffer, and categorical sampling.
//!
//! The original proptest harness is unavailable offline, so each property
//! runs over a fixed number of seeded random cases instead — same
//! assertions, deterministic inputs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_rl::buffer::{RolloutBuffer, Transition};
use vc_rl::gae::{discounted_returns, gae_advantages, normalize_advantages};
use vc_rl::policy::{argmax, sample_categorical};

const CASES: usize = 96;

fn rewards(rng: &mut StdRng) -> Vec<f32> {
    let n = rng.gen_range(1usize..40);
    (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

#[test]
fn returns_satisfy_bellman_recurrence() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..CASES {
        let r = rewards(&mut rng);
        let gamma = rng.gen_range(0.5f32..0.999);
        let v_last = rng.gen_range(-3.0f32..3.0);
        let g = discounted_returns(&r, gamma, v_last);
        for t in 0..r.len() {
            let next = if t + 1 < r.len() { g[t + 1] } else { v_last };
            assert!((g[t] - (r[t] + gamma * next)).abs() < 1e-3, "t={t}");
        }
    }
}

#[test]
fn gae_lambda1_telescopes_to_return_minus_value() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..CASES {
        let r = rewards(&mut rng);
        let gamma = rng.gen_range(0.5f32..0.999);
        let v_last = rng.gen_range(-3.0f32..3.0);
        let values: Vec<f32> = r.iter().map(|x| x * 0.3 - 0.1).collect();
        let adv = gae_advantages(&r, &values, gamma, 1.0, v_last);
        let rets = discounted_returns(&r, gamma, v_last);
        for t in 0..r.len() {
            assert!((adv[t] - (rets[t] - values[t])).abs() < 1e-2, "t={t}");
        }
    }
}

#[test]
fn gae_lambda0_is_one_step_td() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..CASES {
        let r = rewards(&mut rng);
        let gamma = rng.gen_range(0.5f32..0.999);
        let values: Vec<f32> = r.iter().map(|x| x * 0.5).collect();
        let v_last = 0.7;
        let adv = gae_advantages(&r, &values, gamma, 0.0, v_last);
        for t in 0..r.len() {
            let next_v = if t + 1 < r.len() { values[t + 1] } else { v_last };
            let td = r[t] + gamma * next_v - values[t];
            assert!((adv[t] - td).abs() < 1e-4);
        }
    }
}

#[test]
fn normalized_advantages_have_unit_stats() {
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..50);
        let mut adv: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        normalize_advantages(&mut adv);
        let n = adv.len() as f32;
        let mean: f32 = adv.iter().sum::<f32>() / n;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
        assert!(mean.abs() < 1e-3);
        // Constant inputs normalize to ~0 variance; otherwise unit variance.
        assert!(var < 1.1);
    }
}

#[test]
fn minibatches_partition_the_buffer() {
    let mut case_rng = StdRng::seed_from_u64(35);
    for _ in 0..CASES {
        let n = case_rng.gen_range(1usize..60);
        let batch = case_rng.gen_range(1usize..20);
        let seed = case_rng.gen::<u64>();
        let mut buf = RolloutBuffer::new();
        for i in 0..n {
            buf.push(Transition {
                state: vec![0.0],
                moves: vec![0],
                charges: vec![0],
                move_mask: vec![true; 9],
                charge_mask: vec![true; 2],
                logp: -1.0,
                reward: i as f32,
                value: 0.0,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let batches = buf.minibatch_indices(batch, &mut rng);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
        for b in &batches[..batches.len().saturating_sub(1)] {
            assert_eq!(b.len(), batch.max(1));
        }
    }
}

#[test]
fn categorical_sampling_never_picks_zero_mass() {
    let mut case_rng = StdRng::seed_from_u64(36);
    for _ in 0..CASES {
        let seed = case_rng.gen::<u64>();
        let hot = case_rng.gen_range(0usize..5);
        let mut probs = vec![0.0f32; 5];
        probs[hot] = 1.0;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), hot);
        }
    }
}

#[test]
fn categorical_sampling_in_range() {
    let mut case_rng = StdRng::seed_from_u64(37);
    for _ in 0..CASES {
        let n = case_rng.gen_range(1usize..10);
        let probs: Vec<f32> = (0..n).map(|_| case_rng.gen_range(0.0f32..1.0)).collect();
        let mut rng = StdRng::seed_from_u64(case_rng.gen::<u64>());
        let i = sample_categorical(&probs, &mut rng);
        assert!(i < probs.len());
    }
}

#[test]
fn argmax_returns_a_maximum() {
    let mut rng = StdRng::seed_from_u64(38);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..12);
        let values: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let i = argmax(&values);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!((values[i] - max).abs() < 1e-6);
    }
}

#[test]
fn empirical_sampling_frequency_tracks_probabilities() {
    let mut case_rng = StdRng::seed_from_u64(39);
    for _ in 0..8 {
        let probs = [0.6f32, 0.3, 0.1];
        let mut rng = StdRng::seed_from_u64(case_rng.gen::<u64>());
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!((counts[0] as f32 / 3000.0 - 0.6).abs() < 0.06);
        assert!((counts[2] as f32 / 3000.0 - 0.1).abs() < 0.04);
    }
}
