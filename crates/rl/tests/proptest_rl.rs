//! Property-based tests for the return/advantage estimators, the rollout
//! buffer, and categorical sampling.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_rl::buffer::{RolloutBuffer, Transition};
use vc_rl::gae::{discounted_returns, gae_advantages, normalize_advantages};
use vc_rl::policy::{argmax, sample_categorical};

fn rewards() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn returns_satisfy_bellman_recurrence(r in rewards(), gamma in 0.5f32..0.999, v_last in -3.0f32..3.0) {
        let g = discounted_returns(&r, gamma, v_last);
        for t in 0..r.len() {
            let next = if t + 1 < r.len() { g[t + 1] } else { v_last };
            prop_assert!((g[t] - (r[t] + gamma * next)).abs() < 1e-3, "t={t}");
        }
    }

    #[test]
    fn gae_lambda1_telescopes_to_return_minus_value(
        r in rewards(), gamma in 0.5f32..0.999, v_last in -3.0f32..3.0,
    ) {
        let values: Vec<f32> = r.iter().map(|x| x * 0.3 - 0.1).collect();
        let adv = gae_advantages(&r, &values, gamma, 1.0, v_last);
        let rets = discounted_returns(&r, gamma, v_last);
        for t in 0..r.len() {
            prop_assert!((adv[t] - (rets[t] - values[t])).abs() < 1e-2, "t={t}");
        }
    }

    #[test]
    fn gae_lambda0_is_one_step_td(r in rewards(), gamma in 0.5f32..0.999) {
        let values: Vec<f32> = r.iter().map(|x| x * 0.5).collect();
        let v_last = 0.7;
        let adv = gae_advantages(&r, &values, gamma, 0.0, v_last);
        for t in 0..r.len() {
            let next_v = if t + 1 < r.len() { values[t + 1] } else { v_last };
            let td = r[t] + gamma * next_v - values[t];
            prop_assert!((adv[t] - td).abs() < 1e-4);
        }
    }

    #[test]
    fn normalized_advantages_have_unit_stats(r in proptest::collection::vec(-5.0f32..5.0, 3..50)) {
        let mut adv = r;
        normalize_advantages(&mut adv);
        let n = adv.len() as f32;
        let mean: f32 = adv.iter().sum::<f32>() / n;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
        prop_assert!(mean.abs() < 1e-3);
        // Constant inputs normalize to ~0 variance; otherwise unit variance.
        prop_assert!(var < 1.1);
    }

    #[test]
    fn minibatches_partition_the_buffer(n in 1usize..60, batch in 1usize..20, seed in any::<u64>()) {
        let mut buf = RolloutBuffer::new();
        for i in 0..n {
            buf.push(Transition {
                state: vec![0.0],
                moves: vec![0],
                charges: vec![0],
                move_mask: vec![true; 9],
                charge_mask: vec![true; 2],
                logp: -1.0,
                reward: i as f32,
                value: 0.0,
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let batches = buf.minibatch_indices(batch, &mut rng);
        let mut all: Vec<usize> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for b in &batches[..batches.len().saturating_sub(1)] {
            prop_assert_eq!(b.len(), batch.max(1));
        }
    }

    #[test]
    fn categorical_sampling_never_picks_zero_mass(seed in any::<u64>(), hot in 0usize..5) {
        let mut probs = vec![0.0f32; 5];
        probs[hot] = 1.0;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert_eq!(sample_categorical(&probs, &mut rng), hot);
        }
    }

    #[test]
    fn categorical_sampling_in_range(probs in proptest::collection::vec(0.0f32..1.0, 1..10), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = sample_categorical(&probs, &mut rng);
        prop_assert!(i < probs.len());
    }

    #[test]
    fn argmax_returns_a_maximum(values in proptest::collection::vec(-10.0f32..10.0, 1..12)) {
        let i = argmax(&values);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!((values[i] - max).abs() < 1e-6);
    }

    #[test]
    fn empirical_sampling_frequency_tracks_probabilities(seed in any::<u64>()) {
        let probs = [0.6f32, 0.3, 0.1];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        prop_assert!((counts[0] as f32 / 3000.0 - 0.6).abs() < 0.06);
        prop_assert!((counts[2] as f32 / 3000.0 - 0.1).abs() < 0.04);
    }
}
