//! Chaos suite: a scripted multi-fault training run over the fault-tolerant
//! chief–employee executor.
//!
//! Eight deterministic employees train for five episodes (two gradient
//! rounds each). The fault plan injects two panics, one stall, and one
//! NaN-gradient round at known (employee, round) coordinates. The run must
//! complete within the restart budget, clean rounds must produce exact
//! gradient sums over all eight employees, faulted rounds must lose exactly
//! the scripted contribution, and the rollout metrics must match a
//! fault-free run of the same fleet.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use vc_rl::prelude::*;

/// A deterministic employee: gradients depend only on the broadcast
/// parameters and the employee index, so expected sums are computable in
/// closed form and identical across runs.
struct ChaosEmployee {
    id: f32,
    params: Vec<f32>,
}

impl ChaosEmployee {
    fn new(id: usize) -> Self {
        ChaosEmployee { id: id as f32, params: vec![] }
    }
}

impl Employee for ChaosEmployee {
    fn load_params(&mut self, ppo: &[f32], _curiosity: &[f32]) {
        self.params = ppo.to_vec();
    }
    fn rollout(&mut self) -> EpisodeStats {
        EpisodeStats { kappa: self.id, xi: 1.0 - self.id / 10.0, ..Default::default() }
    }
    fn compute_grads(&mut self) -> GradPair {
        GradPair {
            ppo: self.params.iter().map(|p| p + self.id).collect(),
            curiosity: vec![self.id],
            stats: PpoStats { entropy: self.id, ..Default::default() },
        }
    }
}

const M: usize = 8;
const EPISODES: u64 = 5;
const ROUNDS_PER_EPISODE: u64 = 2;
const PARAMS: [f32; 3] = [0.25, -1.0, 3.5];

/// Sum of employee ids `0..M`.
const ID_SUM: f32 = 28.0;

fn executor(faults: FaultPlan) -> ChiefExecutor {
    let cfg = ChiefConfig {
        round_timeout: Some(Duration::from_millis(500)),
        restart_budget: 8,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        backoff_seed: 7,
        faults,
    };
    ChiefExecutor::spawn_with(M, |i| Box::new(ChaosEmployee::new(i)), cfg)
        .expect("spawn chaos fleet")
}

/// Drives one full training schedule and returns the per-episode rollout
/// stats plus every round report, in order.
fn train(exec: &mut ChiefExecutor) -> (Vec<Vec<EpisodeStats>>, Vec<RoundReport>) {
    let mut rollouts = Vec::new();
    let mut rounds = Vec::new();
    for _ in 0..EPISODES {
        exec.broadcast_params(PARAMS.to_vec(), vec![]).expect("broadcast");
        let rollout = exec.rollout_all().expect("rollout");
        rollouts.push(rollout.stats);
        for _ in 0..ROUNDS_PER_EPISODE {
            rounds.push(exec.gather_grads().expect("gather"));
        }
    }
    (rollouts, rounds)
}

/// The scripted plan: two panics, one stall, one NaN round, each on the
/// second gather round of an episode so the respawned replacement is warmed
/// by the next episode's rollout.
fn chaos_plan() -> FaultPlan {
    FaultPlan::none()
        .with(2, 1, FaultKind::Panic)
        .with(5, 3, FaultKind::Panic)
        .with(1, 5, FaultKind::Stall { rounds: 2 })
        .with(0, 7, FaultKind::NanGrads)
}

/// The employee knocked out of round `r` by [`chaos_plan`], if any.
fn scripted_loss(round: u64) -> Option<usize> {
    match round {
        1 => Some(2),
        3 => Some(5),
        5 => Some(1),
        7 => Some(0),
        _ => None,
    }
}

#[test]
fn chaos_run_completes_with_exact_sums_and_full_recovery() {
    let mut exec = executor(chaos_plan());
    let (rollouts, rounds) = train(&mut exec);

    assert_eq!(rounds.len(), (EPISODES * ROUNDS_PER_EPISODE) as usize);
    // Two panics + one stall burn restarts; the NaN round must not.
    assert_eq!(exec.restarts_used(), 3);

    for (r, report) in rounds.iter().enumerate() {
        let round = r as u64;
        match scripted_loss(round) {
            None => {
                // Clean round: every employee contributes, sums are exact.
                assert_eq!(report.contributors, M, "round {round} contributors");
                assert!(report.failed.is_empty(), "round {round} failures");
                assert!(report.quarantined.is_empty(), "round {round} quarantine");
                for (j, &p) in PARAMS.iter().enumerate() {
                    let expect = (M as f32) * p + ID_SUM;
                    assert_eq!(report.ppo[j], expect, "round {round} ppo[{j}]");
                }
                assert_eq!(report.curiosity, vec![ID_SUM]);
                assert_eq!(report.stats.entropy, ID_SUM / M as f32);
            }
            Some(lost) => {
                // Faulted round: exactly the scripted contribution is missing
                // from the sums, whatever the failure mode.
                assert_eq!(report.contributors, M - 1, "round {round} contributors");
                for (j, &p) in PARAMS.iter().enumerate() {
                    let expect = (M as f32 - 1.0) * p + (ID_SUM - lost as f32);
                    assert_eq!(report.ppo[j], expect, "round {round} ppo[{j}]");
                }
                assert_eq!(report.curiosity, vec![ID_SUM - lost as f32]);
                if round == 7 {
                    // NaN gradients are quarantined, not fatal.
                    assert_eq!(report.quarantined, vec![lost]);
                    assert!(report.failed.is_empty());
                    assert!(report.respawned.is_empty());
                } else {
                    assert_eq!(report.failed, vec![lost]);
                    assert_eq!(report.respawned, vec![lost]);
                }
            }
        }
    }

    // Every replacement rejoined: the final episode's rollout and both of
    // its gather rounds saw the full fleet.
    assert_eq!(rollouts.last().map(Vec::len), Some(M));
}

#[test]
fn chaos_rollout_metrics_match_fault_free_run() {
    let mut faulty = executor(chaos_plan());
    let mut clean = executor(FaultPlan::none());
    let (faulty_rollouts, _) = train(&mut faulty);
    let (clean_rollouts, clean_rounds) = train(&mut clean);

    // Faults land in gather rounds and every casualty is respawned before
    // the next rollout, so the rollout telemetry of the two runs is
    // identical: all eight employees report every episode.
    assert_eq!(faulty_rollouts, clean_rollouts);
    assert_eq!(clean.restarts_used(), 0);
    assert!(clean_rounds.iter().all(|r| r.contributors == M && r.failed.is_empty()));
}
