//! # vc-rl — PPO and the chief–employee training architecture
//!
//! The reinforcement-learning machinery of the DRL-CEWS reproduction:
//!
//! * [`net::ActorCritic`] — the paper's CNN encoder (3 conv + layer norm +
//!   FC) with per-worker route-planning and charging heads plus a value head;
//! * [`policy`] — joint-action sampling with optional validity masking;
//! * [`buffer::RolloutBuffer`] — the per-episode replay buffer `D`;
//! * [`gae`] — discounted returns (Eqn 11) and GAE-λ advantages;
//! * [`ppo`] — the clipped-surrogate gradient computation (Eqns 8/12);
//! * [`chief`] — the synchronous chief–employee executor with global PPO and
//!   curiosity gradient buffers (Fig. 1, Algorithms 1–2).
//!
//! Employees *compute* gradients; only the chief *applies* them — this crate
//! keeps that separation explicit: [`ppo::compute_ppo_grads`] accumulates
//! into a local store, [`vc_nn::param::ParamStore::flat_grads`] ships them,
//! and the chief's Adam steps the global store.

/// The rollout buffer of transitions.
pub mod buffer;
/// The chief/employee distributed-PPO executor.
pub mod chief;
/// Return and advantage estimators.
pub mod gae;
/// The shared actor–critic network.
pub mod net;
/// Action sampling from policy heads.
pub mod policy;
/// The clipped-surrogate PPO update.
pub mod ppo;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::buffer::{RolloutBuffer, Transition};
    pub use crate::chief::{
        ChiefConfig, ChiefError, ChiefExecutor, Employee, EpisodeStats, FaultEvent, FaultKind,
        FaultPlan, GradPair, GradientBuffer, RolloutReport, RoundReport,
    };
    pub use crate::gae::{discounted_returns, gae_advantages, normalize_advantages};
    pub use crate::net::{
        ActorCritic, FleetActorCritic, NetConfig, NetOutputs, CHARGE_CHOICES, MOVES_PER_WORKER,
    };
    pub use crate::policy::{
        sample_action, sample_action_fleet, sample_actions_batched, sample_actions_fleet,
        state_value, state_values_batched, state_values_fleet, PolicyOptions, SampleMode,
        SampledAction,
    };
    pub use crate::ppo::{compute_ppo_grads, finish_rollout, PpoConfig, PpoStats};
}
