//! Proximal policy optimization (Section IV, Eqns 8/11/12).
//!
//! [`compute_ppo_grads`] builds the clipped-surrogate + value + entropy loss
//! for one minibatch and backpropagates it into the parameter store —
//! *without* stepping the optimizer. In the chief–employee architecture the
//! employees call this and ship the accumulated gradients to the chief,
//! which owns the only optimizer (Algorithms 1–2).

use crate::buffer::RolloutBuffer;
use crate::gae::{discounted_returns, gae_advantages, normalize_advantages};
use crate::net::{ActorCritic, CHARGE_CHOICES, MOVES_PER_WORKER};
use serde::{Deserialize, Serialize};
use vc_nn::prelude::*;

/// PPO hyperparameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// GAE-λ.
    pub lambda: f32,
    /// Clip radius ε of Eqn (8).
    pub clip_eps: f32,
    /// Update rounds per episode, K (Algorithm 1, line 17).
    pub epochs: usize,
    /// Minibatch size (the "updating batch size" of Table II).
    pub minibatch: usize,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Entropy-bonus coefficient.
    pub ent_coef: f32,
    /// Adam learning rate (used by the chief).
    pub lr: f32,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Per-batch advantage normalization (the DPPO trick, also used here).
    pub normalize_adv: bool,
    /// PPO2-style value clipping: bound the value update to `clip_eps`
    /// around the rollout-time estimate, taking the worse (max) of the
    /// clipped and unclipped squared errors.
    pub clip_value: bool,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.98,
            lambda: 0.95,
            clip_eps: 0.2,
            epochs: 4,
            minibatch: 250,
            vf_coef: 0.5,
            ent_coef: 0.02,
            lr: 3e-4,
            max_grad_norm: 0.5,
            normalize_adv: true,
            clip_value: false,
        }
    }
}

/// Diagnostics from one minibatch gradient computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PpoStats {
    /// Clipped-surrogate objective value (higher is better).
    pub policy_objective: f32,
    /// Mean squared value error.
    pub value_loss: f32,
    /// Mean joint entropy of the two heads.
    pub entropy: f32,
    /// Mean `old_logp − new_logp` (a cheap KL proxy).
    pub approx_kl: f32,
}

/// Computes returns and (optionally normalized) advantages for a finished
/// episode and installs them into the buffer. `v_last` bootstraps Eqn (11).
pub fn finish_rollout(buffer: &mut RolloutBuffer, cfg: &PpoConfig, v_last: f32) {
    let rewards = buffer.rewards();
    let values = buffer.values();
    let returns = discounted_returns(&rewards, cfg.gamma, v_last);
    let mut adv = gae_advantages(&rewards, &values, cfg.gamma, cfg.lambda, v_last);
    if cfg.normalize_adv {
        normalize_advantages(&mut adv);
    }
    buffer.set_targets(returns, adv);
}

/// Builds the PPO loss over the transitions selected by `indices`,
/// backpropagates into `store`, and returns diagnostics.
pub fn compute_ppo_grads(
    net: &ActorCritic,
    store: &mut ParamStore,
    buffer: &RolloutBuffer,
    indices: &[usize],
    cfg: &PpoConfig,
) -> PpoStats {
    assert!(buffer.has_targets(), "finish_rollout must run before updates");
    assert!(!indices.is_empty(), "empty minibatch");
    let b = indices.len();
    let w = net.config().num_workers;
    let state_len = buffer.transitions()[0].state.len();

    // Assemble minibatch tensors. Buffers come from the tensor arena so the
    // per-update epoch loop recycles them instead of re-allocating: the f32
    // buffers return when their tensors drop, and the index vectors are
    // recycled by the graph when the `PickColumn` nodes retire.
    let mut states = vc_nn::arena::take_f32(b * state_len);
    let mut flat_moves = vc_nn::arena::take_usize(b * w);
    let mut flat_charges = vc_nn::arena::take_usize(b * w);
    let mut move_mask = vc_nn::arena::take_f32(b * w * MOVES_PER_WORKER);
    let mut charge_mask = vc_nn::arena::take_f32(b * w * CHARGE_CHOICES);
    let mut old_logp = vc_nn::arena::take_f32(b);
    let mut adv = vc_nn::arena::take_f32(b);
    let mut rets = vc_nn::arena::take_f32(b);
    let mut old_values = vc_nn::arena::take_f32(b);
    for &i in indices {
        let t = &buffer.transitions()[i];
        states.extend_from_slice(&t.state);
        flat_moves.extend_from_slice(&t.moves);
        flat_charges.extend_from_slice(&t.charges);
        move_mask.extend(t.move_mask.iter().map(|&ok| if ok { 0.0f32 } else { -1e9 }));
        charge_mask.extend(t.charge_mask.iter().map(|&ok| if ok { 0.0f32 } else { -1e9 }));
        old_logp.push(t.logp);
        adv.push(buffer.adv(i));
        rets.push(buffer.ret(i));
        old_values.push(t.value);
    }

    let net_cfg = *net.config();
    let mut g = Graph::new();
    let s = g.leaf(Tensor::from_vec(&[b, net_cfg.in_channels, net_cfg.grid, net_cfg.grid], states));
    let out = net.forward(&mut g, store, s);

    // Re-apply the sampling-time validity masks so the new log-probabilities
    // describe the same (masked) distributions the behavior policy used.
    let mm = g.leaf(Tensor::from_vec(&[b * w, MOVES_PER_WORKER], move_mask));
    let cm = g.leaf(Tensor::from_vec(&[b * w, CHARGE_CHOICES], charge_mask));
    let masked_move_logits = g.add(out.move_logits, mm);
    let masked_charge_logits = g.add(out.charge_logits, cm);

    // Joint new log-probability per step: sum the per-worker move and charge
    // log-probs ([B·W, 1] → [B, W] → row-sum).
    let lsm = g.log_softmax(masked_move_logits);
    let lpm = g.pick_column(lsm, flat_moves);
    let lsc = g.log_softmax(masked_charge_logits);
    let lpc = g.pick_column(lsc, flat_charges);
    let joint = g.add(lpm, lpc); // [B·W, 1]
    let per_step = g.reshape(joint, &[b, w]);
    let mean_w = g.mean_rows(per_step); // [B, 1]
    let new_logp = g.scale(mean_w, w as f32); // row sums

    // Probability ratio ζ and the clipped surrogate (Eqn 12).
    let old = g.leaf(Tensor::from_vec(&[b, 1], old_logp.clone()));
    let diff = g.sub(new_logp, old);
    let ratio = g.exp(diff);
    let adv_node = g.leaf(Tensor::from_vec(&[b, 1], adv));
    let unclipped = g.mul(ratio, adv_node);
    let clipped_ratio = g.clamp(ratio, 1.0 - cfg.clip_eps, 1.0 + cfg.clip_eps);
    let clipped = g.mul(clipped_ratio, adv_node);
    let surrogate = g.min_elem(unclipped, clipped);
    let objective = g.mean_all(surrogate);

    // Value loss (Eqn 11), optionally PPO2-clipped around the rollout-time
    // value estimate.
    let ret_node = g.leaf(Tensor::from_vec(&[b, 1], rets));
    let vdiff = g.sub(out.value, ret_node);
    let vsq = g.square(vdiff);
    let value_loss = if cfg.clip_value {
        // v_clip = v_old + clamp(v - v_old, ±ε); loss = max(sq, sq_clip).
        let v_old = g.leaf(Tensor::from_vec(&[b, 1], old_values));
        let dv = g.sub(out.value, v_old);
        let dv_clipped = g.clamp(dv, -cfg.clip_eps, cfg.clip_eps);
        let v_clipped = g.add(v_old, dv_clipped);
        let vdiff_c = g.sub(v_clipped, ret_node);
        let vsq_c = g.square(vdiff_c);
        let worst = g.max_elem(vsq, vsq_c);
        g.mean_all(worst)
    } else {
        g.mean_all(vsq)
    };

    // Entropy bonus over both heads (on the masked distributions — masked
    // actions contribute p·log p → 0). mean_all over [rows, A] of p·log p is
    // (Σ p·log p) / (rows·A); scaling by −A yields the mean per-row entropy.
    let pm = g.softmax(masked_move_logits);
    let lsm2 = g.log_softmax(masked_move_logits);
    let plm = g.mul(pm, lsm2);
    let em = g.mean_all(plm);
    let ent_move = g.scale(em, -(MOVES_PER_WORKER as f32));
    let pc = g.softmax(masked_charge_logits);
    let lsc2 = g.log_softmax(masked_charge_logits);
    let plc = g.mul(pc, lsc2);
    let ec = g.mean_all(plc);
    let ent_charge = g.scale(ec, -(CHARGE_CHOICES as f32));
    let entropy = g.add(ent_move, ent_charge);

    // loss = −J + c_v·L_v − c_e·H
    let neg_obj = g.scale(objective, -1.0);
    let v_term = g.scale(value_loss, cfg.vf_coef);
    let e_term = g.scale(entropy, -cfg.ent_coef);
    let partial = g.add(neg_obj, v_term);
    let loss = g.add(partial, e_term);

    g.backward(loss, store);

    let new_vals = g.value(ratio);
    let approx_kl = old_logp
        .iter()
        .zip(new_vals.data())
        .map(|(_, &r)| {
            // KL(old‖new) ≈ (r − 1) − ln r for ratio r = new/old prob.
            (r - 1.0) - r.max(1e-12).ln()
        })
        .sum::<f32>()
        / b as f32;

    PpoStats {
        policy_objective: g.value(objective).item(),
        value_loss: g.value(value_loss).item(),
        entropy: g.value(entropy).item(),
        approx_kl,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::buffer::Transition;
    use crate::net::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vc_nn::optim::{Adam, Optimizer};

    fn build_net(grid: usize, workers: usize, seed: u64) -> (ParamStore, ActorCritic) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let net = ActorCritic::new(&mut store, NetConfig::for_scenario(grid, workers), &mut rng);
        (store, net)
    }

    /// A synthetic buffer where move 3 always earns reward 1 and everything
    /// else earns 0.
    fn synthetic_buffer(n: usize, state_len: usize, rng: &mut StdRng) -> RolloutBuffer {
        use rand::Rng;
        let mut buf = RolloutBuffer::new();
        for _ in 0..n {
            let mv = rng.gen_range(0..MOVES_PER_WORKER);
            let reward = if mv == 3 { 1.0 } else { 0.0 };
            buf.push(Transition {
                state: vec![0.1; state_len],
                moves: vec![mv],
                charges: vec![0],
                move_mask: vec![true; MOVES_PER_WORKER],
                charge_mask: vec![true; CHARGE_CHOICES],
                logp: (1.0f32 / 18.0).ln(), // roughly uniform behavior policy
                reward,
                value: 0.0,
            });
        }
        buf
    }

    #[test]
    fn finish_rollout_installs_targets() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut buf = synthetic_buffer(16, 8, &mut rng);
        finish_rollout(&mut buf, &PpoConfig::default(), 0.0);
        assert!(buf.has_targets());
        // Normalized advantages have near-zero mean.
        let mean: f32 = (0..buf.len()).map(|i| buf.adv(i)).sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 1e-4);
    }

    #[test]
    fn grads_are_produced_and_finite() {
        let (mut store, net) = build_net(8, 1, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = synthetic_buffer(12, 3 * 8 * 8, &mut rng);
        finish_rollout(&mut buf, &PpoConfig::default(), 0.0);
        let idx: Vec<usize> = (0..buf.len()).collect();
        let stats = compute_ppo_grads(&net, &mut store, &buf, &idx, &PpoConfig::default());
        assert!(stats.value_loss.is_finite());
        assert!(stats.entropy > 0.0, "fresh policy entropy must be positive");
        assert!(store.grad_global_norm() > 0.0, "no gradients flowed");
        for id in store.ids() {
            assert!(!store.grad(id).has_non_finite(), "non-finite grad in {}", store.name(id));
        }
    }

    #[test]
    fn ppo_increases_probability_of_rewarded_action() {
        // On-policy bandit: move 3 earns reward 1, everything else 0.
        // Repeated rollout → update cycles must push the policy toward
        // move 3 — the sanity check for the whole PPO pipeline.
        use crate::policy::sample_categorical;
        use rand::Rng;

        let (mut store, net) = build_net(8, 1, 7);
        let cfg = PpoConfig { minibatch: 64, ..PpoConfig::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let mut opt = Adam::new(3e-3);

        let policy_probs = |store: &ParamStore| -> (Vec<f32>, Vec<f32>) {
            let mut g = Graph::new();
            let s = g.leaf(Tensor::from_vec(&[1, 3, 8, 8], vec![0.1; 192]));
            let out = net.forward(&mut g, store, s);
            let sm = g.softmax(out.move_logits);
            let sc = g.softmax(out.charge_logits);
            (g.value(sm).data().to_vec(), g.value(sc).data().to_vec())
        };

        let before = policy_probs(&store).0[3];
        for _ in 0..60 {
            // On-policy rollout: sample from the *current* policy and store
            // its true log-probs.
            let (mp, cp) = policy_probs(&store);
            let mut buf = RolloutBuffer::new();
            for _ in 0..64 {
                let mv = sample_categorical(&mp, &mut rng);
                let ch = if rng.gen::<f32>() < cp[1] { 1 } else { 0 };
                buf.push(Transition {
                    state: vec![0.1; 192],
                    moves: vec![mv],
                    charges: vec![ch],
                    move_mask: vec![true; MOVES_PER_WORKER],
                    charge_mask: vec![true; CHARGE_CHOICES],
                    logp: mp[mv].max(1e-12).ln() + cp[ch].max(1e-12).ln(),
                    reward: if mv == 3 { 1.0 } else { 0.0 },
                    value: 0.0,
                });
            }
            finish_rollout(&mut buf, &cfg, 0.0);
            for batch in buf.minibatch_indices(cfg.minibatch, &mut rng) {
                store.zero_grads();
                compute_ppo_grads(&net, &mut store, &buf, &batch, &cfg);
                store.clip_grad_norm(cfg.max_grad_norm);
                opt.step(&mut store);
            }
        }
        let after = policy_probs(&store).0[3];
        assert!(
            after > before * 2.0 && after > 0.4,
            "P(move 3) went {before:.3} -> {after:.3}; PPO failed to learn"
        );
    }

    #[test]
    fn clip_bounds_update_incentive() {
        // With strongly off-policy old log-probs the ratio saturates the
        // clip; the objective must remain finite.
        let (mut store, net) = build_net(8, 1, 9);
        let mut buf = RolloutBuffer::new();
        for i in 0..8 {
            buf.push(Transition {
                state: vec![0.0; 192],
                moves: vec![i % MOVES_PER_WORKER],
                charges: vec![i % 2],
                move_mask: vec![true; MOVES_PER_WORKER],
                charge_mask: vec![true; CHARGE_CHOICES],
                logp: -20.0, // absurdly unlikely under behavior policy
                reward: 1.0,
                value: 0.0,
            });
        }
        finish_rollout(&mut buf, &PpoConfig::default(), 0.0);
        let idx: Vec<usize> = (0..buf.len()).collect();
        let stats = compute_ppo_grads(&net, &mut store, &buf, &idx, &PpoConfig::default());
        assert!(stats.policy_objective.is_finite());
        assert!(!store.flat_grads().iter().any(|g| !g.is_finite()));
    }

    #[test]
    fn value_clipping_bounds_the_value_loss() {
        // PPO2 value clipping takes max(sq, sq_clipped) per sample, so the
        // clipped loss reads >= the unclipped loss while its *gradient* is
        // bounded near the old value estimate. Contract checked here: both
        // variants stay finite and the ordering holds.
        let (mut store, net) = build_net(8, 1, 21);
        let mut buf = RolloutBuffer::new();
        for i in 0..8 {
            buf.push(Transition {
                state: vec![0.0; 192],
                moves: vec![i % MOVES_PER_WORKER],
                charges: vec![0],
                move_mask: vec![true; MOVES_PER_WORKER],
                charge_mask: vec![true; CHARGE_CHOICES],
                logp: -3.0,
                reward: 100.0, // huge returns vs ~0 values
                value: 0.0,
            });
        }
        let base = PpoConfig { clip_value: false, ..PpoConfig::default() };
        finish_rollout(&mut buf, &base, 0.0);
        let idx: Vec<usize> = (0..buf.len()).collect();

        store.zero_grads();
        let unclipped = compute_ppo_grads(&net, &mut store, &buf, &idx, &base);

        let clipped_cfg = PpoConfig { clip_value: true, ..base };
        let mut store2 = {
            let (s, _) = build_net(8, 1, 21);
            s
        };
        let clipped = compute_ppo_grads(&net, &mut store2, &buf, &idx, &clipped_cfg);

        assert!(unclipped.value_loss.is_finite() && clipped.value_loss.is_finite());
        // max(sq, sq_clip) >= sq pointwise, so the clipped loss reads higher
        // or equal...
        assert!(clipped.value_loss >= unclipped.value_loss - 1e-3);
        assert!(!store2.flat_grads().iter().any(|g| !g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "finish_rollout")]
    fn updating_without_targets_panics() {
        let (mut store, net) = build_net(8, 1, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let buf = synthetic_buffer(4, 192, &mut rng);
        compute_ppo_grads(&net, &mut store, &buf, &[0, 1], &PpoConfig::default());
    }
}
