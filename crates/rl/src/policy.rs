//! Action sampling from the actor–critic (Algorithm 1, lines 5–6).
//!
//! The server feeds the encoded state through the CNN, obtains per-worker
//! move and charge distributions, and samples a joint action. Invalid-action
//! masking is optional: the paper trains with a collision penalty rather
//! than a hard mask (Eqn 18's `τ`), but masking is exposed for ablations and
//! for safe deployment at test time.

use crate::net::{ActorCritic, FleetActorCritic, CHARGE_CHOICES, MOVES_PER_WORKER};
use rand::Rng;
use vc_env::prelude::*;
use vc_nn::prelude::*;

/// Logit value used to disable a masked action.
const MASK_LOGIT: f32 = -1e9;

/// A sampled joint action plus the quantities stored in the rollout buffer.
#[derive(Clone, Debug)]
pub struct SampledAction {
    /// Ready-to-step environment actions.
    pub actions: Vec<WorkerAction>,
    /// Per-worker move indices (into [`Move::ALL`]).
    pub moves: Vec<usize>,
    /// Per-worker charge decisions (0 = don't, 1 = charge).
    pub charges: Vec<usize>,
    /// The move-validity mask applied at sampling time, flattened to
    /// `[W * NUM_MOVES]` (all-true if unmasked). PPO updates must re-apply
    /// it so new and old log-probabilities describe the same distribution.
    pub move_mask: Vec<bool>,
    /// The charge-validity mask applied at sampling time, `[W * 2]`.
    pub charge_mask: Vec<bool>,
    /// Joint log-probability under the behavior policy.
    pub logp: f32,
    /// Value estimate `V(s)`.
    pub value: f32,
}

/// Samples an index from a probability row.
pub fn sample_categorical(probs: &[f32], rng: &mut impl Rng) -> usize {
    let total: f32 = probs.iter().sum();
    let mut u = rng.gen::<f32>() * total.max(1e-12);
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum element.
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// How actions are drawn from the policy distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample from the categorical distributions (training).
    Stochastic,
    /// Take the mode of each distribution (evaluation).
    Greedy,
}

/// Policy-evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct PolicyOptions {
    /// How actions are drawn from the policy distributions.
    pub mode: SampleMode,
    /// Mask moves that would collide and charge requests out of station
    /// range before sampling.
    pub mask_invalid: bool,
}

impl Default for PolicyOptions {
    fn default() -> Self {
        Self { mode: SampleMode::Stochastic, mask_invalid: false }
    }
}

/// Stacks the encoded states of `envs` into one `[E, C, H, W]` leaf and
/// runs a single forward pass, returning the batched graph outputs.
///
/// All environments must share the network's worker count and grid. The
/// per-row arithmetic of every kernel is bitwise independent of the batch
/// dimension (pinned by the blocked-vs-naive GEMM equivalence tests), so
/// row `e` of the batched outputs is bit-identical to a batch-of-one
/// forward of `envs[e]`.
fn forward_batched(
    net: &ActorCritic,
    store: &ParamStore,
    envs: &[&CrowdsensingEnv],
    g: &mut Graph,
) -> crate::net::NetOutputs {
    let s = stack_states(envs, net.config().num_workers, g);
    net.forward(g, store, s)
}

/// Encodes every environment into one `[E, C, H, W]` leaf (arena-backed, no
/// per-env temporaries thanks to `encode_into`).
fn stack_states(envs: &[&CrowdsensingEnv], expected_workers: usize, g: &mut Graph) -> NodeId {
    let cfg = envs[0].config();
    let shape = vc_env::state::state_shape(cfg);
    let item = shape[0] * shape[1] * shape[2];
    let mut stacked = vc_nn::arena::take_f32(envs.len() * item);
    for env in envs {
        assert_eq!(
            env.config().num_workers,
            expected_workers,
            "network sized for a different worker count"
        );
        vc_env::state::encode_into(env, &mut stacked);
    }
    g.leaf(Tensor::from_vec(&[envs.len(), shape[0], shape[1], shape[2]], stacked))
}

/// Encodes every environment, runs **one** batched forward pass and samples
/// a joint action per environment.
///
/// This is the rollout hot path: `E` lockstep episodes cost one network
/// evaluation per step instead of `E`, amortizing graph construction and
/// pushing the per-step GEMMs into shapes the blocked kernel likes. The RNG
/// is consumed in environment order then worker order — exactly the order
/// `E` sequential [`sample_action`] calls would use — and the underlying
/// kernels are batch-invariant, so results match the sequential path.
pub fn sample_actions_batched(
    net: &ActorCritic,
    store: &ParamStore,
    envs: &[&CrowdsensingEnv],
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> Vec<SampledAction> {
    if envs.is_empty() {
        return Vec::new();
    }
    let mut g = Graph::new();
    let out = forward_batched(net, store, envs, &mut g);
    let values: Vec<f32> = g.value(out.value).data().to_vec();
    let move_logits = g.value(out.move_logits).clone(); // [E·W, 9]
    let charge_logits = g.value(out.charge_logits).clone(); // [E·W, 2]
    sample_from_logits(
        &values,
        move_logits,
        charge_logits,
        envs,
        net.config().num_workers,
        opts,
        rng,
    )
}

/// Masks, renormalizes and samples per-worker actions from batched logit
/// tensors — the shared back half of the joint and fleet-factored samplers.
/// Both nets emit the same `[E·W, A]` env-major worker-minor row layout and
/// the RNG is consumed in that order, so each front end inherits the
/// batched-equals-sequential bitwise guarantee.
fn sample_from_logits(
    values: &[f32],
    mut move_logits: Tensor,
    mut charge_logits: Tensor,
    envs: &[&CrowdsensingEnv],
    w_count: usize,
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> Vec<SampledAction> {
    let e_count = envs.len();
    let mut sampled = Vec::with_capacity(e_count);
    for (ei, env) in envs.iter().enumerate() {
        let mut move_mask = vec![true; w_count * MOVES_PER_WORKER];
        let mut charge_mask = vec![true; w_count * CHARGE_CHOICES];
        if opts.mask_invalid {
            for wi in 0..w_count {
                let row = ei * w_count + wi;
                let mask = env.valid_moves(wi);
                for (mi, ok) in mask.iter().enumerate() {
                    if !ok {
                        *move_logits.at2_mut(row, mi) = MASK_LOGIT;
                        move_mask[wi * MOVES_PER_WORKER + mi] = false;
                    }
                }
                if !env.can_charge(wi) {
                    *charge_logits.at2_mut(row, 1) = MASK_LOGIT;
                    charge_mask[wi * CHARGE_CHOICES + 1] = false;
                }
            }
        }
        sampled.push((move_mask, charge_mask));
    }

    let move_probs = vc_nn::ops::softmax::softmax_rows(&move_logits);
    let charge_probs = vc_nn::ops::softmax::softmax_rows(&charge_logits);

    sampled
        .into_iter()
        .enumerate()
        .map(|(ei, (move_mask, charge_mask))| {
            let mut actions = Vec::with_capacity(w_count);
            let mut moves = Vec::with_capacity(w_count);
            let mut charges = Vec::with_capacity(w_count);
            let mut logp = 0.0f32;
            for wi in 0..w_count {
                let row = ei * w_count + wi;
                let mp = &move_probs.data()[row * MOVES_PER_WORKER..(row + 1) * MOVES_PER_WORKER];
                let cp = &charge_probs.data()[row * CHARGE_CHOICES..(row + 1) * CHARGE_CHOICES];
                let (mv, ch) = match opts.mode {
                    SampleMode::Stochastic => {
                        (sample_categorical(mp, rng), sample_categorical(cp, rng))
                    }
                    SampleMode::Greedy => (argmax(mp), argmax(cp)),
                };
                logp += mp[mv].max(1e-12).ln() + cp[ch].max(1e-12).ln();
                moves.push(mv);
                charges.push(ch);
                actions.push(WorkerAction { movement: Move::from_index(mv), charge: ch == 1 });
            }
            SampledAction {
                actions,
                moves,
                charges,
                move_mask,
                charge_mask,
                logp,
                value: values[ei],
            }
        })
        .collect()
}

/// Encodes the environment state, runs the network and samples a joint
/// action for every worker. Batch-of-one wrapper over
/// [`sample_actions_batched`].
pub fn sample_action(
    net: &ActorCritic,
    store: &ParamStore,
    env: &CrowdsensingEnv,
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> SampledAction {
    let mut batch = sample_actions_batched(net, store, &[env], opts, rng);
    batch.swap_remove(0)
}

/// Fleet-major variant of [`sample_actions_batched`]: one batched forward
/// through the factored [`FleetActorCritic`], whose head cost is
/// independent of the worker count — the sampling front end for
/// 1000-worker fleets.
///
/// The factored net emits the same `[E·W, A]` row layout, and masking,
/// softmax and RNG consumption go through the shared
/// [`sample_from_logits`] back half, so fleet-major batching is
/// bitwise-identical to `E` sequential [`sample_action_fleet`] calls (at
/// paper scale and above; pinned by the policy tests).
pub fn sample_actions_fleet(
    net: &FleetActorCritic,
    store: &ParamStore,
    envs: &[&CrowdsensingEnv],
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> Vec<SampledAction> {
    if envs.is_empty() {
        return Vec::new();
    }
    let mut g = Graph::new();
    let s = stack_states(envs, net.config().num_workers, &mut g);
    let out = net.forward(&mut g, store, s);
    let values: Vec<f32> = g.value(out.value).data().to_vec();
    let move_logits = g.value(out.move_logits).clone(); // [E·W, 9]
    let charge_logits = g.value(out.charge_logits).clone(); // [E·W, 2]
    sample_from_logits(
        &values,
        move_logits,
        charge_logits,
        envs,
        net.config().num_workers,
        opts,
        rng,
    )
}

/// Batch-of-one wrapper over [`sample_actions_fleet`].
pub fn sample_action_fleet(
    net: &FleetActorCritic,
    store: &ParamStore,
    env: &CrowdsensingEnv,
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> SampledAction {
    let mut batch = sample_actions_fleet(net, store, &[env], opts, rng);
    batch.swap_remove(0)
}

/// State values `V(s)` from the fleet net (bootstrap targets, vectorized).
pub fn state_values_fleet(
    net: &FleetActorCritic,
    store: &ParamStore,
    envs: &[&CrowdsensingEnv],
) -> Vec<f32> {
    if envs.is_empty() {
        return Vec::new();
    }
    let mut g = Graph::new();
    let s = stack_states(envs, net.config().num_workers, &mut g);
    let out = net.forward(&mut g, store, s);
    g.value(out.value).data().to_vec()
}

/// One batched forward returning only the state values `V(s)` for each
/// environment (the bootstrap `V(s_T)` of Eqn 11, vectorized).
pub fn state_values_batched(
    net: &ActorCritic,
    store: &ParamStore,
    envs: &[&CrowdsensingEnv],
) -> Vec<f32> {
    if envs.is_empty() {
        return Vec::new();
    }
    let mut g = Graph::new();
    let out = forward_batched(net, store, envs, &mut g);
    g.value(out.value).data().to_vec()
}

/// Runs the network once and returns the state value only (the bootstrap
/// `V(s_T)` of Eqn 11).
pub fn state_value(net: &ActorCritic, store: &ParamStore, env: &CrowdsensingEnv) -> f32 {
    state_values_batched(net, store, &[env])[0]
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::net::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, ActorCritic, CrowdsensingEnv, StdRng) {
        let env = CrowdsensingEnv::new(EnvConfig::tiny());
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let net = ActorCritic::new(
            &mut store,
            NetConfig::for_scenario(env.config().grid, env.config().num_workers),
            &mut rng,
        );
        (store, net, env, rng)
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = [0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), 1);
        }
        // Roughly proportional draws from a skewed distribution.
        let probs = [0.8, 0.2];
        let hits = (0..2000).filter(|_| sample_categorical(&probs, &mut rng) == 0).count();
        assert!((1400..1800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn sampled_actions_are_well_formed() {
        let (store, net, env, mut rng) = setup();
        let a = sample_action(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert_eq!(a.actions.len(), env.config().num_workers);
        assert!(a.logp <= 0.0, "log-prob must be non-positive");
        assert!(a.logp.is_finite());
        for (wi, act) in a.actions.iter().enumerate() {
            assert_eq!(act.movement.index(), a.moves[wi]);
            assert_eq!(act.charge, a.charges[wi] == 1);
        }
    }

    #[test]
    fn greedy_mode_is_deterministic() {
        let (store, net, env, mut rng) = setup();
        let opts = PolicyOptions { mode: SampleMode::Greedy, mask_invalid: false };
        let a = sample_action(&net, &store, &env, opts, &mut rng);
        let b = sample_action(&net, &store, &env, opts, &mut rng);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.charges, b.charges);
    }

    #[test]
    fn masking_prevents_invalid_choices() {
        let (store, net, mut env, mut rng) = setup();
        // Park the worker in a corner: several moves become illegal.
        env.teleport_worker(0, Point::new(0.0, 0.0));
        let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
        for _ in 0..50 {
            let a = sample_action(&net, &store, &env, opts, &mut rng);
            let mask = env.valid_moves(0);
            assert!(mask[a.moves[0]], "sampled a masked move {:?}", a.moves[0]);
            if !env.can_charge(0) {
                assert_eq!(a.charges[0], 0, "sampled charge while out of range");
            }
        }
    }

    #[test]
    fn state_value_matches_sampled_value() {
        let (store, net, env, mut rng) = setup();
        let v = state_value(&net, &store, &env);
        let a = sample_action(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert!((v - a.value).abs() < 1e-6);
    }

    #[test]
    fn batched_greedy_matches_sequential_bitwise() {
        // Kernel arithmetic is batch-invariant, so one [3, C, H, W] forward
        // must reproduce three batch-of-one forwards bit for bit.
        let (store, net, env, mut rng) = setup();
        let mut env_b = CrowdsensingEnv::new(env.config().clone());
        let mut env_c = CrowdsensingEnv::new(env.config().clone());
        // Diversify the states so a batch-index mixup would be caught.
        let acts: Vec<WorkerAction> = (0..env.config().num_workers)
            .map(|_| WorkerAction { movement: Move::from_index(1), charge: false })
            .collect();
        let _ = env_b.step(&acts);
        let _ = env_c.step(&acts);
        let _ = env_c.step(&acts);

        let opts = PolicyOptions { mode: SampleMode::Greedy, mask_invalid: true };
        let batched = sample_actions_batched(&net, &store, &[&env, &env_b, &env_c], opts, &mut rng);
        assert_eq!(batched.len(), 3);
        for (i, e) in [&env, &env_b, &env_c].into_iter().enumerate() {
            let single = sample_action(&net, &store, e, opts, &mut rng);
            assert_eq!(batched[i].moves, single.moves, "env {i} moves diverged");
            assert_eq!(batched[i].charges, single.charges, "env {i} charges diverged");
            assert_eq!(batched[i].move_mask, single.move_mask);
            assert_eq!(batched[i].charge_mask, single.charge_mask);
            assert_eq!(
                batched[i].value.to_bits(),
                single.value.to_bits(),
                "env {i} value not bit-identical: batched {} vs single {}",
                batched[i].value,
                single.value
            );
            assert_eq!(batched[i].logp.to_bits(), single.logp.to_bits(), "env {i} logp diverged");
        }
    }

    #[test]
    fn batched_stochastic_consumes_rng_in_sequential_order() {
        // With identical probabilities, the batched sampler must draw from
        // the RNG in env-major, worker-minor order — the same stream E
        // sequential calls would consume.
        let (store, net, env, _) = setup();
        let mut env_b = CrowdsensingEnv::new(env.config().clone());
        let acts: Vec<WorkerAction> = (0..env.config().num_workers)
            .map(|_| WorkerAction { movement: Move::from_index(2), charge: false })
            .collect();
        let _ = env_b.step(&acts);

        let opts = PolicyOptions::default();
        let mut rng_batched = StdRng::seed_from_u64(77);
        let batched = sample_actions_batched(&net, &store, &[&env, &env_b], opts, &mut rng_batched);

        let mut rng_seq = StdRng::seed_from_u64(77);
        let first = sample_action(&net, &store, &env, opts, &mut rng_seq);
        let second = sample_action(&net, &store, &env_b, opts, &mut rng_seq);
        assert_eq!(batched[0].moves, first.moves);
        assert_eq!(batched[0].charges, first.charges);
        assert_eq!(batched[1].moves, second.moves);
        assert_eq!(batched[1].charges, second.charges);
    }

    fn setup_fleet() -> (ParamStore, FleetActorCritic, CrowdsensingEnv, StdRng) {
        let env = CrowdsensingEnv::new(EnvConfig::tiny());
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let net = FleetActorCritic::new(
            &mut store,
            NetConfig::for_scenario(env.config().grid, env.config().num_workers),
            &mut rng,
        );
        (store, net, env, rng)
    }

    #[test]
    fn fleet_sampled_actions_are_well_formed() {
        let (store, net, env, mut rng) = setup_fleet();
        let a = sample_action_fleet(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert_eq!(a.actions.len(), env.config().num_workers);
        assert!(a.logp <= 0.0 && a.logp.is_finite());
        for (wi, act) in a.actions.iter().enumerate() {
            assert_eq!(act.movement.index(), a.moves[wi]);
            assert_eq!(act.charge, a.charges[wi] == 1);
        }
    }

    #[test]
    fn fleet_batched_greedy_matches_sequential_bitwise() {
        // The fleet-major path inherits the batch-invariance of the
        // kernels: one [3, C, H, W] forward must reproduce three
        // batch-of-one fleet forwards bit for bit.
        let (store, net, env, mut rng) = setup_fleet();
        let mut env_b = CrowdsensingEnv::new(env.config().clone());
        let mut env_c = CrowdsensingEnv::new(env.config().clone());
        let acts: Vec<WorkerAction> = (0..env.config().num_workers)
            .map(|_| WorkerAction { movement: Move::from_index(1), charge: false })
            .collect();
        let _ = env_b.step(&acts);
        let _ = env_c.step(&acts);
        let _ = env_c.step(&acts);

        let opts = PolicyOptions { mode: SampleMode::Greedy, mask_invalid: true };
        let batched = sample_actions_fleet(&net, &store, &[&env, &env_b, &env_c], opts, &mut rng);
        assert_eq!(batched.len(), 3);
        for (i, e) in [&env, &env_b, &env_c].into_iter().enumerate() {
            let single = sample_action_fleet(&net, &store, e, opts, &mut rng);
            assert_eq!(batched[i].moves, single.moves, "env {i} moves diverged");
            assert_eq!(batched[i].charges, single.charges, "env {i} charges diverged");
            assert_eq!(batched[i].move_mask, single.move_mask);
            assert_eq!(batched[i].charge_mask, single.charge_mask);
            assert_eq!(
                batched[i].value.to_bits(),
                single.value.to_bits(),
                "env {i} value not bit-identical"
            );
            assert_eq!(batched[i].logp.to_bits(), single.logp.to_bits(), "env {i} logp diverged");
        }
    }

    #[test]
    fn fleet_batched_stochastic_consumes_rng_in_sequential_order() {
        let (store, net, env, _) = setup_fleet();
        let mut env_b = CrowdsensingEnv::new(env.config().clone());
        let acts: Vec<WorkerAction> = (0..env.config().num_workers)
            .map(|_| WorkerAction { movement: Move::from_index(2), charge: false })
            .collect();
        let _ = env_b.step(&acts);

        let opts = PolicyOptions::default();
        let mut rng_batched = StdRng::seed_from_u64(77);
        let batched = sample_actions_fleet(&net, &store, &[&env, &env_b], opts, &mut rng_batched);

        let mut rng_seq = StdRng::seed_from_u64(77);
        let first = sample_action_fleet(&net, &store, &env, opts, &mut rng_seq);
        let second = sample_action_fleet(&net, &store, &env_b, opts, &mut rng_seq);
        assert_eq!(batched[0].moves, first.moves);
        assert_eq!(batched[0].charges, first.charges);
        assert_eq!(batched[1].moves, second.moves);
        assert_eq!(batched[1].charges, second.charges);
    }

    #[test]
    fn fleet_masking_prevents_invalid_choices() {
        let (store, net, mut env, mut rng) = setup_fleet();
        env.teleport_worker(0, Point::new(0.0, 0.0));
        let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
        for _ in 0..50 {
            let a = sample_action_fleet(&net, &store, &env, opts, &mut rng);
            let mask = env.valid_moves(0);
            assert!(mask[a.moves[0]], "sampled a masked move {:?}", a.moves[0]);
            if !env.can_charge(0) {
                assert_eq!(a.charges[0], 0, "sampled charge while out of range");
            }
        }
    }

    #[test]
    fn fleet_state_values_match_sampled_values() {
        let (store, net, env, mut rng) = setup_fleet();
        let vs = state_values_fleet(&net, &store, &[&env]);
        let a = sample_action_fleet(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert_eq!(vs[0].to_bits(), a.value.to_bits());
        assert!(
            sample_actions_fleet(&net, &store, &[], PolicyOptions::default(), &mut rng).is_empty()
        );
        assert!(state_values_fleet(&net, &store, &[]).is_empty());
    }

    #[test]
    fn state_values_batched_matches_singles() {
        let (store, net, env, _) = setup();
        let mut env_b = CrowdsensingEnv::new(env.config().clone());
        let acts: Vec<WorkerAction> = (0..env.config().num_workers)
            .map(|_| WorkerAction { movement: Move::from_index(3), charge: false })
            .collect();
        let _ = env_b.step(&acts);
        let vs = state_values_batched(&net, &store, &[&env, &env_b]);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].to_bits(), state_value(&net, &store, &env).to_bits());
        assert_eq!(vs[1].to_bits(), state_value(&net, &store, &env_b).to_bits());
    }

    #[test]
    fn empty_batch_is_empty() {
        let (store, net, _, mut rng) = setup();
        assert!(sample_actions_batched(&net, &store, &[], PolicyOptions::default(), &mut rng)
            .is_empty());
        assert!(state_values_batched(&net, &store, &[]).is_empty());
    }
}
