//! Action sampling from the actor–critic (Algorithm 1, lines 5–6).
//!
//! The server feeds the encoded state through the CNN, obtains per-worker
//! move and charge distributions, and samples a joint action. Invalid-action
//! masking is optional: the paper trains with a collision penalty rather
//! than a hard mask (Eqn 18's `τ`), but masking is exposed for ablations and
//! for safe deployment at test time.

use crate::net::{ActorCritic, CHARGE_CHOICES, MOVES_PER_WORKER};
use rand::Rng;
use vc_env::prelude::*;
use vc_nn::prelude::*;

/// Logit value used to disable a masked action.
const MASK_LOGIT: f32 = -1e9;

/// A sampled joint action plus the quantities stored in the rollout buffer.
#[derive(Clone, Debug)]
pub struct SampledAction {
    /// Ready-to-step environment actions.
    pub actions: Vec<WorkerAction>,
    /// Per-worker move indices (into [`Move::ALL`]).
    pub moves: Vec<usize>,
    /// Per-worker charge decisions (0 = don't, 1 = charge).
    pub charges: Vec<usize>,
    /// The move-validity mask applied at sampling time, flattened to
    /// `[W * NUM_MOVES]` (all-true if unmasked). PPO updates must re-apply
    /// it so new and old log-probabilities describe the same distribution.
    pub move_mask: Vec<bool>,
    /// The charge-validity mask applied at sampling time, `[W * 2]`.
    pub charge_mask: Vec<bool>,
    /// Joint log-probability under the behavior policy.
    pub logp: f32,
    /// Value estimate `V(s)`.
    pub value: f32,
}

/// Samples an index from a probability row.
pub fn sample_categorical(probs: &[f32], rng: &mut impl Rng) -> usize {
    let total: f32 = probs.iter().sum();
    let mut u = rng.gen::<f32>() * total.max(1e-12);
    for (i, &p) in probs.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Index of the maximum element.
pub fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// How actions are drawn from the policy distributions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Sample from the categorical distributions (training).
    Stochastic,
    /// Take the mode of each distribution (evaluation).
    Greedy,
}

/// Policy-evaluation options.
#[derive(Clone, Copy, Debug)]
pub struct PolicyOptions {
    /// How actions are drawn from the policy distributions.
    pub mode: SampleMode,
    /// Mask moves that would collide and charge requests out of station
    /// range before sampling.
    pub mask_invalid: bool,
}

impl Default for PolicyOptions {
    fn default() -> Self {
        Self { mode: SampleMode::Stochastic, mask_invalid: false }
    }
}

/// Encodes the environment state, runs the network and samples a joint
/// action for every worker.
pub fn sample_action(
    net: &ActorCritic,
    store: &ParamStore,
    env: &CrowdsensingEnv,
    opts: PolicyOptions,
    rng: &mut impl Rng,
) -> SampledAction {
    let cfg = env.config();
    let w_count = cfg.num_workers;
    assert_eq!(net.config().num_workers, w_count, "network sized for a different worker count");

    let state = vc_env::state::encode(env);
    let shape = vc_env::state::state_shape(cfg);
    let mut g = Graph::new();
    let s = g.leaf(Tensor::from_vec(&[1, shape[0], shape[1], shape[2]], state));
    let out = net.forward(&mut g, store, s);

    let mut move_logits = g.value(out.move_logits).clone();
    let mut charge_logits = g.value(out.charge_logits).clone();
    let value = g.value(out.value).item();

    let mut move_mask = vec![true; w_count * MOVES_PER_WORKER];
    let mut charge_mask = vec![true; w_count * CHARGE_CHOICES];
    if opts.mask_invalid {
        for wi in 0..w_count {
            let mask = env.valid_moves(wi);
            for (mi, ok) in mask.iter().enumerate() {
                if !ok {
                    *move_logits.at2_mut(wi, mi) = MASK_LOGIT;
                    move_mask[wi * MOVES_PER_WORKER + mi] = false;
                }
            }
            if !env.can_charge(wi) {
                *charge_logits.at2_mut(wi, 1) = MASK_LOGIT;
                charge_mask[wi * CHARGE_CHOICES + 1] = false;
            }
        }
    }

    let move_probs = vc_nn::ops::softmax::softmax_rows(&move_logits);
    let charge_probs = vc_nn::ops::softmax::softmax_rows(&charge_logits);

    let mut actions = Vec::with_capacity(w_count);
    let mut moves = Vec::with_capacity(w_count);
    let mut charges = Vec::with_capacity(w_count);
    let mut logp = 0.0f32;
    for wi in 0..w_count {
        let mp = &move_probs.data()[wi * MOVES_PER_WORKER..(wi + 1) * MOVES_PER_WORKER];
        let cp = &charge_probs.data()[wi * CHARGE_CHOICES..(wi + 1) * CHARGE_CHOICES];
        let (mv, ch) = match opts.mode {
            SampleMode::Stochastic => (sample_categorical(mp, rng), sample_categorical(cp, rng)),
            SampleMode::Greedy => (argmax(mp), argmax(cp)),
        };
        logp += mp[mv].max(1e-12).ln() + cp[ch].max(1e-12).ln();
        moves.push(mv);
        charges.push(ch);
        actions.push(WorkerAction { movement: Move::from_index(mv), charge: ch == 1 });
    }

    SampledAction { actions, moves, charges, move_mask, charge_mask, logp, value }
}

/// Runs the network once and returns the state value only (the bootstrap
/// `V(s_T)` of Eqn 11).
pub fn state_value(net: &ActorCritic, store: &ParamStore, env: &CrowdsensingEnv) -> f32 {
    let cfg = env.config();
    let state = vc_env::state::encode(env);
    let shape = vc_env::state::state_shape(cfg);
    let mut g = Graph::new();
    let s = g.leaf(Tensor::from_vec(&[1, shape[0], shape[1], shape[2]], state));
    let out = net.forward(&mut g, store, s);
    g.value(out.value).item()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::net::NetConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, ActorCritic, CrowdsensingEnv, StdRng) {
        let env = CrowdsensingEnv::new(EnvConfig::tiny());
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let net = ActorCritic::new(
            &mut store,
            NetConfig::for_scenario(env.config().grid, env.config().num_workers),
            &mut rng,
        );
        (store, net, env, rng)
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = [0.0, 1.0, 0.0];
        for _ in 0..20 {
            assert_eq!(sample_categorical(&probs, &mut rng), 1);
        }
        // Roughly proportional draws from a skewed distribution.
        let probs = [0.8, 0.2];
        let hits = (0..2000).filter(|_| sample_categorical(&probs, &mut rng) == 0).count();
        assert!((1400..1800).contains(&hits), "hits {hits}");
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
        assert_eq!(argmax(&[1.0]), 0);
    }

    #[test]
    fn sampled_actions_are_well_formed() {
        let (store, net, env, mut rng) = setup();
        let a = sample_action(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert_eq!(a.actions.len(), env.config().num_workers);
        assert!(a.logp <= 0.0, "log-prob must be non-positive");
        assert!(a.logp.is_finite());
        for (wi, act) in a.actions.iter().enumerate() {
            assert_eq!(act.movement.index(), a.moves[wi]);
            assert_eq!(act.charge, a.charges[wi] == 1);
        }
    }

    #[test]
    fn greedy_mode_is_deterministic() {
        let (store, net, env, mut rng) = setup();
        let opts = PolicyOptions { mode: SampleMode::Greedy, mask_invalid: false };
        let a = sample_action(&net, &store, &env, opts, &mut rng);
        let b = sample_action(&net, &store, &env, opts, &mut rng);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.charges, b.charges);
    }

    #[test]
    fn masking_prevents_invalid_choices() {
        let (store, net, mut env, mut rng) = setup();
        // Park the worker in a corner: several moves become illegal.
        env.teleport_worker(0, Point::new(0.0, 0.0));
        let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };
        for _ in 0..50 {
            let a = sample_action(&net, &store, &env, opts, &mut rng);
            let mask = env.valid_moves(0);
            assert!(mask[a.moves[0]], "sampled a masked move {:?}", a.moves[0]);
            if !env.can_charge(0) {
                assert_eq!(a.charges[0], 0, "sampled charge while out of range");
            }
        }
    }

    #[test]
    fn state_value_matches_sampled_value() {
        let (store, net, env, mut rng) = setup();
        let v = state_value(&net, &store, &env);
        let a = sample_action(&net, &store, &env, PolicyOptions::default(), &mut rng);
        assert!((v - a.value).abs() < 1e-6);
    }
}
