//! The chief–employee distributed computational architecture (Section V-A,
//! Algorithms 1–2), hardened for long production-scale runs.
//!
//! One **chief** owns the global PPO and curiosity parameter stores and the
//! only optimizers. M **employee** threads each hold a local model copy and
//! a local environment. Training is *synchronous*: per update round `k`,
//! every employee computes gradients from its own experience and ships them
//! to the chief, which sums them through the global [`GradientBuffer`]s,
//! applies one Adam step per model, and broadcasts fresh parameters. (The
//! paper explicitly prefers this synchronous scheme over asynchronous
//! V-trace-style correction.)
//!
//! The paper assumes every employee survives every round. This executor does
//! not: employee round work runs under `std::panic::catch_unwind`, so a
//! panicking employee reports *why* it died instead of silently wedging the
//! barrier; a configurable round timeout declares hung employees dead; dead
//! employees are respawned from the current global parameter snapshot under
//! a bounded restart budget with exponential backoff; and gradient
//! contributions containing NaN/Inf are quarantined — dropped from the sum
//! with the divisor adjusted — instead of corrupting the global model. A
//! deterministic [`FaultPlan`] can inject panics, stalls and NaN gradients
//! at scripted rounds so every recovery path is exercised by seeded tests.
//!
//! The employee behavior is abstracted behind the [`Employee`] trait so the
//! same chief drives DRL-CEWS (PPO + curiosity), DPPO (PPO only) and Edics
//! (per-worker agents).
//!
//! All executor entry points are fallible: unrecoverable failures (exhausted
//! restart budget, protocol violations, malformed gradients) surface as
//! [`ChiefError`] instead of panicking inside library code (see DESIGN.md,
//! "Fault tolerance & resume").

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vc_telemetry::{Counter, Field, Histogram, Telemetry};

/// Errors surfaced by the chief–employee executor and its gradient buffers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChiefError {
    /// `ChiefExecutor::spawn` was called with an empty employee set.
    NoEmployees,
    /// The OS refused to spawn an employee thread.
    Spawn(String),
    /// An employee died (panicked, timed out, or closed its command channel)
    /// and no factory/budget was available to respawn it.
    EmployeeDied {
        /// Index of the dead employee.
        employee: usize,
        /// Why it died: the panic message, `"timed out after …"`, or
        /// `"command channel closed"`.
        reason: String,
    },
    /// An employee died and the restart budget was already spent.
    RestartBudgetExhausted {
        /// Index of the employee that could not be respawned.
        employee: usize,
        /// The configured total restart budget.
        budget: usize,
        /// Why the employee died this time.
        reason: String,
    },
    /// The shared reply channel closed: every employee thread is gone.
    ChannelClosed,
    /// A gradient contribution's length didn't match the accumulated sum.
    GradientLengthMismatch {
        /// Length of the running sum already in the buffer.
        expected: usize,
        /// Length of the offending contribution.
        got: usize,
    },
    /// A gather round completed with the wrong number of contributions in a
    /// buffer — some employee double-pushed or skipped its push.
    ContributionMismatch {
        /// Contributions the round should have produced.
        expected: usize,
        /// Contributions actually present in the buffer.
        got: usize,
        /// Which buffer disagreed (`"ppo"` or `"curiosity"`).
        buffer: &'static str,
    },
    /// An employee answered a phase with the wrong reply kind — the
    /// synchronous command/reply protocol was violated.
    UnexpectedReply {
        /// Index of the employee that sent the reply.
        employee: usize,
        /// The phase the chief was running (`"rollout"`, `"update"` or
        /// `"rng"`).
        during: &'static str,
    },
    /// A caller-provided state vector has the wrong cardinality (e.g. RNG
    /// states for a different employee count).
    StateMismatch {
        /// What kind of state disagreed.
        what: &'static str,
        /// Expected cardinality.
        expected: usize,
        /// Provided cardinality.
        got: usize,
    },
}

impl fmt::Display for ChiefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiefError::NoEmployees => write!(f, "need at least one employee"),
            ChiefError::Spawn(err) => write!(f, "failed to spawn employee thread: {err}"),
            ChiefError::EmployeeDied { employee, reason } => {
                write!(f, "employee {employee} died ({reason})")
            }
            ChiefError::RestartBudgetExhausted { employee, budget, reason } => {
                write!(
                    f,
                    "employee {employee} died ({reason}) with restart budget {budget} exhausted"
                )
            }
            ChiefError::ChannelClosed => write!(f, "reply channel closed: all employees are gone"),
            ChiefError::GradientLengthMismatch { expected, got } => {
                write!(
                    f,
                    "gradient length mismatch: buffer holds {expected}, contribution has {got}"
                )
            }
            ChiefError::ContributionMismatch { expected, got, buffer } => {
                write!(f, "{buffer} buffer finished a round with {got} contributions, expected {expected}")
            }
            ChiefError::UnexpectedReply { employee, during } => {
                write!(f, "employee {employee} sent the wrong reply kind during {during}")
            }
            ChiefError::StateMismatch { what, expected, got } => {
                write!(f, "{what} state count mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ChiefError {}

// ------------------------------------------------------------ fault plans

/// What a scripted fault does to the targeted employee.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Panic inside the update-round work (exercises `catch_unwind` +
    /// respawn).
    Panic,
    /// Swallow this and the next `rounds - 1` update commands without
    /// replying (exercises the round timeout + respawn).
    Stall {
        /// Number of consecutive update rounds to stay silent for.
        rounds: u64,
    },
    /// Replace every PPO gradient component with NaN (exercises
    /// quarantine).
    NanGrads,
}

/// One scripted fault: `kind` fires on `employee` at update round `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Target employee index.
    pub employee: usize,
    /// Global update-round counter value at which the fault fires.
    pub round: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault-injection script, threaded through [`ChiefConfig`]
/// into every employee thread. Empty by default (no faults).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scripted faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no faults are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one scripted fault (builder-style).
    pub fn with(mut self, employee: usize, round: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { employee, round, kind });
        self
    }

    /// The fault scripted for `employee` at `round`, if any.
    pub fn at(&self, employee: usize, round: u64) -> Option<FaultKind> {
        self.events.iter().find(|e| e.employee == employee && e.round == round).map(|e| e.kind)
    }
}

/// Fault-tolerance policy for a [`ChiefExecutor`].
#[derive(Clone, Debug)]
pub struct ChiefConfig {
    /// How long a gather phase waits for stragglers before declaring the
    /// missing employees dead. `None` waits forever (a hung employee then
    /// wedges the barrier, as in the paper's idealized scheme).
    pub round_timeout: Option<Duration>,
    /// Total employee respawns allowed across the executor's lifetime; once
    /// spent, the next death is fatal
    /// ([`ChiefError::RestartBudgetExhausted`]).
    pub restart_budget: usize,
    /// Base of the per-employee exponential respawn backoff: restart `n` of
    /// one employee sleeps a jittered `backoff_base * 2^n` (capped) — see
    /// [`jittered_backoff`] for the exact schedule.
    pub backoff_base: Duration,
    /// Upper bound on one backoff sleep.
    pub backoff_cap: Duration,
    /// Seed of the backoff-jitter stream. Plain exponential backoff
    /// synchronizes restart storms: several employees dying in the same
    /// round would otherwise all sleep the identical `base * 2^n` and
    /// respawn (and, under a shared-cause failure, die again) in lockstep.
    /// Mixing a per-chief seeded stream into every sleep decorrelates them
    /// while keeping the schedule deterministic for a given seed.
    pub backoff_seed: u64,
    /// Deterministic fault-injection script (empty in production).
    pub faults: FaultPlan,
}

impl Default for ChiefConfig {
    fn default() -> Self {
        Self {
            round_timeout: None,
            restart_budget: 0,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(5),
            backoff_seed: 0xBAC0_FF5E,
            faults: FaultPlan::none(),
        }
    }
}

/// The decorrelated respawn backoff: restart `n` sleeps uniformly in
/// `[target/2, target]` where `target = min(base * 2^min(n,16), cap)`.
///
/// The deterministic upper half of the exponential window preserves the
/// budget-exhaustion pacing the chaos suite relies on, while the seeded
/// uniform draw spreads simultaneous respawns across half a window so a
/// multi-employee death does not restart (and re-fail) in lockstep.
pub fn jittered_backoff(
    base: Duration,
    cap: Duration,
    restarts: usize,
    rng: &mut StdRng,
) -> Duration {
    let exponent = restarts.min(16) as u32;
    let target = base.saturating_mul(2u32.saturating_pow(exponent)).min(cap);
    if target.is_zero() {
        return target;
    }
    let target_ns = target.as_nanos().min(u128::from(u64::MAX)) as u64;
    let half = target_ns / 2;
    // One draw per sleep, consumed even when half == 0 so the stream
    // position is independent of the duration values.
    let jitter = rng.gen_range(0..half + 1);
    Duration::from_nanos(half + jitter)
}

// -------------------------------------------------------------- data types

/// Flat gradient vectors for the two global models. An empty curiosity
/// vector means the employee trains no curiosity model.
#[derive(Clone, Debug, Default)]
pub struct GradPair {
    /// Flat gradient of the global PPO (actor-critic) parameters.
    pub ppo: Vec<f32>,
    /// Flat gradient of the global curiosity parameters (may be empty).
    pub curiosity: Vec<f32>,
    /// Diagnostics from the minibatch that produced `ppo` (entropy, value
    /// loss, KL proxy), aggregated by the chief for training telemetry.
    pub stats: crate::ppo::PpoStats,
}

impl GradPair {
    /// True when any gradient component is NaN or ±Inf — such contributions
    /// are quarantined by the chief rather than summed.
    pub fn has_non_finite(&self) -> bool {
        self.ppo.iter().chain(self.curiosity.iter()).any(|x| !x.is_finite())
    }
}

/// Per-episode summary an employee reports after its rollout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Data collection ratio κ at episode end.
    pub kappa: f32,
    /// Remaining data ratio ξ at episode end.
    pub xi: f32,
    /// Energy efficiency ρ at episode end.
    pub rho: f32,
    /// Summed extrinsic reward over the episode.
    pub ext_reward: f32,
    /// Summed intrinsic (curiosity) reward over the episode.
    pub int_reward: f32,
    /// Total obstacle collisions across workers.
    pub collisions: u32,
}

impl EpisodeStats {
    /// Element-wise mean of a set of stats (chief-side aggregation).
    ///
    /// The integer `collisions` field rounds half-up rather than truncating,
    /// so a mean of 4.33 reports 4 and a mean of 3.5 reports 4 — truncation
    /// systematically under-reported collision counts.
    pub fn mean(stats: &[EpisodeStats]) -> EpisodeStats {
        if stats.is_empty() {
            return EpisodeStats::default();
        }
        let n = stats.len() as f32;
        EpisodeStats {
            kappa: stats.iter().map(|s| s.kappa).sum::<f32>() / n,
            xi: stats.iter().map(|s| s.xi).sum::<f32>() / n,
            rho: stats.iter().map(|s| s.rho).sum::<f32>() / n,
            ext_reward: stats.iter().map(|s| s.ext_reward).sum::<f32>() / n,
            int_reward: stats.iter().map(|s| s.int_reward).sum::<f32>() / n,
            collisions: (stats.iter().map(|s| s.collisions).sum::<u32>() as f32 / n).round() as u32,
        }
    }
}

/// An employee thread's workload: one local model + environment.
pub trait Employee: Send + 'static {
    /// Copies fresh global parameters into the local models (Algorithm 1,
    /// line 22). `curiosity` is empty when no curiosity model exists.
    fn load_params(&mut self, ppo: &[f32], curiosity: &[f32]);

    /// Interacts with the local environment for one episode, storing
    /// experience (Algorithm 1, lines 4–15).
    fn rollout(&mut self) -> EpisodeStats;

    /// One update round: sample a minibatch, compute gradients w.r.t. the
    /// local models, and return them flat (Algorithm 1, lines 18–20).
    fn compute_grads(&mut self) -> GradPair;

    /// The employee's RNG stream state, for durable checkpoints that resume
    /// bit-exactly. The default (all zeros) opts out of RNG persistence.
    fn snapshot_rng(&self) -> [u64; 4] {
        [0; 4]
    }

    /// Restores an RNG stream captured by [`Self::snapshot_rng`]. The
    /// default is a no-op for employees without a persisted stream.
    fn restore_rng(&mut self, _state: [u64; 4]) {}
}

/// A thread-safe flat-gradient accumulator — the "PPO gradient buffer" /
/// "curiosity gradient buffer" of Fig. 1.
#[derive(Debug, Default)]
pub struct GradientBuffer {
    inner: Mutex<GradientBufferInner>,
}

#[derive(Debug, Default)]
struct GradientBufferInner {
    sum: Vec<f32>,
    contributions: usize,
}

impl GradientBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one employee's flat gradient.
    ///
    /// The first contribution after a [`Self::take`] fixes the expected
    /// length; later contributions of a different length are rejected with
    /// [`ChiefError::GradientLengthMismatch`] and leave the buffer unchanged.
    pub fn accumulate(&self, grads: &[f32]) -> Result<(), ChiefError> {
        let mut inner = self.inner.lock();
        if inner.sum.is_empty() {
            inner.sum = grads.to_vec();
        } else {
            if inner.sum.len() != grads.len() {
                return Err(ChiefError::GradientLengthMismatch {
                    expected: inner.sum.len(),
                    got: grads.len(),
                });
            }
            for (s, &g) in inner.sum.iter_mut().zip(grads) {
                *s += g;
            }
        }
        inner.contributions += 1;
        Ok(())
    }

    /// Number of gradients accumulated since the last [`Self::take`].
    pub fn contributions(&self) -> usize {
        self.inner.lock().contributions
    }

    /// Drains the buffer, returning the summed gradient (empty if nothing
    /// was accumulated).
    pub fn take(&self) -> Vec<f32> {
        let mut inner = self.inner.lock();
        inner.contributions = 0;
        std::mem::take(&mut inner.sum)
    }
}

// ---------------------------------------------------------------- protocol

enum Cmd {
    LoadParams(Arc<(Vec<f32>, Vec<f32>)>),
    Rollout,
    ComputeGrads { round: u64 },
    SnapshotRng,
    RestoreRng([u64; 4]),
    Stop,
}

enum Reply {
    RolloutDone(EpisodeStats),
    /// The employee's gradients for this round, shipped to the chief for
    /// accumulation (the chief owns the Fig.-1 gradient buffers).
    GradsDone(GradPair),
    /// The employee's round work panicked; carries the phase and the panic
    /// payload rendered as a string.
    Panicked {
        during: &'static str,
        message: String,
    },
    RngState([u64; 4]),
}

/// Extracts a human-readable message from a panic payload: `String` and
/// `&str` payloads verbatim, anything else `"<non-string panic>"`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_owned()
    }
}

/// The employee thread body: a command loop whose round work is wrapped in
/// `catch_unwind`, with deterministic fault injection from the shared
/// [`FaultPlan`]. On a caught panic the thread reports [`Reply::Panicked`]
/// and exits; the chief respawns a replacement.
fn run_employee(
    mut emp: Box<dyn Employee>,
    index: usize,
    generation: u64,
    cmd_rx: Receiver<Cmd>,
    reply_tx: Sender<(usize, u64, Reply)>,
    faults: Arc<FaultPlan>,
) {
    let mut stalled_rounds = 0u64;
    while let Ok(cmd) = cmd_rx.recv() {
        match cmd {
            Cmd::LoadParams(p) => emp.load_params(&p.0, &p.1),
            Cmd::Rollout => match catch_unwind(AssertUnwindSafe(|| emp.rollout())) {
                Ok(stats) => {
                    let _ = reply_tx.send((index, generation, Reply::RolloutDone(stats)));
                }
                Err(payload) => {
                    let message = panic_message(payload.as_ref());
                    let _ = reply_tx.send((
                        index,
                        generation,
                        Reply::Panicked { during: "rollout", message },
                    ));
                    return;
                }
            },
            Cmd::ComputeGrads { round } => {
                if stalled_rounds > 0 {
                    // Mid-stall: swallow the command without replying; the
                    // chief's round timeout will declare this employee dead.
                    stalled_rounds -= 1;
                    continue;
                }
                let fault = faults.at(index, round);
                if let Some(FaultKind::Stall { rounds }) = fault {
                    stalled_rounds = rounds.saturating_sub(1);
                    continue;
                }
                let work = catch_unwind(AssertUnwindSafe(|| {
                    if fault == Some(FaultKind::Panic) {
                        panic!("injected fault: employee {index} panicked at round {round}");
                    }
                    let mut grads = emp.compute_grads();
                    if fault == Some(FaultKind::NanGrads) {
                        for g in &mut grads.ppo {
                            *g = f32::NAN;
                        }
                    }
                    grads
                }));
                match work {
                    Ok(grads) => {
                        let _ = reply_tx.send((index, generation, Reply::GradsDone(grads)));
                    }
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        let _ = reply_tx.send((
                            index,
                            generation,
                            Reply::Panicked { during: "update", message },
                        ));
                        return;
                    }
                }
            }
            Cmd::SnapshotRng => {
                let _ = reply_tx.send((index, generation, Reply::RngState(emp.snapshot_rng())));
            }
            Cmd::RestoreRng(state) => emp.restore_rng(state),
            Cmd::Stop => return,
        }
    }
}

// --------------------------------------------------------------- executor

/// One employee's chief-side bookkeeping.
struct EmployeeSlot {
    /// `None` while the employee is dead (dropping the sender lets a
    /// stalled thread observe the closed channel and exit).
    cmd_tx: Option<Sender<Cmd>>,
    join: Option<JoinHandle<()>>,
    /// Bumped on every respawn; replies from older generations are stale
    /// and ignored.
    generation: u64,
    /// Times this slot has been respawned (drives the backoff exponent).
    restarts: usize,
    /// Completed a rollout since its last (re)spawn — cold employees have
    /// no experience buffer and sit out gather rounds until the next
    /// rollout phase.
    warm: bool,
    /// Why the employee is currently dead, when it is.
    dead: Option<String>,
}

impl EmployeeSlot {
    fn is_alive(&self) -> bool {
        self.dead.is_none()
    }
}

/// What one fault-tolerant gather round produced.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Summed PPO gradients over healthy contributors (empty when nobody
    /// contributed — the caller should skip the optimizer step).
    pub ppo: Vec<f32>,
    /// Summed curiosity gradients (empty when unused or nobody contributed).
    pub curiosity: Vec<f32>,
    /// Mean minibatch diagnostics over healthy contributors.
    pub stats: crate::ppo::PpoStats,
    /// Healthy gradient contributions in the sums — the divisor for
    /// employee averaging (quarantined and dead employees excluded).
    pub contributors: usize,
    /// Employees whose gradients contained NaN/Inf and were dropped.
    pub quarantined: Vec<usize>,
    /// Employees that died this round (panic, timeout, closed channel).
    pub failed: Vec<usize>,
    /// Employees respawned at the end of this round.
    pub respawned: Vec<usize>,
}

/// What one fault-tolerant rollout phase produced.
#[derive(Clone, Debug, Default)]
pub struct RolloutReport {
    /// Stats of employees that completed their rollout, ordered by
    /// employee index.
    pub stats: Vec<EpisodeStats>,
    /// Employees that died during the rollout phase.
    pub failed: Vec<usize>,
    /// Employees respawned at the end of the phase (cold until the next
    /// rollout).
    pub respawned: Vec<usize>,
}

type EmployeeFactory = Box<dyn FnMut(usize) -> Box<dyn Employee> + Send>;

/// Gradient-norm bucket bounds: spans healthy pre-clip norms (~0.01..10)
/// plus an explosion tail; non-finite norms land in the overflow bucket.
const GRAD_NORM_BOUNDS: [f64; 10] = [1e-3, 1e-2, 0.05, 0.2, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0];

/// Telemetry handles cached at attach time so per-round recording never
/// touches the registry lock (see `vc_telemetry`'s overhead policy).
struct ChiefTelemetry {
    handle: Telemetry,
    rounds: Arc<Counter>,
    quarantined: Arc<Counter>,
    restarts: Arc<Counter>,
    failures: Arc<Counter>,
    gather_seconds: Arc<Histogram>,
    rollout_seconds: Arc<Histogram>,
    broadcast_seconds: Arc<Histogram>,
    /// One histogram per employee slot: `chief_grad_norm_employee_<i>`.
    grad_norm: Vec<Arc<Histogram>>,
}

/// L2 norm of a gradient vector, accumulated in f64.
fn grad_l2_norm(g: &[f32]) -> f64 {
    g.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>().sqrt()
}

/// Drives M employee threads through synchronized rollout / update rounds,
/// containing panics, declaring stragglers dead, quarantining non-finite
/// gradients, and respawning dead employees within a restart budget.
///
/// The chief does not know what model the employees run; it only moves flat
/// parameter and gradient vectors. The caller owns the global stores and
/// optimizers and provides the summed-gradient application as a closure.
pub struct ChiefExecutor {
    slots: Vec<EmployeeSlot>,
    reply_rx: Receiver<(usize, u64, Reply)>,
    /// Kept alive (and cloned into respawned threads) so the reply channel
    /// never disconnects while the chief lives.
    reply_tx: Sender<(usize, u64, Reply)>,
    ppo_buffer: Arc<GradientBuffer>,
    curiosity_buffer: Arc<GradientBuffer>,
    cfg: ChiefConfig,
    faults: Arc<FaultPlan>,
    factory: Option<EmployeeFactory>,
    /// Last broadcast parameter snapshot; respawned employees are seeded
    /// from it.
    snapshot: Option<Arc<(Vec<f32>, Vec<f32>)>>,
    /// Global update-round counter (drives fault injection and resume).
    round: u64,
    /// Respawns spent from the restart budget.
    restarts_used: usize,
    /// Seeded jitter stream decorrelating respawn backoffs (see
    /// [`jittered_backoff`]).
    backoff_rng: StdRng,
    /// Cached telemetry handles; `None` until [`ChiefExecutor::set_telemetry`].
    telemetry: Option<ChiefTelemetry>,
}

impl ChiefExecutor {
    /// Spawns one thread per pre-built employee, with no respawn capability
    /// (first death is fatal) and no timeout — the paper's idealized
    /// executor. Use [`Self::spawn_with`] for fault tolerance.
    ///
    /// # Errors
    ///
    /// [`ChiefError::NoEmployees`] for an empty set, [`ChiefError::Spawn`]
    /// when the OS refuses a thread.
    pub fn spawn<E: Employee>(employees: Vec<E>) -> Result<Self, ChiefError> {
        if employees.is_empty() {
            return Err(ChiefError::NoEmployees);
        }
        Self::build(
            employees.into_iter().map(|e| Box::new(e) as Box<dyn Employee>).collect(),
            None,
            ChiefConfig::default(),
        )
    }

    /// Spawns `count` employees from `factory` under the fault-tolerance
    /// policy in `cfg`. The factory is retained and re-invoked to build
    /// replacements for dead employees.
    ///
    /// # Errors
    ///
    /// [`ChiefError::NoEmployees`] when `count == 0`, [`ChiefError::Spawn`]
    /// when the OS refuses a thread.
    pub fn spawn_with<F>(count: usize, mut factory: F, cfg: ChiefConfig) -> Result<Self, ChiefError>
    where
        F: FnMut(usize) -> Box<dyn Employee> + Send + 'static,
    {
        if count == 0 {
            return Err(ChiefError::NoEmployees);
        }
        let employees: Vec<Box<dyn Employee>> = (0..count).map(&mut factory).collect();
        Self::build(employees, Some(Box::new(factory)), cfg)
    }

    fn build(
        employees: Vec<Box<dyn Employee>>,
        factory: Option<EmployeeFactory>,
        cfg: ChiefConfig,
    ) -> Result<Self, ChiefError> {
        let count = employees.len();
        let faults = Arc::new(cfg.faults.clone());
        let (reply_tx, reply_rx) = bounded::<(usize, u64, Reply)>((count * 4).max(16));
        let mut slots = Vec::with_capacity(count);
        for (i, emp) in employees.into_iter().enumerate() {
            let (cmd_tx, join) = spawn_thread(emp, i, 0, reply_tx.clone(), Arc::clone(&faults))?;
            slots.push(EmployeeSlot {
                cmd_tx: Some(cmd_tx),
                join: Some(join),
                generation: 0,
                restarts: 0,
                warm: false,
                dead: None,
            });
        }
        let backoff_rng = StdRng::seed_from_u64(cfg.backoff_seed);
        Ok(Self {
            slots,
            reply_rx,
            reply_tx,
            ppo_buffer: Arc::new(GradientBuffer::new()),
            curiosity_buffer: Arc::new(GradientBuffer::new()),
            cfg,
            faults,
            factory,
            snapshot: None,
            round: 0,
            restarts_used: 0,
            backoff_rng,
            telemetry: None,
        })
    }

    /// Attaches a telemetry registry, pre-resolving every metric handle the
    /// chief records into. With a disabled handle the only per-round cost
    /// is one relaxed atomic load per instrumentation site.
    pub fn set_telemetry(&mut self, handle: Telemetry) {
        let span_bounds = &vc_telemetry::SPAN_SECONDS_BOUNDS;
        let grad_norm = (0..self.slots.len())
            .map(|i| handle.histogram(&format!("chief_grad_norm_employee_{i}"), &GRAD_NORM_BOUNDS))
            .collect();
        self.telemetry = Some(ChiefTelemetry {
            rounds: handle.counter("chief_rounds_total"),
            quarantined: handle.counter("chief_quarantined_total"),
            restarts: handle.counter("chief_restarts_total"),
            failures: handle.counter("chief_employee_failures_total"),
            gather_seconds: handle.histogram("chief_gather_seconds", span_bounds),
            rollout_seconds: handle.histogram("chief_rollout_seconds", span_bounds),
            broadcast_seconds: handle.histogram("chief_broadcast_seconds", span_bounds),
            grad_norm,
            handle,
        });
    }

    /// The attached telemetry, only when it is currently enabled.
    fn tel(&self) -> Option<&ChiefTelemetry> {
        self.telemetry.as_ref().filter(|t| t.handle.is_on())
    }

    /// Number of employees.
    pub fn num_employees(&self) -> usize {
        self.slots.len()
    }

    /// Global update-round counter (the `round` axis of [`FaultPlan`]).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Overrides the update-round counter (used when resuming a run from a
    /// durable checkpoint so scripted faults and telemetry stay aligned).
    pub fn set_round(&mut self, round: u64) {
        self.round = round;
    }

    /// Respawns spent from [`ChiefConfig::restart_budget`] so far.
    pub fn restarts_used(&self) -> usize {
        self.restarts_used
    }

    /// Marks an employee dead: its command channel is dropped (a stalled
    /// thread then observes the closed channel and exits) and its join
    /// handle detached (never block the chief on a hung thread).
    fn mark_dead(&mut self, employee: usize, reason: String) {
        let slot = &mut self.slots[employee];
        if slot.dead.is_some() {
            return;
        }
        slot.cmd_tx = None;
        drop(slot.join.take()); // detach
        slot.warm = false;
        slot.dead = Some(reason);
    }

    /// Respawns every currently dead employee from the factory, charging
    /// the restart budget and sleeping the exponential backoff. Returns the
    /// respawned indices.
    ///
    /// # Errors
    ///
    /// [`ChiefError::EmployeeDied`] when no factory exists (executor built
    /// via [`Self::spawn`]), [`ChiefError::RestartBudgetExhausted`] when
    /// the budget is spent, [`ChiefError::Spawn`] when the OS refuses a
    /// thread.
    fn respawn_dead(&mut self) -> Result<Vec<usize>, ChiefError> {
        let dead: Vec<usize> =
            (0..self.slots.len()).filter(|&i| !self.slots[i].is_alive()).collect();
        let mut respawned = Vec::new();
        for i in dead {
            let reason = self.slots[i].dead.clone().unwrap_or_else(|| "unknown".to_owned());
            if self.factory.is_none() {
                return Err(ChiefError::EmployeeDied { employee: i, reason });
            }
            if self.restarts_used >= self.cfg.restart_budget {
                return Err(ChiefError::RestartBudgetExhausted {
                    employee: i,
                    budget: self.cfg.restart_budget,
                    reason,
                });
            }
            let backoff = jittered_backoff(
                self.cfg.backoff_base,
                self.cfg.backoff_cap,
                self.slots[i].restarts,
                &mut self.backoff_rng,
            );
            if !backoff.is_zero() {
                std::thread::sleep(backoff);
            }
            let generation = self.slots[i].generation + 1;
            let emp = match self.factory.as_mut() {
                Some(f) => f(i),
                None => return Err(ChiefError::EmployeeDied { employee: i, reason }),
            };
            let (cmd_tx, join) =
                spawn_thread(emp, i, generation, self.reply_tx.clone(), Arc::clone(&self.faults))?;
            // Seed the replacement from the current global snapshot so it
            // rejoins at the chief's parameters, not at init.
            if let Some(snap) = &self.snapshot {
                let _ = cmd_tx.send(Cmd::LoadParams(Arc::clone(snap)));
            }
            let slot = &mut self.slots[i];
            slot.cmd_tx = Some(cmd_tx);
            slot.join = Some(join);
            slot.generation = generation;
            slot.restarts += 1;
            slot.warm = false;
            slot.dead = None;
            self.restarts_used += 1;
            respawned.push(i);
            if let Some(t) = self.tel() {
                t.restarts.inc();
                t.handle.event(
                    "chief_restart",
                    &[
                        ("employee", Field::U64(i as u64)),
                        ("round", Field::U64(self.round)),
                        ("reason", Field::Str(&reason)),
                    ],
                );
            }
        }
        Ok(respawned)
    }

    /// Broadcasts fresh global parameters to every employee (fire-and-forget;
    /// the next synchronized phase orders it before use). The snapshot is
    /// cached so respawned employees can be seeded from it. Employees whose
    /// command channel is closed are declared dead and respawned.
    ///
    /// # Errors
    ///
    /// The respawn errors of [`ChiefError`] when a dead employee cannot be
    /// replaced.
    pub fn broadcast_params(
        &mut self,
        ppo: Vec<f32>,
        curiosity: Vec<f32>,
    ) -> Result<(), ChiefError> {
        let timer = self.tel().map(|_| Instant::now());
        let shared = Arc::new((ppo, curiosity));
        self.snapshot = Some(Arc::clone(&shared));
        for i in 0..self.slots.len() {
            let sent = match &self.slots[i].cmd_tx {
                Some(tx) => tx.send(Cmd::LoadParams(Arc::clone(&shared))).is_ok(),
                None => false,
            };
            if !sent && self.slots[i].is_alive() {
                self.mark_dead(i, "command channel closed".to_owned());
            }
        }
        self.respawn_dead()?;
        if let (Some(t), Some(start)) = (self.tel(), timer) {
            t.broadcast_seconds.observe(start.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Sends one command to every matching live slot; returns the indices
    /// awaiting a reply. Slots whose channel is closed are declared dead.
    fn send_phase(&mut self, make_cmd: impl Fn() -> Cmd, warm_only: bool) -> Vec<bool> {
        let mut pending = vec![false; self.slots.len()];
        for (i, pend) in pending.iter_mut().enumerate() {
            if !self.slots[i].is_alive() || (warm_only && !self.slots[i].warm) {
                continue;
            }
            let sent = match &self.slots[i].cmd_tx {
                Some(tx) => tx.send(make_cmd()).is_ok(),
                None => false,
            };
            if sent {
                *pend = true;
            } else {
                self.mark_dead(i, "command channel closed".to_owned());
            }
        }
        pending
    }

    /// Receives the next reply within the phase deadline. `Ok(None)` means
    /// the deadline expired.
    fn recv_deadline(
        &self,
        deadline: Option<Instant>,
    ) -> Result<Option<(usize, u64, Reply)>, ChiefError> {
        match deadline {
            None => match self.reply_rx.recv() {
                Ok(m) => Ok(Some(m)),
                Err(_) => Err(ChiefError::ChannelClosed),
            },
            Some(d) => {
                let now = Instant::now();
                if now >= d {
                    return Ok(None);
                }
                Ok(self.reply_rx.recv_timeout(d - now))
            }
        }
    }

    /// Runs one episode rollout on every live employee in parallel.
    /// Panicked or timed-out employees are declared dead and respawned
    /// (cold: they sit out update rounds until the next rollout phase).
    ///
    /// # Errors
    ///
    /// [`ChiefError::UnexpectedReply`] on a protocol violation, or the
    /// respawn errors when a dead employee cannot be replaced.
    pub fn rollout_all(&mut self) -> Result<RolloutReport, ChiefError> {
        let timer = self.tel().map(|_| Instant::now());
        let mut pending = self.send_phase(|| Cmd::Rollout, false);
        let deadline = self.cfg.round_timeout.map(|t| Instant::now() + t);
        let mut collected: Vec<(usize, EpisodeStats)> = Vec::new();
        let mut failed = Vec::new();
        while pending.iter().any(|&p| p) {
            let Some((i, gen, reply)) = self.recv_deadline(deadline)? else {
                break; // deadline expired; stragglers are handled below
            };
            if self.slots.get(i).is_none_or(|s| s.generation != gen) || !pending[i] {
                continue; // stale reply from an abandoned generation
            }
            match reply {
                Reply::RolloutDone(stats) => {
                    pending[i] = false;
                    self.slots[i].warm = true;
                    collected.push((i, stats));
                }
                Reply::Panicked { during, message } => {
                    pending[i] = false;
                    failed.push(i);
                    self.mark_dead(i, format!("panicked during {during}: {message}"));
                }
                Reply::GradsDone(_) | Reply::RngState(_) => {
                    return Err(ChiefError::UnexpectedReply { employee: i, during: "rollout" });
                }
            }
        }
        let stragglers: Vec<usize> =
            pending.iter().enumerate().filter(|&(_, &p)| p).map(|(i, _)| i).collect();
        for i in stragglers {
            failed.push(i);
            let t = self.cfg.round_timeout.unwrap_or_default();
            self.mark_dead(i, format!("timed out after {t:?} in rollout"));
        }
        let respawned = self.respawn_dead()?;
        collected.sort_by_key(|&(i, _)| i);
        failed.sort_unstable();
        if let (Some(t), Some(start)) = (self.tel(), timer) {
            t.failures.add(failed.len() as u64);
            t.rollout_seconds.observe(start.elapsed().as_secs_f64());
        }
        Ok(RolloutReport {
            stats: collected.into_iter().map(|(_, s)| s).collect(),
            failed,
            respawned,
        })
    }

    /// Runs one gradient round on every warm employee and returns the
    /// summed gradients plus diagnostics once every healthy contribution is
    /// in (Algorithm 2, lines 3–5). Non-finite contributions are
    /// quarantined; panicked and timed-out employees are declared dead and
    /// respawned after the round.
    ///
    /// # Errors
    ///
    /// [`ChiefError::GradientLengthMismatch`] /
    /// [`ChiefError::ContributionMismatch`] on malformed gradients (layout
    /// bugs, not faults), [`ChiefError::UnexpectedReply`] on protocol
    /// violations, and the respawn errors when a dead employee cannot be
    /// replaced. Either way the buffers are drained, so a failed round
    /// never poisons the next one.
    pub fn gather_grads(&mut self) -> Result<RoundReport, ChiefError> {
        let timer = self.tel().map(|_| Instant::now());
        let round = self.round;
        self.round += 1;
        let mut pending = self.send_phase(|| Cmd::ComputeGrads { round }, true);
        let deadline = self.cfg.round_timeout.map(|t| Instant::now() + t);
        let mut report = RoundReport::default();
        let mut stats_sum = crate::ppo::PpoStats::default();
        let mut first_err: Option<ChiefError> = None;
        while pending.iter().any(|&p| p) {
            let msg = match self.recv_deadline(deadline) {
                Ok(m) => m,
                Err(e) => {
                    self.drain_buffers();
                    return Err(e);
                }
            };
            let Some((i, gen, reply)) = msg else {
                break; // deadline expired; stragglers are handled below
            };
            if self.slots.get(i).is_none_or(|s| s.generation != gen) || !pending[i] {
                continue; // stale reply from an abandoned generation
            }
            match reply {
                Reply::GradsDone(grads) => {
                    pending[i] = false;
                    if let Some(t) = self.tel() {
                        if let Some(h) = t.grad_norm.get(i) {
                            h.observe(grad_l2_norm(&grads.ppo));
                        }
                    }
                    if grads.has_non_finite() {
                        if let Some(t) = self.tel() {
                            t.quarantined.inc();
                        }
                        report.quarantined.push(i);
                        continue;
                    }
                    let accumulated = self.ppo_buffer.accumulate(&grads.ppo).and_then(|()| {
                        if grads.curiosity.is_empty() {
                            Ok(())
                        } else {
                            self.curiosity_buffer.accumulate(&grads.curiosity)
                        }
                    });
                    match accumulated {
                        Ok(()) => {
                            report.contributors += 1;
                            stats_sum.policy_objective += grads.stats.policy_objective;
                            stats_sum.value_loss += grads.stats.value_loss;
                            stats_sum.entropy += grads.stats.entropy;
                            stats_sum.approx_kl += grads.stats.approx_kl;
                        }
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                Reply::Panicked { during, message } => {
                    pending[i] = false;
                    report.failed.push(i);
                    self.mark_dead(i, format!("panicked during {during}: {message}"));
                }
                Reply::RolloutDone(_) | Reply::RngState(_) => {
                    first_err.get_or_insert(ChiefError::UnexpectedReply {
                        employee: i,
                        during: "update",
                    });
                    pending[i] = false;
                }
            }
        }
        let stragglers: Vec<usize> =
            pending.iter().enumerate().filter(|&(_, &p)| p).map(|(i, _)| i).collect();
        for i in stragglers {
            report.failed.push(i);
            let t = self.cfg.round_timeout.unwrap_or_default();
            self.mark_dead(i, format!("timed out after {t:?} in update round {round}"));
        }
        if let Some(e) = first_err {
            self.drain_buffers();
            return Err(e);
        }
        // Runtime invariant: exactly one PPO contribution per healthy
        // employee this round.
        let got = self.ppo_buffer.contributions();
        if got != report.contributors {
            let expected = report.contributors;
            self.drain_buffers();
            return Err(ChiefError::ContributionMismatch { expected, got, buffer: "ppo" });
        }
        report.respawned = self.respawn_dead()?;
        report.failed.sort_unstable();
        if report.contributors > 0 {
            let n = report.contributors as f32;
            report.stats = crate::ppo::PpoStats {
                policy_objective: stats_sum.policy_objective / n,
                value_loss: stats_sum.value_loss / n,
                entropy: stats_sum.entropy / n,
                approx_kl: stats_sum.approx_kl / n,
            };
        }
        report.ppo = self.ppo_buffer.take();
        report.curiosity = self.curiosity_buffer.take();
        if let (Some(t), Some(start)) = (self.tel(), timer) {
            t.rounds.inc();
            t.failures.add(report.failed.len() as u64);
            t.gather_seconds.observe(start.elapsed().as_secs_f64());
        }
        Ok(report)
    }

    /// Collects every employee's RNG stream state (for durable
    /// checkpoints), ordered by employee index. Dead employees are
    /// respawned first so the snapshot always covers all M streams.
    ///
    /// # Errors
    ///
    /// [`ChiefError::EmployeeDied`] when an employee fails to answer within
    /// the round timeout, plus the respawn errors.
    pub fn snapshot_rngs(&mut self) -> Result<Vec<[u64; 4]>, ChiefError> {
        self.respawn_dead()?;
        let mut pending = self.send_phase(|| Cmd::SnapshotRng, false);
        let deadline = self.cfg.round_timeout.map(|t| Instant::now() + t);
        let mut states = vec![None; self.slots.len()];
        while pending.iter().any(|&p| p) {
            let Some((i, gen, reply)) = self.recv_deadline(deadline)? else {
                break;
            };
            if self.slots.get(i).is_none_or(|s| s.generation != gen) || !pending[i] {
                continue;
            }
            match reply {
                Reply::RngState(s) => {
                    pending[i] = false;
                    states[i] = Some(s);
                }
                Reply::Panicked { during, message } => {
                    pending[i] = false;
                    self.mark_dead(i, format!("panicked during {during}: {message}"));
                }
                _ => return Err(ChiefError::UnexpectedReply { employee: i, during: "rng" }),
            }
        }
        states
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                s.ok_or_else(|| ChiefError::EmployeeDied {
                    employee: i,
                    reason: "no RNG snapshot before the deadline".to_owned(),
                })
            })
            .collect()
    }

    /// Restores per-employee RNG streams captured by
    /// [`Self::snapshot_rngs`] (fire-and-forget; channel FIFO orders it
    /// before the next phase).
    ///
    /// # Errors
    ///
    /// [`ChiefError::StateMismatch`] when the state count differs from the
    /// employee count, plus the respawn errors for closed channels.
    pub fn restore_rngs(&mut self, states: &[[u64; 4]]) -> Result<(), ChiefError> {
        if states.len() != self.slots.len() {
            return Err(ChiefError::StateMismatch {
                what: "rng",
                expected: self.slots.len(),
                got: states.len(),
            });
        }
        for (i, &state) in states.iter().enumerate() {
            let sent = match &self.slots[i].cmd_tx {
                Some(tx) => tx.send(Cmd::RestoreRng(state)).is_ok(),
                None => false,
            };
            if !sent && self.slots[i].is_alive() {
                self.mark_dead(i, "command channel closed".to_owned());
            }
        }
        self.respawn_dead()?;
        Ok(())
    }

    /// Clears both gradient buffers after a failed round so stale partial
    /// sums can't leak into the next round.
    fn drain_buffers(&self) {
        let _ = self.ppo_buffer.take();
        let _ = self.curiosity_buffer.take();
    }
}

/// Spawns one employee thread; returns its command channel and join handle.
fn spawn_thread(
    emp: Box<dyn Employee>,
    index: usize,
    generation: u64,
    reply_tx: Sender<(usize, u64, Reply)>,
    faults: Arc<FaultPlan>,
) -> Result<(Sender<Cmd>, JoinHandle<()>), ChiefError> {
    let (cmd_tx, cmd_rx) = bounded::<Cmd>(4);
    let join = std::thread::Builder::new()
        .name(format!("employee-{index}.{generation}"))
        .spawn(move || run_employee(emp, index, generation, cmd_rx, reply_tx, faults))
        .map_err(|e| ChiefError::Spawn(e.to_string()))?;
    Ok((cmd_tx, join))
}

impl Drop for ChiefExecutor {
    fn drop(&mut self) {
        for s in &self.slots {
            if let Some(tx) = &s.cmd_tx {
                let _ = tx.send(Cmd::Stop);
            }
        }
        for s in &mut self.slots {
            if let Some(j) = s.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// A fake employee whose "gradient" is its current parameter vector plus
    /// a constant, which makes the chief-side summation checkable exactly.
    struct FakeEmployee {
        id: f32,
        params: Vec<f32>,
        rollouts: usize,
    }

    impl FakeEmployee {
        fn new(id: usize) -> Self {
            FakeEmployee { id: id as f32, params: vec![], rollouts: 0 }
        }
    }

    impl Employee for FakeEmployee {
        fn load_params(&mut self, ppo: &[f32], _curiosity: &[f32]) {
            self.params = ppo.to_vec();
        }
        fn rollout(&mut self) -> EpisodeStats {
            self.rollouts += 1;
            EpisodeStats { kappa: self.id, ..Default::default() }
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair {
                ppo: self.params.iter().map(|p| p + self.id).collect(),
                curiosity: vec![self.id],
                stats: crate::ppo::PpoStats { entropy: self.id, ..Default::default() },
            }
        }
        fn snapshot_rng(&self) -> [u64; 4] {
            [self.id as u64; 4]
        }
    }

    fn fast_config() -> ChiefConfig {
        ChiefConfig {
            round_timeout: Some(Duration::from_millis(400)),
            restart_budget: 8,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            backoff_seed: 7,
            faults: FaultPlan::none(),
        }
    }

    #[test]
    fn jittered_backoff_pins_seeded_schedule() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(5);
        let mut rng = StdRng::seed_from_u64(0xBAC0_FF5E);
        let schedule: Vec<Duration> =
            (0..6).map(|n| jittered_backoff(base, cap, n, &mut rng)).collect();
        // Pinned against the seeded xoshiro stream: any change to the draw
        // order or the half-open range arithmetic shows up here.
        let expected_ns: Vec<u64> = schedule.iter().map(|d| d.as_nanos() as u64).collect();
        let mut check = StdRng::seed_from_u64(0xBAC0_FF5E);
        for (n, &got) in expected_ns.iter().enumerate() {
            let target = base.saturating_mul(2u32.saturating_pow(n as u32)).min(cap);
            let target_ns = target.as_nanos() as u64;
            let half = target_ns / 2;
            let want = half + check.gen_range(0..half + 1);
            assert_eq!(got, want, "restart {n}");
            // Decorrelation window: always within [target/2, target].
            assert!(got >= half && got <= target_ns, "restart {n}: {got} vs target {target_ns}");
        }
        // Replaying the same seed reproduces the schedule exactly.
        let mut replay = StdRng::seed_from_u64(0xBAC0_FF5E);
        let again: Vec<Duration> =
            (0..6).map(|n| jittered_backoff(base, cap, n, &mut replay)).collect();
        assert_eq!(schedule, again);
    }

    #[test]
    fn jittered_backoff_respects_cap_and_zero_base() {
        let mut rng = StdRng::seed_from_u64(1);
        // Deep restart counts saturate at the cap (never overflow).
        let d = jittered_backoff(Duration::from_secs(1), Duration::from_secs(4), 60, &mut rng);
        assert!(d >= Duration::from_secs(2) && d <= Duration::from_secs(4));
        // A zero base keeps the schedule at zero but still consumes a draw
        // only when non-zero, returning immediately otherwise.
        let z = jittered_backoff(Duration::ZERO, Duration::from_secs(1), 3, &mut rng);
        assert_eq!(z, Duration::ZERO);
        // Two executors with different seeds must decorrelate: their restart-0
        // sleeps differ for at least one of a handful of seeds.
        let draws: Vec<u64> = (0..4)
            .map(|s| {
                let mut r = StdRng::seed_from_u64(s);
                jittered_backoff(Duration::from_millis(10), Duration::from_secs(1), 4, &mut r)
                    .as_nanos() as u64
            })
            .collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]), "seeds failed to decorrelate: {draws:?}");
    }

    #[test]
    fn gradient_buffer_sums_and_drains() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]).unwrap();
        buf.accumulate(&[0.5, -1.0]).unwrap();
        assert_eq!(buf.contributions(), 2);
        assert_eq!(buf.take(), vec![1.5, 1.0]);
        assert_eq!(buf.contributions(), 0);
        assert!(buf.take().is_empty());
    }

    #[test]
    fn gradient_buffer_rejects_mismatched_lengths() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]).unwrap();
        let err = buf.accumulate(&[1.0]).unwrap_err();
        assert_eq!(err, ChiefError::GradientLengthMismatch { expected: 2, got: 1 });
        // The failed contribution must not count or corrupt the sum.
        assert_eq!(buf.contributions(), 1);
        assert_eq!(buf.take(), vec![1.0, 2.0]);
    }

    #[test]
    fn spawn_rejects_empty_employee_set() {
        let err = match ChiefExecutor::spawn(Vec::<FakeEmployee>::new()) {
            Err(e) => e,
            Ok(_) => panic!("empty employee set must be rejected"),
        };
        assert_eq!(err, ChiefError::NoEmployees);
    }

    #[test]
    fn chief_errors_render_useful_messages() {
        let cases: Vec<(ChiefError, &str)> = vec![
            (
                ChiefError::EmployeeDied { employee: 3, reason: "panicked during update".into() },
                "employee 3 died (panicked during update)",
            ),
            (ChiefError::GradientLengthMismatch { expected: 4, got: 2 }, "length mismatch"),
            (
                ChiefError::ContributionMismatch { expected: 8, got: 7, buffer: "ppo" },
                "7 contributions, expected 8",
            ),
            (
                ChiefError::RestartBudgetExhausted {
                    employee: 1,
                    budget: 4,
                    reason: "timed out".into(),
                },
                "restart budget 4 exhausted",
            ),
            (
                ChiefError::StateMismatch { what: "rng", expected: 8, got: 2 },
                "rng state count mismatch",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            // The Error impl exists and has no source.
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_none());
        }
    }

    #[test]
    fn chief_synchronizes_rollouts_and_grads() {
        let employees: Vec<FakeEmployee> = (0..4).map(FakeEmployee::new).collect();
        let mut chief = ChiefExecutor::spawn(employees).unwrap();
        assert_eq!(chief.num_employees(), 4);

        chief.broadcast_params(vec![10.0, 20.0], vec![]).unwrap();
        let rollout = chief.rollout_all().unwrap();
        assert!(rollout.failed.is_empty());
        // Stats arrive indexed by employee regardless of completion order.
        for (i, s) in rollout.stats.iter().enumerate() {
            assert_eq!(s.kappa, i as f32);
        }

        let report = chief.gather_grads().unwrap();
        // Σ_i (params + i) = 4·[10,20] + [Σi, Σi] = [46, 86].
        assert_eq!(report.ppo, vec![46.0, 86.0]);
        assert_eq!(report.contributors, 4);
        assert!(report.quarantined.is_empty() && report.failed.is_empty());
        // Mean of ids 0..4 = 1.5.
        assert!((report.stats.entropy - 1.5).abs() < 1e-6);
        // Curiosity buffer collected the ids.
        assert_eq!(report.curiosity, vec![6.0]);
    }

    #[test]
    fn telemetry_records_rounds_quarantine_and_grad_norms() {
        let faults = FaultPlan::none().with(1, 1, FaultKind::NanGrads);
        let cfg = ChiefConfig { faults, ..fast_config() };
        let mut chief =
            ChiefExecutor::spawn_with(2, |i| Box::new(FakeEmployee::new(i)), cfg).unwrap();
        let t = Telemetry::new();
        chief.set_telemetry(t.clone());

        chief.broadcast_params(vec![1.0, 2.0], vec![]).unwrap();
        chief.rollout_all().unwrap();
        let clean = chief.gather_grads().unwrap(); // round 0: clean
        assert_eq!(clean.contributors, 2);
        let tainted = chief.gather_grads().unwrap(); // round 1: employee 1 NaN
        assert_eq!(tainted.quarantined, vec![1]);

        assert_eq!(t.counter("chief_rounds_total").get(), 2);
        assert_eq!(t.counter("chief_quarantined_total").get(), 1);
        assert_eq!(t.counter("chief_restarts_total").get(), 0);
        // Both employees contributed a (finite or NaN) gradient each round.
        let bounds = &GRAD_NORM_BOUNDS;
        assert_eq!(t.histogram("chief_grad_norm_employee_0", bounds).count(), 2);
        let emp1 = t.histogram("chief_grad_norm_employee_1", bounds).snapshot();
        assert_eq!(emp1.count, 2);
        // The NaN norm lands in the overflow bucket without poisoning the sum.
        assert_eq!(emp1.buckets[bounds.len()], 1);
        assert!(emp1.sum.is_finite());
        assert_eq!(t.histogram("chief_gather_seconds", bounds).count(), 2);
        assert_eq!(t.histogram("chief_rollout_seconds", bounds).count(), 1);
        assert_eq!(t.histogram("chief_broadcast_seconds", bounds).count(), 1);

        // Disabling the handle freezes everything.
        t.set_on(false);
        chief.gather_grads().unwrap();
        assert_eq!(t.counter("chief_rounds_total").get(), 2);
    }

    #[test]
    fn repeated_rounds_reuse_buffers() {
        let employees: Vec<FakeEmployee> = (1..=2).map(FakeEmployee::new).collect();
        let mut chief = ChiefExecutor::spawn(employees).unwrap();
        chief.broadcast_params(vec![0.0], vec![]).unwrap();
        chief.rollout_all().unwrap();
        for round in 1..=3 {
            let report = chief.gather_grads().unwrap();
            assert_eq!(report.ppo, vec![3.0], "round {round}");
        }
    }

    /// An employee whose gradient length depends on its id, so only one of a
    /// pair can win the buffer and the other must trip the length check.
    struct MisshapenEmployee {
        len: usize,
    }

    impl Employee for MisshapenEmployee {
        fn load_params(&mut self, _ppo: &[f32], _curiosity: &[f32]) {}
        fn rollout(&mut self) -> EpisodeStats {
            EpisodeStats::default()
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair { ppo: vec![1.0; self.len], curiosity: vec![], ..Default::default() }
        }
    }

    #[test]
    fn gather_surfaces_length_mismatch() {
        let mut chief =
            ChiefExecutor::spawn(vec![MisshapenEmployee { len: 3 }, MisshapenEmployee { len: 5 }])
                .unwrap();
        chief.rollout_all().unwrap();
        let err = chief.gather_grads().unwrap_err();
        assert!(
            matches!(err, ChiefError::GradientLengthMismatch { .. }),
            "unexpected error: {err}"
        );
        // The failed round drained the buffers; a well-shaped follow-up
        // round on a fresh chief must still work (buffers are per-chief).
        assert_eq!(chief.ppo_buffer.contributions(), 0);
    }

    #[test]
    fn stress_sixteen_employees_fifty_rounds_sum_exactly() {
        // The paper's largest Table-2 setting (M = 16) hammered for 50
        // sync rounds: every round must terminate (no deadlock between the
        // barrier and the gradient buffers) and produce the exact sum
        // Σ_i (params + i) with all 16 contributions accounted for.
        const M: usize = 16;
        const ROUNDS: usize = 50;
        let employees: Vec<FakeEmployee> = (0..M).map(FakeEmployee::new).collect();
        let mut chief = ChiefExecutor::spawn(employees).unwrap();
        let id_sum: f32 = (0..M).map(|i| i as f32).sum(); // 120
        for round in 0..ROUNDS {
            // Fresh params each round so a stale broadcast shows up as a
            // wrong sum, not just a repeat of the previous round.
            let p = round as f32;
            chief.broadcast_params(vec![p, -p], vec![]).unwrap();
            let rollout = chief.rollout_all().unwrap();
            assert_eq!(rollout.stats.len(), M, "round {round}");
            let report = chief.gather_grads().unwrap();
            assert_eq!(
                report.ppo,
                vec![M as f32 * p + id_sum, -(M as f32) * p + id_sum],
                "round {round}"
            );
            // Curiosity gradients collect every id exactly once.
            assert_eq!(report.curiosity, vec![id_sum], "round {round}");
            assert_eq!(report.contributors, M, "round {round}");
            // Buffers fully drained between rounds.
            assert_eq!(chief.ppo_buffer.contributions(), 0);
            assert_eq!(chief.curiosity_buffer.contributions(), 0);
        }
    }

    /// An employee that panics during its `n`-th rollout.
    struct PanickyEmployee {
        rollouts_before_panic: usize,
        done: usize,
    }

    impl Employee for PanickyEmployee {
        fn load_params(&mut self, _ppo: &[f32], _curiosity: &[f32]) {}
        fn rollout(&mut self) -> EpisodeStats {
            if self.done >= self.rollouts_before_panic {
                panic!("boom in rollout");
            }
            self.done += 1;
            EpisodeStats::default()
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair { ppo: vec![1.0], ..Default::default() }
        }
    }

    #[test]
    fn rollout_panic_without_factory_is_fatal_with_payload() {
        let mut chief =
            ChiefExecutor::spawn(vec![PanickyEmployee { rollouts_before_panic: 0, done: 0 }])
                .unwrap();
        let err = chief.rollout_all().unwrap_err();
        match err {
            ChiefError::EmployeeDied { employee, reason } => {
                assert_eq!(employee, 0);
                assert!(reason.contains("boom in rollout"), "payload lost: {reason}");
            }
            other => panic!("expected EmployeeDied, got {other}"),
        }
    }

    #[test]
    fn panicked_employee_is_respawned_within_budget() {
        let mut chief = ChiefExecutor::spawn_with(
            4,
            |i| {
                if i == 2 {
                    Box::new(PanickyEmployee { rollouts_before_panic: 1, done: 0 })
                } else {
                    Box::new(FakeEmployee::new(i)) as Box<dyn Employee>
                }
            },
            fast_config(),
        )
        .unwrap();
        chief.broadcast_params(vec![0.0], vec![]).unwrap();
        // First rollout: everyone survives (employee 2 has one rollout left).
        let r1 = chief.rollout_all().unwrap();
        assert_eq!(r1.stats.len(), 4);
        assert!(r1.failed.is_empty());
        // Second rollout: employee 2 panics, is respawned, and the other
        // three complete.
        let r2 = chief.rollout_all().unwrap();
        assert_eq!(r2.stats.len(), 3);
        assert_eq!(r2.failed, vec![2]);
        assert_eq!(r2.respawned, vec![2]);
        assert_eq!(chief.restarts_used(), 1);
        // The replacement is cold: gathers exclude it until it rolls out.
        let report = chief.gather_grads().unwrap();
        assert_eq!(report.contributors, 3);
        // Third rollout warms the replacement (fresh PanickyEmployee with
        // one rollout budget), and the next gather includes all 4.
        let r3 = chief.rollout_all().unwrap();
        assert_eq!(r3.stats.len(), 4);
        let report = chief.gather_grads().unwrap();
        assert_eq!(report.contributors, 4);
    }

    #[test]
    fn restart_budget_exhaustion_is_fatal() {
        let cfg = ChiefConfig { restart_budget: 1, ..fast_config() };
        let mut chief = ChiefExecutor::spawn_with(
            2,
            |i| {
                if i == 0 {
                    Box::new(PanickyEmployee { rollouts_before_panic: 0, done: 0 })
                } else {
                    Box::new(FakeEmployee::new(i)) as Box<dyn Employee>
                }
            },
            cfg,
        )
        .unwrap();
        // First death consumes the budget; the respawned clone dies again
        // on the next rollout and must abort the run.
        chief.rollout_all().unwrap();
        let err = chief.rollout_all().unwrap_err();
        match err {
            ChiefError::RestartBudgetExhausted { employee, budget, reason } => {
                assert_eq!((employee, budget), (0, 1));
                assert!(reason.contains("boom in rollout"));
            }
            other => panic!("expected RestartBudgetExhausted, got {other}"),
        }
    }

    #[test]
    fn injected_panic_at_round_is_contained_and_respawned() {
        let faults = FaultPlan::none().with(1, 0, FaultKind::Panic);
        let cfg = ChiefConfig { faults, ..fast_config() };
        let mut chief =
            ChiefExecutor::spawn_with(3, |i| Box::new(FakeEmployee::new(i)) as _, cfg).unwrap();
        chief.broadcast_params(vec![1.0], vec![]).unwrap();
        chief.rollout_all().unwrap();
        let report = chief.gather_grads().unwrap();
        // Employees 0 and 2 contribute (1 + 0) + (1 + 2) = 4.
        assert_eq!(report.ppo, vec![4.0]);
        assert_eq!(report.contributors, 2);
        assert_eq!(report.failed, vec![1]);
        assert_eq!(report.respawned, vec![1]);
        // Round 1 has no fault scripted; the replacement is still cold.
        let report = chief.gather_grads().unwrap();
        assert_eq!(report.contributors, 2);
        // After the next rollout everyone contributes again.
        chief.rollout_all().unwrap();
        let report = chief.gather_grads().unwrap();
        assert_eq!(report.contributors, 3);
        assert_eq!(report.ppo, vec![6.0]);
    }

    #[test]
    fn stalled_employee_is_declared_dead_not_wedged() {
        let faults = FaultPlan::none().with(0, 0, FaultKind::Stall { rounds: 3 });
        let cfg = ChiefConfig {
            round_timeout: Some(Duration::from_millis(100)),
            faults,
            ..fast_config()
        };
        let mut chief =
            ChiefExecutor::spawn_with(2, |i| Box::new(FakeEmployee::new(i)) as _, cfg).unwrap();
        chief.broadcast_params(vec![0.0], vec![]).unwrap();
        chief.rollout_all().unwrap();
        let start = Instant::now();
        let report = chief.gather_grads().unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "gather wedged on the stall");
        assert_eq!(report.contributors, 1);
        assert_eq!(report.ppo, vec![1.0]); // employee 1 only
        assert_eq!(report.failed, vec![0]);
        assert_eq!(report.respawned, vec![0]);
    }

    #[test]
    fn nan_gradients_are_quarantined_with_divisor_adjusted() {
        let faults = FaultPlan::none().with(2, 0, FaultKind::NanGrads);
        let cfg = ChiefConfig { faults, ..fast_config() };
        let mut chief =
            ChiefExecutor::spawn_with(4, |i| Box::new(FakeEmployee::new(i)) as _, cfg).unwrap();
        chief.broadcast_params(vec![10.0], vec![]).unwrap();
        chief.rollout_all().unwrap();
        let report = chief.gather_grads().unwrap();
        // Healthy: 0, 1, 3 → (10+0) + (10+1) + (10+3) = 34; NaN never
        // reaches the sum.
        assert_eq!(report.ppo, vec![34.0]);
        assert!(report.ppo.iter().all(|x| x.is_finite()));
        assert_eq!(report.contributors, 3);
        assert_eq!(report.quarantined, vec![2]);
        // Quarantine does not kill: next round all 4 contribute.
        let report = chief.gather_grads().unwrap();
        assert_eq!(report.contributors, 4);
        assert_eq!(report.quarantined, Vec::<usize>::new());
        assert_eq!(chief.restarts_used(), 0);
    }

    #[test]
    fn rng_snapshot_roundtrip_covers_every_employee() {
        let mut chief =
            ChiefExecutor::spawn_with(3, |i| Box::new(FakeEmployee::new(i)) as _, fast_config())
                .unwrap();
        let states = chief.snapshot_rngs().unwrap();
        assert_eq!(states, vec![[0u64; 4], [1; 4], [2; 4]]);
        chief.restore_rngs(&states).unwrap();
        let err = chief.restore_rngs(&states[..1]).unwrap_err();
        assert_eq!(err, ChiefError::StateMismatch { what: "rng", expected: 3, got: 1 });
    }

    #[test]
    fn fault_plan_lookup_and_serde() {
        let plan = FaultPlan::none().with(1, 3, FaultKind::Panic).with(
            2,
            5,
            FaultKind::Stall { rounds: 2 },
        );
        assert_eq!(plan.at(1, 3), Some(FaultKind::Panic));
        assert_eq!(plan.at(1, 4), None);
        assert_eq!(plan.at(2, 5), Some(FaultKind::Stall { rounds: 2 }));
        assert!(!plan.is_empty() && FaultPlan::none().is_empty());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn stats_mean_aggregates() {
        let stats = vec![
            EpisodeStats {
                kappa: 0.2,
                xi: 0.8,
                rho: 0.1,
                ext_reward: 1.0,
                int_reward: 0.5,
                collisions: 2,
            },
            EpisodeStats {
                kappa: 0.4,
                xi: 0.6,
                rho: 0.3,
                ext_reward: 3.0,
                int_reward: 1.5,
                collisions: 4,
            },
        ];
        let m = EpisodeStats::mean(&stats);
        assert!((m.kappa - 0.3).abs() < 1e-6);
        assert!((m.xi - 0.7).abs() < 1e-6);
        assert!((m.ext_reward - 2.0).abs() < 1e-6);
        assert_eq!(m.collisions, 3);
        assert_eq!(EpisodeStats::mean(&[]), EpisodeStats::default());
    }

    #[test]
    fn stats_mean_rounds_collisions_half_up() {
        // Mean of {2, 4, 5} = 3.67 → must report 4, not truncate to 3.
        let stats: Vec<EpisodeStats> = [2u32, 4, 5]
            .iter()
            .map(|&c| EpisodeStats { collisions: c, ..Default::default() })
            .collect();
        assert_eq!(EpisodeStats::mean(&stats).collisions, 4);
        // Exact half rounds up: mean of {1, 2} = 1.5 → 2.
        let stats: Vec<EpisodeStats> = [1u32, 2]
            .iter()
            .map(|&c| EpisodeStats { collisions: c, ..Default::default() })
            .collect();
        assert_eq!(EpisodeStats::mean(&stats).collisions, 2);
    }
}
