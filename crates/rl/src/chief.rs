//! The chief–employee distributed computational architecture (Section V-A,
//! Algorithms 1–2).
//!
//! One **chief** owns the global PPO and curiosity parameter stores and the
//! only optimizers. M **employee** threads each hold a local model copy and
//! a local environment. Training is *synchronous*: per update round `k`,
//! every employee computes gradients from its own experience and pushes them
//! into the global [`GradientBuffer`]s; the chief waits for all M
//! contributions, sums them, applies one Adam step per model, clears the
//! buffers, and broadcasts fresh parameters. (The paper explicitly prefers
//! this synchronous scheme over asynchronous V-trace-style correction.)
//!
//! The employee behavior is abstracted behind the [`Employee`] trait so the
//! same chief drives DRL-CEWS (PPO + curiosity), DPPO (PPO only) and Edics
//! (per-worker agents).

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Flat gradient vectors for the two global models. An empty curiosity
/// vector means the employee trains no curiosity model.
#[derive(Clone, Debug, Default)]
pub struct GradPair {
    pub ppo: Vec<f32>,
    pub curiosity: Vec<f32>,
    /// Diagnostics from the minibatch that produced `ppo` (entropy, value
    /// loss, KL proxy), aggregated by the chief for training telemetry.
    pub stats: crate::ppo::PpoStats,
}

/// Per-episode summary an employee reports after its rollout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Data collection ratio κ at episode end.
    pub kappa: f32,
    /// Remaining data ratio ξ at episode end.
    pub xi: f32,
    /// Energy efficiency ρ at episode end.
    pub rho: f32,
    /// Summed extrinsic reward over the episode.
    pub ext_reward: f32,
    /// Summed intrinsic (curiosity) reward over the episode.
    pub int_reward: f32,
    /// Total obstacle collisions across workers.
    pub collisions: u32,
}

impl EpisodeStats {
    /// Element-wise mean of a set of stats (chief-side aggregation).
    pub fn mean(stats: &[EpisodeStats]) -> EpisodeStats {
        if stats.is_empty() {
            return EpisodeStats::default();
        }
        let n = stats.len() as f32;
        EpisodeStats {
            kappa: stats.iter().map(|s| s.kappa).sum::<f32>() / n,
            xi: stats.iter().map(|s| s.xi).sum::<f32>() / n,
            rho: stats.iter().map(|s| s.rho).sum::<f32>() / n,
            ext_reward: stats.iter().map(|s| s.ext_reward).sum::<f32>() / n,
            int_reward: stats.iter().map(|s| s.int_reward).sum::<f32>() / n,
            collisions: (stats.iter().map(|s| s.collisions).sum::<u32>() as f32 / n) as u32,
        }
    }
}

/// An employee thread's workload: one local model + environment.
pub trait Employee: Send + 'static {
    /// Copies fresh global parameters into the local models (Algorithm 1,
    /// line 22). `curiosity` is empty when no curiosity model exists.
    fn load_params(&mut self, ppo: &[f32], curiosity: &[f32]);

    /// Interacts with the local environment for one episode, storing
    /// experience (Algorithm 1, lines 4–15).
    fn rollout(&mut self) -> EpisodeStats;

    /// One update round: sample a minibatch, compute gradients w.r.t. the
    /// local models, and return them flat (Algorithm 1, lines 18–20).
    fn compute_grads(&mut self) -> GradPair;
}

/// A thread-safe flat-gradient accumulator — the "PPO gradient buffer" /
/// "curiosity gradient buffer" of Fig. 1.
#[derive(Debug, Default)]
pub struct GradientBuffer {
    inner: Mutex<GradientBufferInner>,
}

#[derive(Debug, Default)]
struct GradientBufferInner {
    sum: Vec<f32>,
    contributions: usize,
}

impl GradientBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one employee's flat gradient.
    pub fn accumulate(&self, grads: &[f32]) {
        let mut inner = self.inner.lock();
        if inner.sum.is_empty() {
            inner.sum = grads.to_vec();
        } else {
            assert_eq!(inner.sum.len(), grads.len(), "gradient length mismatch");
            for (s, &g) in inner.sum.iter_mut().zip(grads) {
                *s += g;
            }
        }
        inner.contributions += 1;
    }

    /// Number of gradients accumulated since the last [`Self::take`].
    pub fn contributions(&self) -> usize {
        self.inner.lock().contributions
    }

    /// Drains the buffer, returning the summed gradient (empty if nothing
    /// was accumulated).
    pub fn take(&self) -> Vec<f32> {
        let mut inner = self.inner.lock();
        inner.contributions = 0;
        std::mem::take(&mut inner.sum)
    }
}

enum Cmd {
    LoadParams(Arc<(Vec<f32>, Vec<f32>)>),
    Rollout,
    ComputeGrads,
    Stop,
}

enum Reply {
    RolloutDone(EpisodeStats),
    GradsDone(crate::ppo::PpoStats),
}

struct EmployeeHandle {
    cmd_tx: Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

/// Drives M employee threads through synchronized rollout / update rounds.
///
/// The chief does not know what model the employees run; it only moves flat
/// parameter and gradient vectors. The caller owns the global stores and
/// optimizers and provides the summed-gradient application as a closure.
pub struct ChiefExecutor {
    employees: Vec<EmployeeHandle>,
    reply_rx: Receiver<(usize, Reply)>,
    ppo_buffer: Arc<GradientBuffer>,
    curiosity_buffer: Arc<GradientBuffer>,
}

impl ChiefExecutor {
    /// Spawns one thread per employee.
    pub fn spawn<E: Employee>(employees: Vec<E>) -> Self {
        assert!(!employees.is_empty(), "need at least one employee");
        let ppo_buffer = Arc::new(GradientBuffer::new());
        let curiosity_buffer = Arc::new(GradientBuffer::new());
        let (reply_tx, reply_rx) = bounded::<(usize, Reply)>(employees.len() * 2);

        let handles = employees
            .into_iter()
            .enumerate()
            .map(|(i, mut emp)| {
                let (cmd_tx, cmd_rx) = bounded::<Cmd>(2);
                let reply_tx = reply_tx.clone();
                let ppo_buf = Arc::clone(&ppo_buffer);
                let cur_buf = Arc::clone(&curiosity_buffer);
                let join = std::thread::Builder::new()
                    .name(format!("employee-{i}"))
                    .spawn(move || {
                        while let Ok(cmd) = cmd_rx.recv() {
                            match cmd {
                                Cmd::LoadParams(p) => emp.load_params(&p.0, &p.1),
                                Cmd::Rollout => {
                                    let stats = emp.rollout();
                                    let _ = reply_tx.send((i, Reply::RolloutDone(stats)));
                                }
                                Cmd::ComputeGrads => {
                                    let grads = emp.compute_grads();
                                    ppo_buf.accumulate(&grads.ppo);
                                    if !grads.curiosity.is_empty() {
                                        cur_buf.accumulate(&grads.curiosity);
                                    }
                                    let _ = reply_tx.send((i, Reply::GradsDone(grads.stats)));
                                }
                                Cmd::Stop => break,
                            }
                        }
                    })
                    .expect("failed to spawn employee thread");
                EmployeeHandle { cmd_tx, join: Some(join) }
            })
            .collect();

        Self { employees: handles, reply_rx, ppo_buffer, curiosity_buffer }
    }

    /// Number of employees.
    pub fn num_employees(&self) -> usize {
        self.employees.len()
    }

    /// Broadcasts fresh global parameters to every employee (fire-and-forget;
    /// the next synchronized phase orders it before use).
    pub fn broadcast_params(&self, ppo: Vec<f32>, curiosity: Vec<f32>) {
        let shared = Arc::new((ppo, curiosity));
        for e in &self.employees {
            e.cmd_tx.send(Cmd::LoadParams(Arc::clone(&shared))).expect("employee died");
        }
    }

    /// Runs one episode rollout on every employee in parallel and returns
    /// their stats (indexed by employee).
    pub fn rollout_all(&self) -> Vec<EpisodeStats> {
        for e in &self.employees {
            e.cmd_tx.send(Cmd::Rollout).expect("employee died");
        }
        let mut stats = vec![EpisodeStats::default(); self.employees.len()];
        for _ in 0..self.employees.len() {
            let (i, reply) = self.reply_rx.recv().expect("employee channel closed");
            match reply {
                Reply::RolloutDone(s) => stats[i] = s,
                Reply::GradsDone(_) => unreachable!("unexpected grads reply during rollout"),
            }
        }
        stats
    }

    /// Runs one gradient round on every employee and returns the summed
    /// gradients `(ppo, curiosity)` plus the mean minibatch diagnostics once
    /// all M have contributed (Algorithm 2, lines 3–5).
    pub fn gather_grads(&self) -> (Vec<f32>, Vec<f32>, crate::ppo::PpoStats) {
        for e in &self.employees {
            e.cmd_tx.send(Cmd::ComputeGrads).expect("employee died");
        }
        let m = self.employees.len() as f32;
        let mut stats = crate::ppo::PpoStats::default();
        for _ in 0..self.employees.len() {
            let (_, reply) = self.reply_rx.recv().expect("employee channel closed");
            match reply {
                Reply::GradsDone(s) => {
                    stats.policy_objective += s.policy_objective / m;
                    stats.value_loss += s.value_loss / m;
                    stats.entropy += s.entropy / m;
                    stats.approx_kl += s.approx_kl / m;
                }
                Reply::RolloutDone(_) => unreachable!("unexpected rollout reply during update"),
            }
        }
        debug_assert_eq!(self.ppo_buffer.contributions(), self.employees.len());
        (self.ppo_buffer.take(), self.curiosity_buffer.take(), stats)
    }
}

impl Drop for ChiefExecutor {
    fn drop(&mut self) {
        for e in &self.employees {
            let _ = e.cmd_tx.send(Cmd::Stop);
        }
        for e in &mut self.employees {
            if let Some(j) = e.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake employee whose "gradient" is its current parameter vector plus
    /// a constant, which makes the chief-side summation checkable exactly.
    struct FakeEmployee {
        id: f32,
        params: Vec<f32>,
        rollouts: usize,
    }

    impl Employee for FakeEmployee {
        fn load_params(&mut self, ppo: &[f32], _curiosity: &[f32]) {
            self.params = ppo.to_vec();
        }
        fn rollout(&mut self) -> EpisodeStats {
            self.rollouts += 1;
            EpisodeStats { kappa: self.id, ..Default::default() }
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair {
                ppo: self.params.iter().map(|p| p + self.id).collect(),
                curiosity: vec![self.id],
                stats: crate::ppo::PpoStats { entropy: self.id, ..Default::default() },
            }
        }
    }

    #[test]
    fn gradient_buffer_sums_and_drains() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]);
        buf.accumulate(&[0.5, -1.0]);
        assert_eq!(buf.contributions(), 2);
        assert_eq!(buf.take(), vec![1.5, 1.0]);
        assert_eq!(buf.contributions(), 0);
        assert!(buf.take().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn gradient_buffer_rejects_mismatched_lengths() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]);
        buf.accumulate(&[1.0]);
    }

    #[test]
    fn chief_synchronizes_rollouts_and_grads() {
        let employees: Vec<FakeEmployee> =
            (0..4).map(|i| FakeEmployee { id: i as f32, params: vec![], rollouts: 0 }).collect();
        let chief = ChiefExecutor::spawn(employees);
        assert_eq!(chief.num_employees(), 4);

        chief.broadcast_params(vec![10.0, 20.0], vec![]);
        let stats = chief.rollout_all();
        // Stats arrive indexed by employee regardless of completion order.
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.kappa, i as f32);
        }

        let (ppo, cur, stats) = chief.gather_grads();
        // Σ_i (params + i) = 4·[10,20] + [Σi, Σi] = [46, 86].
        assert_eq!(ppo, vec![46.0, 86.0]);
        // Mean of ids 0..4 = 1.5.
        assert!((stats.entropy - 1.5).abs() < 1e-6);
        // Curiosity buffer collected the ids.
        let mut cur_sum = cur;
        assert_eq!(cur_sum.len(), 1);
        assert_eq!(cur_sum.pop().unwrap(), 6.0);
    }

    #[test]
    fn repeated_rounds_reuse_buffers() {
        let employees: Vec<FakeEmployee> =
            (0..2).map(|i| FakeEmployee { id: i as f32 + 1.0, params: vec![], rollouts: 0 }).collect();
        let chief = ChiefExecutor::spawn(employees);
        chief.broadcast_params(vec![0.0], vec![]);
        for round in 1..=3 {
            let (ppo, _, _) = chief.gather_grads();
            assert_eq!(ppo, vec![3.0], "round {round}");
        }
    }

    #[test]
    fn stats_mean_aggregates() {
        let stats = vec![
            EpisodeStats { kappa: 0.2, xi: 0.8, rho: 0.1, ext_reward: 1.0, int_reward: 0.5, collisions: 2 },
            EpisodeStats { kappa: 0.4, xi: 0.6, rho: 0.3, ext_reward: 3.0, int_reward: 1.5, collisions: 4 },
        ];
        let m = EpisodeStats::mean(&stats);
        assert!((m.kappa - 0.3).abs() < 1e-6);
        assert!((m.xi - 0.7).abs() < 1e-6);
        assert!((m.ext_reward - 2.0).abs() < 1e-6);
        assert_eq!(m.collisions, 3);
        assert_eq!(EpisodeStats::mean(&[]), EpisodeStats::default());
    }
}
