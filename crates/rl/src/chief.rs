//! The chief–employee distributed computational architecture (Section V-A,
//! Algorithms 1–2).
//!
//! One **chief** owns the global PPO and curiosity parameter stores and the
//! only optimizers. M **employee** threads each hold a local model copy and
//! a local environment. Training is *synchronous*: per update round `k`,
//! every employee computes gradients from its own experience and pushes them
//! into the global [`GradientBuffer`]s; the chief waits for all M
//! contributions, sums them, applies one Adam step per model, clears the
//! buffers, and broadcasts fresh parameters. (The paper explicitly prefers
//! this synchronous scheme over asynchronous V-trace-style correction.)
//!
//! The employee behavior is abstracted behind the [`Employee`] trait so the
//! same chief drives DRL-CEWS (PPO + curiosity), DPPO (PPO only) and Edics
//! (per-worker agents).
//!
//! All executor entry points are fallible: employee-thread death, closed
//! channels and malformed gradient contributions surface as [`ChiefError`]
//! instead of panicking inside library code (see DESIGN.md, "Error handling
//! & static analysis policy").

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Errors surfaced by the chief–employee executor and its gradient buffers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChiefError {
    /// `ChiefExecutor::spawn` was called with an empty employee set.
    NoEmployees,
    /// The OS refused to spawn an employee thread.
    Spawn(String),
    /// An employee's command channel is closed — its thread died (panicked
    /// or exited early).
    EmployeeDied {
        /// Index of the dead employee.
        employee: usize,
    },
    /// The shared reply channel closed: every employee thread is gone.
    ChannelClosed,
    /// A gradient contribution's length didn't match the accumulated sum.
    GradientLengthMismatch {
        /// Length of the running sum already in the buffer.
        expected: usize,
        /// Length of the offending contribution.
        got: usize,
    },
    /// A gather round completed with the wrong number of contributions in a
    /// buffer — some employee double-pushed or skipped its push.
    ContributionMismatch {
        /// Contributions the round should have produced (= employee count).
        expected: usize,
        /// Contributions actually present in the buffer.
        got: usize,
        /// Which buffer disagreed (`"ppo"` or `"curiosity"`).
        buffer: &'static str,
    },
    /// An employee answered a phase with the wrong reply kind — the
    /// synchronous command/reply protocol was violated.
    UnexpectedReply {
        /// Index of the employee that sent the reply.
        employee: usize,
        /// The phase the chief was running (`"rollout"` or `"update"`).
        during: &'static str,
    },
}

impl fmt::Display for ChiefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChiefError::NoEmployees => write!(f, "need at least one employee"),
            ChiefError::Spawn(err) => write!(f, "failed to spawn employee thread: {err}"),
            ChiefError::EmployeeDied { employee } => {
                write!(f, "employee {employee} died (command channel closed)")
            }
            ChiefError::ChannelClosed => write!(f, "reply channel closed: all employees are gone"),
            ChiefError::GradientLengthMismatch { expected, got } => {
                write!(
                    f,
                    "gradient length mismatch: buffer holds {expected}, contribution has {got}"
                )
            }
            ChiefError::ContributionMismatch { expected, got, buffer } => {
                write!(f, "{buffer} buffer finished a round with {got} contributions, expected {expected}")
            }
            ChiefError::UnexpectedReply { employee, during } => {
                write!(f, "employee {employee} sent the wrong reply kind during {during}")
            }
        }
    }
}

impl std::error::Error for ChiefError {}

/// Flat gradient vectors for the two global models. An empty curiosity
/// vector means the employee trains no curiosity model.
#[derive(Clone, Debug, Default)]
pub struct GradPair {
    /// Flat gradient of the global PPO (actor-critic) parameters.
    pub ppo: Vec<f32>,
    /// Flat gradient of the global curiosity parameters (may be empty).
    pub curiosity: Vec<f32>,
    /// Diagnostics from the minibatch that produced `ppo` (entropy, value
    /// loss, KL proxy), aggregated by the chief for training telemetry.
    pub stats: crate::ppo::PpoStats,
}

/// Per-episode summary an employee reports after its rollout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Data collection ratio κ at episode end.
    pub kappa: f32,
    /// Remaining data ratio ξ at episode end.
    pub xi: f32,
    /// Energy efficiency ρ at episode end.
    pub rho: f32,
    /// Summed extrinsic reward over the episode.
    pub ext_reward: f32,
    /// Summed intrinsic (curiosity) reward over the episode.
    pub int_reward: f32,
    /// Total obstacle collisions across workers.
    pub collisions: u32,
}

impl EpisodeStats {
    /// Element-wise mean of a set of stats (chief-side aggregation).
    ///
    /// The integer `collisions` field rounds half-up rather than truncating,
    /// so a mean of 4.33 reports 4 and a mean of 3.5 reports 4 — truncation
    /// systematically under-reported collision counts.
    pub fn mean(stats: &[EpisodeStats]) -> EpisodeStats {
        if stats.is_empty() {
            return EpisodeStats::default();
        }
        let n = stats.len() as f32;
        EpisodeStats {
            kappa: stats.iter().map(|s| s.kappa).sum::<f32>() / n,
            xi: stats.iter().map(|s| s.xi).sum::<f32>() / n,
            rho: stats.iter().map(|s| s.rho).sum::<f32>() / n,
            ext_reward: stats.iter().map(|s| s.ext_reward).sum::<f32>() / n,
            int_reward: stats.iter().map(|s| s.int_reward).sum::<f32>() / n,
            collisions: (stats.iter().map(|s| s.collisions).sum::<u32>() as f32 / n).round() as u32,
        }
    }
}

/// An employee thread's workload: one local model + environment.
pub trait Employee: Send + 'static {
    /// Copies fresh global parameters into the local models (Algorithm 1,
    /// line 22). `curiosity` is empty when no curiosity model exists.
    fn load_params(&mut self, ppo: &[f32], curiosity: &[f32]);

    /// Interacts with the local environment for one episode, storing
    /// experience (Algorithm 1, lines 4–15).
    fn rollout(&mut self) -> EpisodeStats;

    /// One update round: sample a minibatch, compute gradients w.r.t. the
    /// local models, and return them flat (Algorithm 1, lines 18–20).
    fn compute_grads(&mut self) -> GradPair;
}

/// A thread-safe flat-gradient accumulator — the "PPO gradient buffer" /
/// "curiosity gradient buffer" of Fig. 1.
#[derive(Debug, Default)]
pub struct GradientBuffer {
    inner: Mutex<GradientBufferInner>,
}

#[derive(Debug, Default)]
struct GradientBufferInner {
    sum: Vec<f32>,
    contributions: usize,
}

impl GradientBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one employee's flat gradient.
    ///
    /// The first contribution after a [`Self::take`] fixes the expected
    /// length; later contributions of a different length are rejected with
    /// [`ChiefError::GradientLengthMismatch`] and leave the buffer unchanged.
    pub fn accumulate(&self, grads: &[f32]) -> Result<(), ChiefError> {
        let mut inner = self.inner.lock();
        if inner.sum.is_empty() {
            inner.sum = grads.to_vec();
        } else {
            if inner.sum.len() != grads.len() {
                return Err(ChiefError::GradientLengthMismatch {
                    expected: inner.sum.len(),
                    got: grads.len(),
                });
            }
            for (s, &g) in inner.sum.iter_mut().zip(grads) {
                *s += g;
            }
        }
        inner.contributions += 1;
        Ok(())
    }

    /// Number of gradients accumulated since the last [`Self::take`].
    pub fn contributions(&self) -> usize {
        self.inner.lock().contributions
    }

    /// Drains the buffer, returning the summed gradient (empty if nothing
    /// was accumulated).
    pub fn take(&self) -> Vec<f32> {
        let mut inner = self.inner.lock();
        inner.contributions = 0;
        std::mem::take(&mut inner.sum)
    }
}

enum Cmd {
    LoadParams(Arc<(Vec<f32>, Vec<f32>)>),
    Rollout,
    ComputeGrads,
    Stop,
}

enum Reply {
    RolloutDone(EpisodeStats),
    /// Gradients were pushed into the global buffers; `Err` carries an
    /// accumulate failure detected on the employee side.
    GradsDone(Result<crate::ppo::PpoStats, ChiefError>),
}

struct EmployeeHandle {
    cmd_tx: Sender<Cmd>,
    join: Option<JoinHandle<()>>,
}

/// Drives M employee threads through synchronized rollout / update rounds.
///
/// The chief does not know what model the employees run; it only moves flat
/// parameter and gradient vectors. The caller owns the global stores and
/// optimizers and provides the summed-gradient application as a closure.
pub struct ChiefExecutor {
    employees: Vec<EmployeeHandle>,
    reply_rx: Receiver<(usize, Reply)>,
    ppo_buffer: Arc<GradientBuffer>,
    curiosity_buffer: Arc<GradientBuffer>,
}

/// Pushes one employee's gradients into the global buffers, stopping at the
/// first failure. Runs on the employee thread; each `accumulate` call takes
/// and releases the buffer lock before the reply is sent, so no lock is held
/// across a channel send.
fn push_grads(
    grads: &GradPair,
    ppo_buf: &GradientBuffer,
    cur_buf: &GradientBuffer,
) -> Result<(), ChiefError> {
    ppo_buf.accumulate(&grads.ppo)?;
    if !grads.curiosity.is_empty() {
        cur_buf.accumulate(&grads.curiosity)?;
    }
    Ok(())
}

impl ChiefExecutor {
    /// Spawns one thread per employee.
    ///
    /// # Errors
    ///
    /// [`ChiefError::NoEmployees`] for an empty set, [`ChiefError::Spawn`]
    /// when the OS refuses a thread.
    pub fn spawn<E: Employee>(employees: Vec<E>) -> Result<Self, ChiefError> {
        if employees.is_empty() {
            return Err(ChiefError::NoEmployees);
        }
        let ppo_buffer = Arc::new(GradientBuffer::new());
        let curiosity_buffer = Arc::new(GradientBuffer::new());
        let (reply_tx, reply_rx) = bounded::<(usize, Reply)>(employees.len() * 2);

        let mut handles = Vec::with_capacity(employees.len());
        for (i, mut emp) in employees.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = bounded::<Cmd>(2);
            let reply_tx = reply_tx.clone();
            let ppo_buf = Arc::clone(&ppo_buffer);
            let cur_buf = Arc::clone(&curiosity_buffer);
            let join = std::thread::Builder::new()
                .name(format!("employee-{i}"))
                .spawn(move || {
                    while let Ok(cmd) = cmd_rx.recv() {
                        match cmd {
                            Cmd::LoadParams(p) => emp.load_params(&p.0, &p.1),
                            Cmd::Rollout => {
                                let stats = emp.rollout();
                                let _ = reply_tx.send((i, Reply::RolloutDone(stats)));
                            }
                            Cmd::ComputeGrads => {
                                let grads = emp.compute_grads();
                                let pushed = push_grads(&grads, &ppo_buf, &cur_buf);
                                let reply = pushed.map(|()| grads.stats);
                                let _ = reply_tx.send((i, Reply::GradsDone(reply)));
                            }
                            Cmd::Stop => break,
                        }
                    }
                })
                .map_err(|e| ChiefError::Spawn(e.to_string()))?;
            handles.push(EmployeeHandle { cmd_tx, join: Some(join) });
        }

        Ok(Self { employees: handles, reply_rx, ppo_buffer, curiosity_buffer })
    }

    /// Number of employees.
    pub fn num_employees(&self) -> usize {
        self.employees.len()
    }

    /// Broadcasts fresh global parameters to every employee (fire-and-forget;
    /// the next synchronized phase orders it before use).
    ///
    /// # Errors
    ///
    /// [`ChiefError::EmployeeDied`] if any employee's command channel is
    /// closed.
    pub fn broadcast_params(&self, ppo: Vec<f32>, curiosity: Vec<f32>) -> Result<(), ChiefError> {
        let shared = Arc::new((ppo, curiosity));
        for (i, e) in self.employees.iter().enumerate() {
            e.cmd_tx
                .send(Cmd::LoadParams(Arc::clone(&shared)))
                .map_err(|_| ChiefError::EmployeeDied { employee: i })?;
        }
        Ok(())
    }

    /// Runs one episode rollout on every employee in parallel and returns
    /// their stats (indexed by employee).
    ///
    /// # Errors
    ///
    /// [`ChiefError::EmployeeDied`] / [`ChiefError::ChannelClosed`] when a
    /// thread is gone, [`ChiefError::UnexpectedReply`] on a protocol
    /// violation.
    pub fn rollout_all(&self) -> Result<Vec<EpisodeStats>, ChiefError> {
        for (i, e) in self.employees.iter().enumerate() {
            e.cmd_tx.send(Cmd::Rollout).map_err(|_| ChiefError::EmployeeDied { employee: i })?;
        }
        let mut stats = vec![EpisodeStats::default(); self.employees.len()];
        for _ in 0..self.employees.len() {
            let (i, reply) = self.reply_rx.recv().map_err(|_| ChiefError::ChannelClosed)?;
            match reply {
                Reply::RolloutDone(s) => stats[i] = s,
                Reply::GradsDone(_) => {
                    return Err(ChiefError::UnexpectedReply { employee: i, during: "rollout" });
                }
            }
        }
        Ok(stats)
    }

    /// Runs one gradient round on every employee and returns the summed
    /// gradients `(ppo, curiosity)` plus the mean minibatch diagnostics once
    /// all M have contributed (Algorithm 2, lines 3–5).
    ///
    /// # Errors
    ///
    /// Besides the liveness errors of [`Self::rollout_all`], this propagates
    /// employee-side [`ChiefError::GradientLengthMismatch`] failures and
    /// checks the PPO buffer's contribution count against the employee count
    /// ([`ChiefError::ContributionMismatch`]) before draining. Either way the
    /// buffers are drained, so a failed round never poisons the next one.
    pub fn gather_grads(&self) -> Result<(Vec<f32>, Vec<f32>, crate::ppo::PpoStats), ChiefError> {
        for (i, e) in self.employees.iter().enumerate() {
            e.cmd_tx
                .send(Cmd::ComputeGrads)
                .map_err(|_| ChiefError::EmployeeDied { employee: i })?;
        }
        let m = self.employees.len() as f32;
        let mut stats = crate::ppo::PpoStats::default();
        let mut first_err = None;
        for _ in 0..self.employees.len() {
            let (i, reply) = match self.reply_rx.recv() {
                Ok(r) => r,
                Err(_) => {
                    self.drain_buffers();
                    return Err(ChiefError::ChannelClosed);
                }
            };
            match reply {
                Reply::GradsDone(Ok(s)) => {
                    stats.policy_objective += s.policy_objective / m;
                    stats.value_loss += s.value_loss / m;
                    stats.entropy += s.entropy / m;
                    stats.approx_kl += s.approx_kl / m;
                }
                Reply::GradsDone(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Reply::RolloutDone(_) => {
                    first_err.get_or_insert(ChiefError::UnexpectedReply {
                        employee: i,
                        during: "update",
                    });
                }
            }
        }
        if let Some(e) = first_err {
            self.drain_buffers();
            return Err(e);
        }
        // Runtime invariant (was a debug_assert): exactly one PPO
        // contribution per employee this round.
        let got = self.ppo_buffer.contributions();
        if got != self.employees.len() {
            let expected = self.employees.len();
            self.drain_buffers();
            return Err(ChiefError::ContributionMismatch { expected, got, buffer: "ppo" });
        }
        Ok((self.ppo_buffer.take(), self.curiosity_buffer.take(), stats))
    }

    /// Clears both gradient buffers after a failed round so stale partial
    /// sums can't leak into the next round.
    fn drain_buffers(&self) {
        let _ = self.ppo_buffer.take();
        let _ = self.curiosity_buffer.take();
    }
}

impl Drop for ChiefExecutor {
    fn drop(&mut self) {
        for e in &self.employees {
            let _ = e.cmd_tx.send(Cmd::Stop);
        }
        for e in &mut self.employees {
            if let Some(j) = e.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// A fake employee whose "gradient" is its current parameter vector plus
    /// a constant, which makes the chief-side summation checkable exactly.
    struct FakeEmployee {
        id: f32,
        params: Vec<f32>,
        rollouts: usize,
    }

    impl Employee for FakeEmployee {
        fn load_params(&mut self, ppo: &[f32], _curiosity: &[f32]) {
            self.params = ppo.to_vec();
        }
        fn rollout(&mut self) -> EpisodeStats {
            self.rollouts += 1;
            EpisodeStats { kappa: self.id, ..Default::default() }
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair {
                ppo: self.params.iter().map(|p| p + self.id).collect(),
                curiosity: vec![self.id],
                stats: crate::ppo::PpoStats { entropy: self.id, ..Default::default() },
            }
        }
    }

    #[test]
    fn gradient_buffer_sums_and_drains() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]).unwrap();
        buf.accumulate(&[0.5, -1.0]).unwrap();
        assert_eq!(buf.contributions(), 2);
        assert_eq!(buf.take(), vec![1.5, 1.0]);
        assert_eq!(buf.contributions(), 0);
        assert!(buf.take().is_empty());
    }

    #[test]
    fn gradient_buffer_rejects_mismatched_lengths() {
        let buf = GradientBuffer::new();
        buf.accumulate(&[1.0, 2.0]).unwrap();
        let err = buf.accumulate(&[1.0]).unwrap_err();
        assert_eq!(err, ChiefError::GradientLengthMismatch { expected: 2, got: 1 });
        // The failed contribution must not count or corrupt the sum.
        assert_eq!(buf.contributions(), 1);
        assert_eq!(buf.take(), vec![1.0, 2.0]);
    }

    #[test]
    fn spawn_rejects_empty_employee_set() {
        let err = match ChiefExecutor::spawn(Vec::<FakeEmployee>::new()) {
            Err(e) => e,
            Ok(_) => panic!("empty employee set must be rejected"),
        };
        assert_eq!(err, ChiefError::NoEmployees);
    }

    #[test]
    fn chief_errors_render_useful_messages() {
        let cases: Vec<(ChiefError, &str)> = vec![
            (ChiefError::EmployeeDied { employee: 3 }, "employee 3 died"),
            (ChiefError::GradientLengthMismatch { expected: 4, got: 2 }, "length mismatch"),
            (
                ChiefError::ContributionMismatch { expected: 8, got: 7, buffer: "ppo" },
                "7 contributions, expected 8",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            // The Error impl exists and has no source.
            let dyn_err: &dyn std::error::Error = &err;
            assert!(dyn_err.source().is_none());
        }
    }

    #[test]
    fn chief_synchronizes_rollouts_and_grads() {
        let employees: Vec<FakeEmployee> =
            (0..4).map(|i| FakeEmployee { id: i as f32, params: vec![], rollouts: 0 }).collect();
        let chief = ChiefExecutor::spawn(employees).unwrap();
        assert_eq!(chief.num_employees(), 4);

        chief.broadcast_params(vec![10.0, 20.0], vec![]).unwrap();
        let stats = chief.rollout_all().unwrap();
        // Stats arrive indexed by employee regardless of completion order.
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.kappa, i as f32);
        }

        let (ppo, cur, stats) = chief.gather_grads().unwrap();
        // Σ_i (params + i) = 4·[10,20] + [Σi, Σi] = [46, 86].
        assert_eq!(ppo, vec![46.0, 86.0]);
        // Mean of ids 0..4 = 1.5.
        assert!((stats.entropy - 1.5).abs() < 1e-6);
        // Curiosity buffer collected the ids.
        let mut cur_sum = cur;
        assert_eq!(cur_sum.len(), 1);
        assert_eq!(cur_sum.pop().unwrap(), 6.0);
    }

    #[test]
    fn repeated_rounds_reuse_buffers() {
        let employees: Vec<FakeEmployee> = (0..2)
            .map(|i| FakeEmployee { id: i as f32 + 1.0, params: vec![], rollouts: 0 })
            .collect();
        let chief = ChiefExecutor::spawn(employees).unwrap();
        chief.broadcast_params(vec![0.0], vec![]).unwrap();
        for round in 1..=3 {
            let (ppo, _, _) = chief.gather_grads().unwrap();
            assert_eq!(ppo, vec![3.0], "round {round}");
        }
    }

    /// An employee whose gradient length depends on its id, so only one of a
    /// pair can win the buffer and the other must trip the length check.
    struct MisshapenEmployee {
        len: usize,
    }

    impl Employee for MisshapenEmployee {
        fn load_params(&mut self, _ppo: &[f32], _curiosity: &[f32]) {}
        fn rollout(&mut self) -> EpisodeStats {
            EpisodeStats::default()
        }
        fn compute_grads(&mut self) -> GradPair {
            GradPair { ppo: vec![1.0; self.len], curiosity: vec![], ..Default::default() }
        }
    }

    #[test]
    fn gather_surfaces_employee_side_length_mismatch() {
        let chief =
            ChiefExecutor::spawn(vec![MisshapenEmployee { len: 3 }, MisshapenEmployee { len: 5 }])
                .unwrap();
        let err = chief.gather_grads().unwrap_err();
        assert!(
            matches!(err, ChiefError::GradientLengthMismatch { .. }),
            "unexpected error: {err}"
        );
        // The failed round drained the buffers; a well-shaped follow-up
        // round on a fresh chief must still work (buffers are per-chief).
        assert_eq!(chief.ppo_buffer.contributions(), 0);
    }

    #[test]
    fn stress_sixteen_employees_fifty_rounds_sum_exactly() {
        // The paper's largest Table-2 setting (M = 16) hammered for 50
        // sync rounds: every round must terminate (no deadlock between the
        // barrier and the gradient buffers) and produce the exact sum
        // Σ_i (params + i) with all 16 contributions accounted for.
        const M: usize = 16;
        const ROUNDS: usize = 50;
        let employees: Vec<FakeEmployee> =
            (0..M).map(|i| FakeEmployee { id: i as f32, params: vec![], rollouts: 0 }).collect();
        let chief = ChiefExecutor::spawn(employees).unwrap();
        let id_sum: f32 = (0..M).map(|i| i as f32).sum(); // 120
        for round in 0..ROUNDS {
            // Fresh params each round so a stale broadcast shows up as a
            // wrong sum, not just a repeat of the previous round.
            let p = round as f32;
            chief.broadcast_params(vec![p, -p], vec![]).unwrap();
            let stats = chief.rollout_all().unwrap();
            assert_eq!(stats.len(), M, "round {round}");
            let (ppo, cur, _) = chief.gather_grads().unwrap();
            assert_eq!(ppo, vec![M as f32 * p + id_sum, -(M as f32) * p + id_sum], "round {round}");
            // Curiosity gradients collect every id exactly once.
            assert_eq!(cur, vec![id_sum], "round {round}");
            // Buffers fully drained between rounds.
            assert_eq!(chief.ppo_buffer.contributions(), 0);
            assert_eq!(chief.curiosity_buffer.contributions(), 0);
        }
    }

    #[test]
    fn stats_mean_aggregates() {
        let stats = vec![
            EpisodeStats {
                kappa: 0.2,
                xi: 0.8,
                rho: 0.1,
                ext_reward: 1.0,
                int_reward: 0.5,
                collisions: 2,
            },
            EpisodeStats {
                kappa: 0.4,
                xi: 0.6,
                rho: 0.3,
                ext_reward: 3.0,
                int_reward: 1.5,
                collisions: 4,
            },
        ];
        let m = EpisodeStats::mean(&stats);
        assert!((m.kappa - 0.3).abs() < 1e-6);
        assert!((m.xi - 0.7).abs() < 1e-6);
        assert!((m.ext_reward - 2.0).abs() < 1e-6);
        assert_eq!(m.collisions, 3);
        assert_eq!(EpisodeStats::mean(&[]), EpisodeStats::default());
    }

    #[test]
    fn stats_mean_rounds_collisions_half_up() {
        // Mean of {2, 4, 5} = 3.67 → must report 4, not truncate to 3.
        let stats: Vec<EpisodeStats> = [2u32, 4, 5]
            .iter()
            .map(|&c| EpisodeStats { collisions: c, ..Default::default() })
            .collect();
        assert_eq!(EpisodeStats::mean(&stats).collisions, 4);
        // Exact half rounds up: mean of {1, 2} = 1.5 → 2.
        let stats: Vec<EpisodeStats> = [1u32, 2]
            .iter()
            .map(|&c| EpisodeStats { collisions: c, ..Default::default() })
            .collect();
        assert_eq!(EpisodeStats::mean(&stats).collisions, 2);
    }
}
