//! Return and advantage estimation.
//!
//! The paper's value target is the discounted return-to-go with a bootstrap,
//! `G_t = r_t + γr_{t+1} + … + γ^{T−t}·V(s_T)` (Eqn 11). Advantages use
//! generalized advantage estimation (GAE-λ), the standard companion of the
//! clipped PPO objective; λ = 1 recovers `G_t − V(s_t)`.

/// Discounted returns-to-go with terminal bootstrap `v_last = V(s_T)`.
pub fn discounted_returns(rewards: &[f32], gamma: f32, v_last: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; rewards.len()];
    let mut acc = v_last;
    for (i, &r) in rewards.iter().enumerate().rev() {
        acc = r + gamma * acc;
        out[i] = acc;
    }
    out
}

/// GAE-λ advantages. `values` holds `V(s_0..s_{T−1})`; `v_last` bootstraps
/// the final transition.
pub fn gae_advantages(
    rewards: &[f32],
    values: &[f32],
    gamma: f32,
    lambda: f32,
    v_last: f32,
) -> Vec<f32> {
    assert_eq!(rewards.len(), values.len(), "one value per reward required");
    let t_len = rewards.len();
    let mut adv = vec![0.0f32; t_len];
    let mut acc = 0.0f32;
    for i in (0..t_len).rev() {
        let next_v = if i + 1 < t_len { values[i + 1] } else { v_last };
        let delta = rewards[i] + gamma * next_v - values[i];
        acc = delta + gamma * lambda * acc;
        adv[i] = acc;
    }
    adv
}

/// Normalizes advantages to zero mean / unit variance in place (the
/// "per-batch normalization of advantages" adopted from the DPPO paper).
pub fn normalize_advantages(adv: &mut [f32]) {
    if adv.len() < 2 {
        return;
    }
    let n = adv.len() as f32;
    let mean = adv.iter().sum::<f32>() / n;
    let var = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    for a in adv.iter_mut() {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn returns_known_values() {
        // r = [1, 1, 1], γ = 0.5, bootstrap 0: G = [1.75, 1.5, 1].
        let g = discounted_returns(&[1.0, 1.0, 1.0], 0.5, 0.0);
        assert_eq!(g, vec![1.75, 1.5, 1.0]);
    }

    #[test]
    fn bootstrap_propagates() {
        let g = discounted_returns(&[0.0, 0.0], 0.9, 10.0);
        assert!((g[1] - 9.0).abs() < 1e-6);
        assert!((g[0] - 8.1).abs() < 1e-6);
    }

    #[test]
    fn gae_lambda_one_is_return_minus_value() {
        let rewards = [0.3, -0.1, 0.7, 0.2];
        let values = [0.5, 0.2, -0.3, 0.4];
        let v_last = 0.25;
        let gamma = 0.93;
        let adv = gae_advantages(&rewards, &values, gamma, 1.0, v_last);
        let rets = discounted_returns(&rewards, gamma, v_last);
        for i in 0..rewards.len() {
            assert!((adv[i] - (rets[i] - values[i])).abs() < 1e-5, "index {i}");
        }
    }

    #[test]
    fn gae_lambda_zero_is_td_error() {
        let rewards = [1.0, 2.0];
        let values = [0.5, 1.5];
        let adv = gae_advantages(&rewards, &values, 0.9, 0.0, 3.0);
        assert!((adv[0] - (1.0 + 0.9 * 1.5 - 0.5)).abs() < 1e-6);
        assert!((adv[1] - (2.0 + 0.9 * 3.0 - 1.5)).abs() < 1e-6);
    }

    #[test]
    fn normalize_produces_zero_mean_unit_std() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0, 10.0];
        normalize_advantages(&mut adv);
        let mean: f32 = adv.iter().sum::<f32>() / adv.len() as f32;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / adv.len() as f32;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_handles_degenerate_input() {
        let mut single = vec![5.0];
        normalize_advantages(&mut single);
        assert_eq!(single, vec![5.0]);
        let mut constant = vec![2.0, 2.0, 2.0];
        normalize_advantages(&mut constant);
        assert!(constant.iter().all(|a| a.abs() < 1e-3));
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(discounted_returns(&[], 0.9, 1.0).is_empty());
        assert!(gae_advantages(&[], &[], 0.9, 0.95, 0.0).is_empty());
    }
}
