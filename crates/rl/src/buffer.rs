//! The replay buffer `D` of Algorithm 1 (line 1): per-episode experience
//! storage, cleared at the start of each episode and minibatch-sampled during
//! the exploitation phase.

use rand::seq::SliceRandom;
use rand::Rng;

/// One stored transition `[s_t, u_t, v_t, r_t]` plus the quantities PPO
/// needs at update time.
#[derive(Clone, Debug)]
pub struct Transition {
    /// Encoded state, flat `[C·G·G]`.
    pub state: Vec<f32>,
    /// Per-worker move indices.
    pub moves: Vec<usize>,
    /// Per-worker charge decisions (0/1).
    pub charges: Vec<usize>,
    /// Per-worker move-validity mask flattened to `[W * NUM_MOVES]`
    /// (all-true when the policy samples unmasked).
    pub move_mask: Vec<bool>,
    /// Per-worker charge-validity mask flattened to `[W * 2]`.
    pub charge_mask: Vec<bool>,
    /// Joint log-probability of the whole action under the behavior policy.
    pub logp: f32,
    /// Total reward `r_t = r^int + r^ext`.
    pub reward: f32,
    /// Value estimate `V(s_t)` at collection time.
    pub value: f32,
}

/// Episode buffer with post-hoc return/advantage columns.
#[derive(Clone, Debug, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
    returns: Vec<f32>,
    advantages: Vec<f32>,
}

impl RolloutBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the buffer (Algorithm 1, line 3).
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.returns.clear();
        self.advantages.clear();
    }

    /// Appends a transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// True if no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The reward column (arena-leased, so per-episode target computation
    /// reuses freelist capacity instead of allocating).
    pub fn rewards(&self) -> Vec<f32> {
        let mut out = vc_nn::arena::take_f32(self.len());
        out.extend(self.transitions.iter().map(|t| t.reward));
        out
    }

    /// The value column (arena-leased like [`Self::rewards`]).
    pub fn values(&self) -> Vec<f32> {
        let mut out = vc_nn::arena::take_f32(self.len());
        out.extend(self.transitions.iter().map(|t| t.value));
        out
    }

    /// Installs the return and advantage columns (must match `len()`).
    pub fn set_targets(&mut self, returns: Vec<f32>, advantages: Vec<f32>) {
        assert_eq!(returns.len(), self.len(), "returns length mismatch");
        assert_eq!(advantages.len(), self.len(), "advantages length mismatch");
        self.returns = returns;
        self.advantages = advantages;
    }

    /// Return target for transition `i`.
    pub fn ret(&self, i: usize) -> f32 {
        self.returns[i]
    }

    /// Advantage for transition `i`.
    pub fn adv(&self, i: usize) -> f32 {
        self.advantages[i]
    }

    /// True once [`Self::set_targets`] has been called for this episode.
    pub fn has_targets(&self) -> bool {
        self.returns.len() == self.len() && !self.is_empty()
    }

    /// Samples a shuffled minibatch of transition indices (without
    /// replacement; the final batch of an epoch may be short).
    pub fn minibatch_indices(&self, batch: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.chunks(batch.max(1)).map(<[usize]>::to_vec).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tr(reward: f32) -> Transition {
        Transition {
            state: vec![0.0; 4],
            moves: vec![0],
            charges: vec![0],
            move_mask: vec![true; 9],
            charge_mask: vec![true; 2],
            logp: -1.0,
            reward,
            value: 0.5,
        }
    }

    #[test]
    fn push_len_clear() {
        let mut b = RolloutBuffer::new();
        assert!(b.is_empty());
        b.push(tr(1.0));
        b.push(tr(2.0));
        assert_eq!(b.len(), 2);
        assert_eq!(b.rewards(), vec![1.0, 2.0]);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn targets_roundtrip() {
        let mut b = RolloutBuffer::new();
        b.push(tr(1.0));
        b.push(tr(0.0));
        assert!(!b.has_targets());
        b.set_targets(vec![3.0, 1.0], vec![0.5, -0.5]);
        assert!(b.has_targets());
        assert_eq!(b.ret(0), 3.0);
        assert_eq!(b.adv(1), -0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_targets_panic() {
        let mut b = RolloutBuffer::new();
        b.push(tr(1.0));
        b.set_targets(vec![1.0, 2.0], vec![0.0, 0.0]);
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let mut b = RolloutBuffer::new();
        for i in 0..10 {
            b.push(tr(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batches = b.minibatch_indices(4, &mut rng);
        assert_eq!(batches.len(), 3); // 4 + 4 + 2
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn minibatch_shuffling_differs_across_seeds() {
        let mut b = RolloutBuffer::new();
        for i in 0..32 {
            b.push(tr(i as f32));
        }
        let a = b.minibatch_indices(8, &mut StdRng::seed_from_u64(1));
        let c = b.minibatch_indices(8, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, c);
    }
}
