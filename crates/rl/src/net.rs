//! The DRL-CEWS actor–critic network (Section V-B).
//!
//! A small CNN — three conv layers, each followed by layer normalization,
//! plus one fully connected layer — encodes the 3-channel spatial state into
//! a feature vector `φ(s)`. On top sit three heads:
//!
//! * a **route-planning head** producing, per worker, a 9-way categorical
//!   over moves (`v_t`);
//! * a **charging head** producing, per worker, a binary charge decision
//!   (`u_t`);
//! * a **value head** producing the scalar state value `V(φ(s))`.
//!
//! The per-worker heads are emitted as `[B, W·A]` and reshaped to `[B·W, A]`,
//! which is a free row-major view.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vc_nn::prelude::*;

/// Static shape of the actor–critic network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Observation grid resolution per axis.
    pub grid: usize,
    /// Observation channels (3 in the paper).
    pub in_channels: usize,
    /// Number of workers `W` (one move + charge head slice each).
    pub num_workers: usize,
    /// Width of the FC feature layer `φ(s)`.
    pub feature_dim: usize,
}

impl NetConfig {
    /// The paper-shaped network for a given scenario.
    pub fn for_scenario(grid: usize, num_workers: usize) -> Self {
        Self { grid, in_channels: 3, num_workers, feature_dim: 128 }
    }
}

/// Number of route-planning choices per worker (re-exported for heads).
pub const MOVES_PER_WORKER: usize = vc_env::action::NUM_MOVES;
/// Charging choices per worker (charge / don't).
pub const CHARGE_CHOICES: usize = 2;

/// Outputs of one forward pass.
pub struct NetOutputs {
    /// Per-worker move logits, `[B·W, 9]`.
    pub move_logits: NodeId,
    /// Per-worker charge logits, `[B·W, 2]`.
    pub charge_logits: NodeId,
    /// State values, `[B, 1]`.
    pub value: NodeId,
    /// Encoded features `φ(s)`, `[B, feature_dim]`.
    pub features: NodeId,
}

/// The actor–critic module. Parameters live in an external [`ParamStore`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActorCritic {
    cfg: NetConfig,
    conv1: Conv2dLayer,
    ln1: LayerNormLayer,
    conv2: Conv2dLayer,
    ln2: LayerNormLayer,
    conv3: Conv2dLayer,
    ln3: LayerNormLayer,
    fc: Linear,
    move_head: Linear,
    charge_head: Linear,
    value_head: Linear,
    /// Spatial size after each conv stage, cached for reshapes.
    dims: [usize; 3],
}

impl ActorCritic {
    /// Builds the network, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: NetConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.grid >= 4, "grid too small for the 3-conv encoder");
        // `grid >= 4` guarantees every stage keeps the kernel inside its
        // padded input, so out_size cannot return None here.
        let stage = |c: &ConvCfg, input: usize, name: &str| {
            c.out_size(input)
                .unwrap_or_else(|| panic!("{name} shrinks grid below kernel (input {input})"))
        };
        let c1 = ConvCfg {
            in_channels: cfg.in_channels,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let d1 = stage(&c1, cfg.grid, "conv1");
        let c2 = ConvCfg { in_channels: 8, out_channels: 16, kernel: 3, stride: 2, padding: 1 };
        let d2 = stage(&c2, d1, "conv2");
        let c3 = ConvCfg { in_channels: 16, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
        let d3 = stage(&c3, d2, "conv3");

        let conv1 = Conv2dLayer::new(store, "ac.conv1", c1, rng);
        let ln1 = LayerNormLayer::new(store, "ac.ln1", 8 * d1 * d1);
        let conv2 = Conv2dLayer::new(store, "ac.conv2", c2, rng);
        let ln2 = LayerNormLayer::new(store, "ac.ln2", 16 * d2 * d2);
        let conv3 = Conv2dLayer::new(store, "ac.conv3", c3, rng);
        let ln3 = LayerNormLayer::new(store, "ac.ln3", 16 * d3 * d3);
        let fc = Linear::new(store, "ac.fc", 16 * d3 * d3, cfg.feature_dim, rng);
        let move_head = Linear::new_head(
            store,
            "ac.move",
            cfg.feature_dim,
            cfg.num_workers * MOVES_PER_WORKER,
            rng,
        );
        let charge_head = Linear::new_head(
            store,
            "ac.charge",
            cfg.feature_dim,
            cfg.num_workers * CHARGE_CHOICES,
            rng,
        );
        let value_head = Linear::new_head(store, "ac.value", cfg.feature_dim, 1, rng);

        Self {
            cfg,
            conv1,
            ln1,
            conv2,
            ln2,
            conv3,
            ln3,
            fc,
            move_head,
            charge_head,
            value_head,
            dims: [d1, d2, d3],
        }
    }

    /// The network's static configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Runs the network on a batch of encoded states.
    ///
    /// `states` must be a leaf/node of shape `[B, C, grid, grid]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, states: NodeId) -> NetOutputs {
        let b = g.shape(states)[0];
        let [d1, d2, d3] = self.dims;

        let x = self.conv1.forward(g, store, states);
        let x = g.reshape(x, &[b, 8 * d1 * d1]);
        let x = self.ln1.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 8, d1, d1]);

        let x = self.conv2.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d2 * d2]);
        let x = self.ln2.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 16, d2, d2]);

        let x = self.conv3.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d3 * d3]);
        let x = self.ln3.forward(g, store, x);
        let x = g.relu(x);

        let features = self.fc.forward(g, store, x);
        let features = g.relu(features);

        let mv = self.move_head.forward(g, store, features);
        let move_logits = g.reshape(mv, &[b * self.cfg.num_workers, MOVES_PER_WORKER]);
        let ch = self.charge_head.forward(g, store, features);
        let charge_logits = g.reshape(ch, &[b * self.cfg.num_workers, CHARGE_CHOICES]);
        let value = self.value_head.forward(g, store, features);

        NetOutputs { move_logits, charge_logits, value, features }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(grid: usize, workers: usize) -> (ParamStore, ActorCritic) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let net = ActorCritic::new(&mut store, NetConfig::for_scenario(grid, workers), &mut rng);
        (store, net)
    }

    #[test]
    fn forward_shapes() {
        let (store, net) = build(16, 2);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::zeros(&[3, 3, 16, 16]));
        let out = net.forward(&mut g, &store, s);
        assert_eq!(g.shape(out.move_logits), &[6, 9]);
        assert_eq!(g.shape(out.charge_logits), &[6, 2]);
        assert_eq!(g.shape(out.value), &[3, 1]);
        assert_eq!(g.shape(out.features), &[3, 128]);
    }

    #[test]
    fn works_on_small_grid_and_many_workers() {
        let (store, net) = build(8, 5);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::zeros(&[1, 3, 8, 8]));
        let out = net.forward(&mut g, &store, s);
        assert_eq!(g.shape(out.move_logits), &[5, 9]);
        assert_eq!(g.shape(out.charge_logits), &[5, 2]);
    }

    #[test]
    fn initial_policy_is_near_uniform() {
        // Head weights are small-scale, so fresh move distributions should be
        // close to uniform — important for exploration at episode 0.
        let (store, net) = build(16, 1);
        let mut g = Graph::new();
        let mut state = Tensor::zeros(&[1, 3, 16, 16]);
        state.data_mut()[40] = 0.7; // arbitrary non-trivial input
        let s = g.leaf(state);
        let out = net.forward(&mut g, &store, s);
        let probs = {
            let sm = g.softmax(out.move_logits);
            g.value(sm).clone()
        };
        for &p in probs.data() {
            assert!((p - 1.0 / 9.0).abs() < 0.05, "initial prob {p} far from uniform");
        }
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let (mut store, net) = build(8, 2);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::ones(&[2, 3, 8, 8]));
        let out = net.forward(&mut g, &store, s);
        // A loss touching all three heads.
        let lm = g.sum_all(out.move_logits);
        let lc = g.sum_all(out.charge_logits);
        let lv = g.sum_all(out.value);
        let t = g.add(lm, lc);
        let loss0 = g.add(t, lv);
        let sq = g.square(loss0);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        let mut zero_grads = Vec::new();
        for id in store.ids() {
            if store.grad(id).l2_norm() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(zero_grads.is_empty(), "no gradient reached: {zero_grads:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (store_a, net_a) = build(8, 1);
        let (store_b, net_b) = build(8, 1);
        let mut ga = Graph::new();
        let sa = ga.leaf(Tensor::ones(&[1, 3, 8, 8]));
        let oa = net_a.forward(&mut ga, &store_a, sa);
        let mut gb = Graph::new();
        let sb = gb.leaf(Tensor::ones(&[1, 3, 8, 8]));
        let ob = net_b.forward(&mut gb, &store_b, sb);
        assert_eq!(ga.value(oa.value), gb.value(ob.value));
    }
}
