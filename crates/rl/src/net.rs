//! The DRL-CEWS actor–critic network (Section V-B).
//!
//! A small CNN — three conv layers, each followed by layer normalization,
//! plus one fully connected layer — encodes the 3-channel spatial state into
//! a feature vector `φ(s)`. On top sit three heads:
//!
//! * a **route-planning head** producing, per worker, a 9-way categorical
//!   over moves (`v_t`);
//! * a **charging head** producing, per worker, a binary charge decision
//!   (`u_t`);
//! * a **value head** producing the scalar state value `V(φ(s))`.
//!
//! The per-worker heads are emitted as `[B, W·A]` and reshaped to `[B·W, A]`,
//! which is a free row-major view.

use rand::Rng;
use serde::{Deserialize, Serialize};
use vc_nn::prelude::*;

/// Static shape of the actor–critic network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Observation grid resolution per axis.
    pub grid: usize,
    /// Observation channels (3 in the paper).
    pub in_channels: usize,
    /// Number of workers `W` (one move + charge head slice each).
    pub num_workers: usize,
    /// Width of the FC feature layer `φ(s)`.
    pub feature_dim: usize,
}

impl NetConfig {
    /// The paper-shaped network for a given scenario.
    pub fn for_scenario(grid: usize, num_workers: usize) -> Self {
        Self { grid, in_channels: 3, num_workers, feature_dim: 128 }
    }
}

/// Number of route-planning choices per worker (re-exported for heads).
pub const MOVES_PER_WORKER: usize = vc_env::action::NUM_MOVES;
/// Charging choices per worker (charge / don't).
pub const CHARGE_CHOICES: usize = 2;

/// Outputs of one forward pass.
pub struct NetOutputs {
    /// Per-worker move logits, `[B·W, 9]`.
    pub move_logits: NodeId,
    /// Per-worker charge logits, `[B·W, 2]`.
    pub charge_logits: NodeId,
    /// State values, `[B, 1]`.
    pub value: NodeId,
    /// Encoded features `φ(s)`, `[B, feature_dim]`.
    pub features: NodeId,
}

/// The actor–critic module. Parameters live in an external [`ParamStore`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ActorCritic {
    cfg: NetConfig,
    conv1: Conv2dLayer,
    ln1: LayerNormLayer,
    conv2: Conv2dLayer,
    ln2: LayerNormLayer,
    conv3: Conv2dLayer,
    ln3: LayerNormLayer,
    fc: Linear,
    move_head: Linear,
    charge_head: Linear,
    value_head: Linear,
    /// Spatial size after each conv stage, cached for reshapes.
    dims: [usize; 3],
}

impl ActorCritic {
    /// Builds the network, registering parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: NetConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.grid >= 4, "grid too small for the 3-conv encoder");
        // `grid >= 4` guarantees every stage keeps the kernel inside its
        // padded input, so out_size cannot return None here.
        let stage = |c: &ConvCfg, input: usize, name: &str| {
            c.out_size(input)
                .unwrap_or_else(|| panic!("{name} shrinks grid below kernel (input {input})"))
        };
        let c1 = ConvCfg {
            in_channels: cfg.in_channels,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let d1 = stage(&c1, cfg.grid, "conv1");
        let c2 = ConvCfg { in_channels: 8, out_channels: 16, kernel: 3, stride: 2, padding: 1 };
        let d2 = stage(&c2, d1, "conv2");
        let c3 = ConvCfg { in_channels: 16, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
        let d3 = stage(&c3, d2, "conv3");

        let conv1 = Conv2dLayer::new(store, "ac.conv1", c1, rng);
        let ln1 = LayerNormLayer::new(store, "ac.ln1", 8 * d1 * d1);
        let conv2 = Conv2dLayer::new(store, "ac.conv2", c2, rng);
        let ln2 = LayerNormLayer::new(store, "ac.ln2", 16 * d2 * d2);
        let conv3 = Conv2dLayer::new(store, "ac.conv3", c3, rng);
        let ln3 = LayerNormLayer::new(store, "ac.ln3", 16 * d3 * d3);
        let fc = Linear::new(store, "ac.fc", 16 * d3 * d3, cfg.feature_dim, rng);
        let move_head = Linear::new_head(
            store,
            "ac.move",
            cfg.feature_dim,
            cfg.num_workers * MOVES_PER_WORKER,
            rng,
        );
        let charge_head = Linear::new_head(
            store,
            "ac.charge",
            cfg.feature_dim,
            cfg.num_workers * CHARGE_CHOICES,
            rng,
        );
        let value_head = Linear::new_head(store, "ac.value", cfg.feature_dim, 1, rng);

        Self {
            cfg,
            conv1,
            ln1,
            conv2,
            ln2,
            conv3,
            ln3,
            fc,
            move_head,
            charge_head,
            value_head,
            dims: [d1, d2, d3],
        }
    }

    /// The network's static configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Runs the network on a batch of encoded states.
    ///
    /// `states` must be a leaf/node of shape `[B, C, grid, grid]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, states: NodeId) -> NetOutputs {
        let b = g.shape(states)[0];
        let [d1, d2, d3] = self.dims;

        let x = self.conv1.forward(g, store, states);
        let x = g.reshape(x, &[b, 8 * d1 * d1]);
        let x = self.ln1.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 8, d1, d1]);

        let x = self.conv2.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d2 * d2]);
        let x = self.ln2.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 16, d2, d2]);

        let x = self.conv3.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d3 * d3]);
        let x = self.ln3.forward(g, store, x);
        let x = g.relu(x);

        let features = self.fc.forward(g, store, x);
        let features = g.relu(features);

        let mv = self.move_head.forward(g, store, features);
        let move_logits = g.reshape(mv, &[b * self.cfg.num_workers, MOVES_PER_WORKER]);
        let ch = self.charge_head.forward(g, store, features);
        let charge_logits = g.reshape(ch, &[b * self.cfg.num_workers, CHARGE_CHOICES]);
        let value = self.value_head.forward(g, store, features);

        NetOutputs { move_logits, charge_logits, value, features }
    }
}

/// The fleet-scale actor–critic: the same conv trunk as [`ActorCritic`],
/// but with action heads **factored over workers**.
///
/// [`ActorCritic`] enumerates the joint action space in its head widths
/// (`F → W·9` and `F → W·2` matrices), so parameters and head FLOPs grow
/// linearly with the fleet and a 1000-worker head is a 128×9000 GEMM per
/// batch row. Here each worker reuses **shared** `F → 9` / `F → 2` heads
/// applied to `features[e] + worker_embed[w]` — one `[B·W, F]` GEMM whose
/// weight cost is independent of `W`; worker identity enters through a
/// learned `[W, F]` embedding table instead of dedicated head columns.
///
/// Outputs have the exact layout of [`ActorCritic`] (`[B·W, 9]` /
/// `[B·W, 2]` in env-major worker-minor row order), so the sampling,
/// buffer and PPO machinery work unchanged. Parameters register under the
/// `fleet.` prefix — disjoint from `ac.`, so both nets can share a
/// checkpointed [`ParamStore`] without name collisions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FleetActorCritic {
    cfg: NetConfig,
    conv1: Conv2dLayer,
    ln1: LayerNormLayer,
    conv2: Conv2dLayer,
    ln2: LayerNormLayer,
    conv3: Conv2dLayer,
    ln3: LayerNormLayer,
    fc: Linear,
    /// Learned per-worker identity embedding, `[W, feature_dim]`.
    worker_embed: ParamId,
    move_head: Linear,
    charge_head: Linear,
    value_head: Linear,
    /// Spatial size after each conv stage, cached for reshapes.
    dims: [usize; 3],
}

impl FleetActorCritic {
    /// Builds the network, registering parameters in `store` under the
    /// `fleet.` name prefix.
    pub fn new(store: &mut ParamStore, cfg: NetConfig, rng: &mut impl Rng) -> Self {
        assert!(cfg.grid >= 4, "grid too small for the 3-conv encoder");
        let stage = |c: &ConvCfg, input: usize, name: &str| {
            c.out_size(input)
                .unwrap_or_else(|| panic!("{name} shrinks grid below kernel (input {input})"))
        };
        let c1 = ConvCfg {
            in_channels: cfg.in_channels,
            out_channels: 8,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let d1 = stage(&c1, cfg.grid, "conv1");
        let c2 = ConvCfg { in_channels: 8, out_channels: 16, kernel: 3, stride: 2, padding: 1 };
        let d2 = stage(&c2, d1, "conv2");
        let c3 = ConvCfg { in_channels: 16, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
        let d3 = stage(&c3, d2, "conv3");

        let conv1 = Conv2dLayer::new(store, "fleet.conv1", c1, rng);
        let ln1 = LayerNormLayer::new(store, "fleet.ln1", 8 * d1 * d1);
        let conv2 = Conv2dLayer::new(store, "fleet.conv2", c2, rng);
        let ln2 = LayerNormLayer::new(store, "fleet.ln2", 16 * d2 * d2);
        let conv3 = Conv2dLayer::new(store, "fleet.conv3", c3, rng);
        let ln3 = LayerNormLayer::new(store, "fleet.ln3", 16 * d3 * d3);
        let fc = Linear::new(store, "fleet.fc", 16 * d3 * d3, cfg.feature_dim, rng);
        // Small-scale init (like the policy heads): worker identities start
        // nearly interchangeable, so the initial policy stays near-uniform.
        let embed = vc_nn::init::policy_head(&[cfg.num_workers, cfg.feature_dim], rng);
        let worker_embed = store.add("fleet.worker_embed", embed);
        let move_head =
            Linear::new_head(store, "fleet.move", cfg.feature_dim, MOVES_PER_WORKER, rng);
        let charge_head =
            Linear::new_head(store, "fleet.charge", cfg.feature_dim, CHARGE_CHOICES, rng);
        let value_head = Linear::new_head(store, "fleet.value", cfg.feature_dim, 1, rng);

        Self {
            cfg,
            conv1,
            ln1,
            conv2,
            ln2,
            conv3,
            ln3,
            fc,
            worker_embed,
            move_head,
            charge_head,
            value_head,
            dims: [d1, d2, d3],
        }
    }

    /// The network's static configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Runs the network on a batch of encoded states.
    ///
    /// `states` must be a leaf/node of shape `[B, C, grid, grid]`; outputs
    /// use the same `[B·W, A]` row layout as [`ActorCritic::forward`].
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, states: NodeId) -> NetOutputs {
        let b = g.shape(states)[0];
        let w = self.cfg.num_workers;
        let [d1, d2, d3] = self.dims;

        let x = self.conv1.forward(g, store, states);
        let x = g.reshape(x, &[b, 8 * d1 * d1]);
        let x = self.ln1.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 8, d1, d1]);

        let x = self.conv2.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d2 * d2]);
        let x = self.ln2.forward(g, store, x);
        let x = g.relu(x);
        let x = g.reshape(x, &[b, 16, d2, d2]);

        let x = self.conv3.forward(g, store, x);
        let x = g.reshape(x, &[b, 16 * d3 * d3]);
        let x = self.ln3.forward(g, store, x);
        let x = g.relu(x);

        let features = self.fc.forward(g, store, x);
        let features = g.relu(features);

        // Factor over workers: broadcast each env's features to its W rows
        // and add the per-worker embedding — `[B·W, F]` in env-major
        // worker-minor order, matching the joint net's row layout.
        let mut feat_idx = vc_nn::arena::take_usize(b * w);
        let mut embed_idx = vc_nn::arena::take_usize(b * w);
        for e in 0..b {
            for wi in 0..w {
                feat_idx.push(e);
                embed_idx.push(wi);
            }
        }
        let feat_rep = g.gather_rows(features, feat_idx);
        let table = g.param(store, self.worker_embed);
        let embed_rep = g.gather_rows(table, embed_idx);
        let joined = g.add(feat_rep, embed_rep);
        let joined = g.relu(joined);

        let move_logits = self.move_head.forward(g, store, joined);
        let charge_logits = self.charge_head.forward(g, store, joined);
        let value = self.value_head.forward(g, store, features);

        NetOutputs { move_logits, charge_logits, value, features }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(grid: usize, workers: usize) -> (ParamStore, ActorCritic) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let net = ActorCritic::new(&mut store, NetConfig::for_scenario(grid, workers), &mut rng);
        (store, net)
    }

    #[test]
    fn forward_shapes() {
        let (store, net) = build(16, 2);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::zeros(&[3, 3, 16, 16]));
        let out = net.forward(&mut g, &store, s);
        assert_eq!(g.shape(out.move_logits), &[6, 9]);
        assert_eq!(g.shape(out.charge_logits), &[6, 2]);
        assert_eq!(g.shape(out.value), &[3, 1]);
        assert_eq!(g.shape(out.features), &[3, 128]);
    }

    #[test]
    fn works_on_small_grid_and_many_workers() {
        let (store, net) = build(8, 5);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::zeros(&[1, 3, 8, 8]));
        let out = net.forward(&mut g, &store, s);
        assert_eq!(g.shape(out.move_logits), &[5, 9]);
        assert_eq!(g.shape(out.charge_logits), &[5, 2]);
    }

    #[test]
    fn initial_policy_is_near_uniform() {
        // Head weights are small-scale, so fresh move distributions should be
        // close to uniform — important for exploration at episode 0.
        let (store, net) = build(16, 1);
        let mut g = Graph::new();
        let mut state = Tensor::zeros(&[1, 3, 16, 16]);
        state.data_mut()[40] = 0.7; // arbitrary non-trivial input
        let s = g.leaf(state);
        let out = net.forward(&mut g, &store, s);
        let probs = {
            let sm = g.softmax(out.move_logits);
            g.value(sm).clone()
        };
        for &p in probs.data() {
            assert!((p - 1.0 / 9.0).abs() < 0.05, "initial prob {p} far from uniform");
        }
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let (mut store, net) = build(8, 2);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::ones(&[2, 3, 8, 8]));
        let out = net.forward(&mut g, &store, s);
        // A loss touching all three heads.
        let lm = g.sum_all(out.move_logits);
        let lc = g.sum_all(out.charge_logits);
        let lv = g.sum_all(out.value);
        let t = g.add(lm, lc);
        let loss0 = g.add(t, lv);
        let sq = g.square(loss0);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        let mut zero_grads = Vec::new();
        for id in store.ids() {
            if store.grad(id).l2_norm() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(zero_grads.is_empty(), "no gradient reached: {zero_grads:?}");
    }

    fn build_fleet(grid: usize, workers: usize) -> (ParamStore, FleetActorCritic) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let net =
            FleetActorCritic::new(&mut store, NetConfig::for_scenario(grid, workers), &mut rng);
        (store, net)
    }

    #[test]
    fn fleet_forward_shapes_match_joint_net_layout() {
        let (store, net) = build_fleet(16, 7);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::zeros(&[3, 3, 16, 16]));
        let out = net.forward(&mut g, &store, s);
        assert_eq!(g.shape(out.move_logits), &[21, 9]);
        assert_eq!(g.shape(out.charge_logits), &[21, 2]);
        assert_eq!(g.shape(out.value), &[3, 1]);
        assert_eq!(g.shape(out.features), &[3, 128]);
    }

    #[test]
    fn fleet_head_parameters_do_not_grow_with_fleet_size() {
        // The whole point of factoring: the joint net's move head is
        // [F, W·9] while the fleet net's stays [F, 9]; only the [W, F]
        // embedding scales, and linearly rather than through every head.
        let count = |w: usize| {
            let (store, _) = build_fleet(16, w);
            store.num_scalars()
        };
        let (small, large) = (count(10), count(1000));
        let embed_growth = (1000 - 10) * 128;
        assert_eq!(
            large - small,
            embed_growth,
            "fleet-size scaling must be embedding-only ({embed_growth} params)"
        );
    }

    #[test]
    fn fleet_initial_policy_is_near_uniform() {
        let (store, net) = build_fleet(16, 4);
        let mut g = Graph::new();
        let mut state = Tensor::zeros(&[1, 3, 16, 16]);
        state.data_mut()[40] = 0.7;
        let s = g.leaf(state);
        let out = net.forward(&mut g, &store, s);
        let probs = {
            let sm = g.softmax(out.move_logits);
            g.value(sm).clone()
        };
        for &p in probs.data() {
            assert!((p - 1.0 / 9.0).abs() < 0.05, "initial prob {p} far from uniform");
        }
    }

    #[test]
    fn fleet_gradients_reach_every_parameter() {
        let (mut store, net) = build_fleet(8, 3);
        let mut g = Graph::new();
        let s = g.leaf(Tensor::ones(&[2, 3, 8, 8]));
        let out = net.forward(&mut g, &store, s);
        let lm = g.sum_all(out.move_logits);
        let lc = g.sum_all(out.charge_logits);
        let lv = g.sum_all(out.value);
        let t = g.add(lm, lc);
        let loss0 = g.add(t, lv);
        let sq = g.square(loss0);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        let mut zero_grads = Vec::new();
        for id in store.ids() {
            if store.grad(id).l2_norm() == 0.0 {
                zero_grads.push(store.name(id).to_string());
            }
        }
        assert!(zero_grads.is_empty(), "no gradient reached: {zero_grads:?}");
    }

    #[test]
    fn fleet_and_joint_nets_share_a_store_without_collisions() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = NetConfig::for_scenario(16, 2);
        let _joint = ActorCritic::new(&mut store, cfg, &mut rng);
        let _fleet = FleetActorCritic::new(&mut store, cfg, &mut rng);
        let names: Vec<String> = store.ids().map(|id| store.name(id).to_string()).collect();
        let unique: std::collections::BTreeSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "param name collision: {names:?}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (store_a, net_a) = build(8, 1);
        let (store_b, net_b) = build(8, 1);
        let mut ga = Graph::new();
        let sa = ga.leaf(Tensor::ones(&[1, 3, 8, 8]));
        let oa = net_a.forward(&mut ga, &store_a, sa);
        let mut gb = Graph::new();
        let sb = gb.leaf(Tensor::ones(&[1, 3, 8, 8]));
        let ob = net_b.forward(&mut gb, &store_b, sb);
        assert_eq!(ga.value(oa.value), gb.value(ob.value));
    }
}
