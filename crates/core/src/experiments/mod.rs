//! Regeneration of every table and figure of Section VII.
//!
//! Each submodule reproduces one artifact of the paper's evaluation; the
//! `vc-experiments` binary dispatches to them. All experiments are
//! parameterized by a [`Scale`], because the original evaluation trained
//! thousands of GPU episodes per point — the **shape** of each result (who
//! wins, by roughly what factor, where crossovers fall) is the reproduction
//! target, not the absolute wall-clock-bound numbers.

pub mod ablations;
pub mod fig2c;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig9;
pub mod sweeps;
pub mod table2;

use serde::{Deserialize, Serialize};
use vc_env::prelude::*;

/// How much compute an experiment run spends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Training episodes per DRL run.
    pub train_episodes: usize,
    /// Evaluation episodes per measurement.
    pub eval_episodes: usize,
    /// Episode horizon `T`.
    pub horizon: usize,
    /// Default PoI count (sweeps override it).
    pub num_pois: usize,
    /// Sweep points per axis (full = the paper's 5).
    pub sweep_points: usize,
    /// Default number of employee threads for trained methods.
    pub employees: usize,
    /// PPO update rounds per episode.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
}

impl Scale {
    /// Seconds-scale runs for unit tests.
    pub fn smoke() -> Self {
        Self {
            train_episodes: 2,
            eval_episodes: 1,
            horizon: 10,
            num_pois: 30,
            sweep_points: 2,
            employees: 1,
            epochs: 1,
            minibatch: 16,
        }
    }

    /// Minutes-scale runs that show the qualitative shape (the setting used
    /// for the recorded EXPERIMENTS.md results on a 1-core container).
    pub fn quick() -> Self {
        Self {
            train_episodes: 400,
            eval_episodes: 2,
            horizon: 200,
            num_pois: 100,
            sweep_points: 2,
            employees: 2,
            epochs: 6,
            minibatch: 128,
        }
    }

    /// Paper-scale runs (hours/days on this substrate; matches Section VII).
    pub fn full() -> Self {
        Self {
            train_episodes: 2500,
            eval_episodes: 5,
            horizon: 400,
            num_pois: 200,
            sweep_points: 5,
            employees: 8,
            epochs: 4,
            minibatch: 250,
        }
    }

    /// Parses a scale name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "quick" => Some(Self::quick()),
            "full" => Some(Self::full()),
            _ => None,
        }
    }

    /// The base environment this scale runs on (paper map, scaled horizon /
    /// PoI count).
    pub fn base_env(&self) -> EnvConfig {
        let mut cfg = EnvConfig::paper_default();
        cfg.horizon = self.horizon;
        cfg.num_pois = self.num_pois;
        cfg
    }

    /// Applies this scale's training knobs to a trainer config.
    pub fn tune(&self, mut cfg: crate::trainer::TrainerConfig) -> crate::trainer::TrainerConfig {
        cfg.num_employees = self.employees;
        cfg.ppo.epochs = self.epochs;
        cfg.ppo.minibatch = self.minibatch;
        cfg
    }

    /// Picks `n` evenly spread values from a full sweep axis, always
    /// including the endpoints.
    pub fn pick<T: Copy>(&self, axis: &[T]) -> Vec<T> {
        let n = self.sweep_points.clamp(2, axis.len());
        if n >= axis.len() {
            return axis.to_vec();
        }
        (0..n).map(|i| axis[i * (axis.len() - 1) / (n - 1)]).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn scale_names_roundtrip() {
        for name in ["smoke", "quick", "full"] {
            assert!(Scale::from_name(name).is_some());
        }
        assert!(Scale::from_name("huge").is_none());
    }

    #[test]
    fn pick_includes_endpoints() {
        let s = Scale { sweep_points: 3, ..Scale::smoke() };
        let axis = [100, 200, 300, 400, 500];
        let picked = s.pick(&axis);
        assert_eq!(picked.first(), Some(&100));
        assert_eq!(picked.last(), Some(&500));
        assert_eq!(picked.len(), 3);
        let all = Scale { sweep_points: 9, ..Scale::smoke() }.pick(&axis);
        assert_eq!(all, axis.to_vec());
    }

    #[test]
    fn base_env_is_valid() {
        for s in [Scale::smoke(), Scale::quick(), Scale::full()] {
            assert!(s.base_env().validate().is_ok());
        }
    }

    #[test]
    fn tune_applies_training_knobs() {
        let s = Scale::smoke();
        let cfg = s.tune(crate::trainer::TrainerConfig::drl_cews(s.base_env()));
        assert_eq!(cfg.num_employees, s.employees);
        assert_eq!(cfg.ppo.epochs, s.epochs);
        assert_eq!(cfg.ppo.minibatch, s.minibatch);
    }

    #[test]
    fn full_scale_matches_paper_settings() {
        let f = Scale::full();
        assert_eq!(f.employees, 8);
        assert_eq!(f.minibatch, 250);
        assert_eq!(f.train_episodes, 2500);
        assert_eq!(f.sweep_points, 5);
    }
}
