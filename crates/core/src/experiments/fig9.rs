//! Fig. 9: curiosity-value heat maps over training, DRL-CEWS vs DPPO
//! (W = 1, P = 300).
//!
//! At a handful of training checkpoints we roll the current policy through
//! an evaluation episode and deposit the spatial curiosity model's
//! per-location prediction error at every visited cell. The paper's
//! observations to reproduce: brightness (curiosity value) fades as training
//! progresses, and DRL-CEWS — whose policy actually *consumes* the intrinsic
//! reward — covers a larger area than DPPO.
//!
//! For the DPPO row the curiosity model is attached *passively* (η = 0): it
//! trains on DPPO's transitions and can be visualized, but contributes
//! nothing to the reward, exactly mirroring the paper's contrast.

use super::Scale;
use crate::report::{f2, Table};
use crate::trainer::{CuriosityChoice, Trainer, TrainerConfig, TrainerError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_rl::prelude::*;

/// One heat-map snapshot.
pub struct Snapshot {
    /// Training episode the snapshot was taken at.
    pub episode: usize,
    /// Curiosity prediction-error heat map over the space.
    pub heatmap: HeatMap,
}

/// Rolls the trainer's current policy for one episode, depositing curiosity
/// prediction errors at visited locations.
/// # Panics
///
/// Panics if the trainer was not built with a spatial curiosity model; both
/// [`configs`] entries attach one (the DPPO row passively, with η = 0).
pub fn snapshot(trainer: &Trainer, env_cfg: &EnvConfig, episode: usize, seed: u64) -> Snapshot {
    let Some(spatial) = trainer.curiosity().as_spatial() else {
        panic!("fig9 requires a spatial curiosity model");
    };
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    env.reset_with_seed(seed);
    let mut heatmap = HeatMap::new(env_cfg.grid);
    let mut rng = StdRng::seed_from_u64(seed);
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: false };
    while !env.done() {
        let sampled = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
        let before: Vec<Point> = env.workers().iter().map(|w| w.pos).collect();
        env.step(&sampled.actions);
        for (wi, pos) in before.iter().enumerate() {
            let next = env.workers()[wi].pos;
            let err = spatial.prediction_error(wi, pos, sampled.moves[wi], &next);
            heatmap.deposit(env_cfg, pos, err);
        }
    }
    Snapshot { episode, heatmap }
}

/// Trains one method and collects heat maps at evenly spaced checkpoints.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn heatmaps_over_training(
    scale: &Scale,
    label: &str,
    cfg: TrainerConfig,
    checkpoints: usize,
) -> Result<Vec<(String, Snapshot)>, TrainerError> {
    let env_cfg = cfg.env.clone();
    let mut trainer = Trainer::new(cfg)?;
    let per = (scale.train_episodes / checkpoints.max(1)).max(1);
    let mut out = Vec::new();
    out.push((label.to_string(), snapshot(&trainer, &env_cfg, 0, 555)));
    for c in 1..=checkpoints {
        trainer.train(per)?;
        out.push((label.to_string(), snapshot(&trainer, &env_cfg, c * per, 555)));
    }
    Ok(out)
}

/// The two compared configurations (shared env: W = 1, P = 300).
pub fn configs(scale: &Scale) -> Vec<(&'static str, TrainerConfig)> {
    let mut env = scale.base_env();
    env.num_workers = 1;
    env.num_pois = 300;
    let cews = scale.tune(TrainerConfig::drl_cews(env.clone()));
    let mut dppo = scale.tune(TrainerConfig::dppo(env));
    // Passive curiosity: trained and visualizable, but η = 0 keeps it out of
    // DPPO's reward.
    dppo.curiosity = CuriosityChoice::Spatial {
        feature: vc_curiosity::features::FeatureKind::Embedding,
        structure: vc_curiosity::spatial::StructureKind::Shared,
        eta: 0.0,
    };
    vec![("drl-cews", cews), ("dppo", dppo)]
}

/// Regenerates Fig. 9: prints the heat maps and returns the summary table
/// (total curiosity and visited area per checkpoint).
pub fn run(scale: &Scale) -> Result<(Table, Vec<(String, Snapshot)>), TrainerError> {
    let mut table = Table::new(
        "Fig. 9: curiosity value at visited locations over training (W=1, P=300)",
        &["method", "episode", "mean curiosity", "visited cells"],
    );
    let mut all = Vec::new();
    for (label, cfg) in configs(scale) {
        let snaps = heatmaps_over_training(scale, label, cfg, 4)?;
        for (l, s) in snaps {
            let visited = s.heatmap.visited_cells();
            let mean = if visited > 0 { s.heatmap.total() / visited as f32 } else { 0.0 };
            table.push_row(vec![l.clone(), s.episode.to_string(), f2(mean), visited.to_string()]);
            all.push((l, s));
        }
    }
    Ok((table, all))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_visits_cells_and_deposits_curiosity() {
        let scale = Scale::smoke();
        let (_, cfg) = configs(&scale).into_iter().next().unwrap();
        let env_cfg = cfg.env.clone();
        let trainer = Trainer::new(cfg).unwrap();
        let s = snapshot(&trainer, &env_cfg, 0, 1);
        assert!(s.heatmap.visited_cells() > 0);
        assert!(s.heatmap.total() > 0.0, "fresh model must register curiosity");
    }

    #[test]
    fn dppo_config_has_passive_curiosity() {
        let scale = Scale::smoke();
        let cfgs = configs(&scale);
        let (_, dppo) = &cfgs[1];
        match dppo.curiosity {
            CuriosityChoice::Spatial { eta, .. } => assert_eq!(eta, 0.0),
            _ => panic!("dppo fig9 config must carry a passive spatial model"),
        }
        assert_eq!(dppo.env.num_workers, 1);
    }
}
