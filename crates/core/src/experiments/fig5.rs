//! Fig. 5: dense vs sparse extrinsic reward, with and without curiosity
//! (W = 2, P = 300).
//!
//! The paper's findings: *sparse + curiosity* (DRL-CEWS) is best on all
//! three metrics; *sparse only* is clearly worst (sparse rewards alone are
//! too little signal); curiosity accelerates early training under dense
//! rewards but converges to roughly the same place.

use super::Scale;
use crate::report::{f3, Table};
use crate::trainer::{CuriosityChoice, Trainer, TrainerConfig, TrainerError};
use vc_env::reward::RewardMode;
use vc_rl::chief::EpisodeStats;

/// The four compared mechanisms, in paper order.
pub fn mechanisms() -> Vec<(&'static str, RewardMode, CuriosityChoice)> {
    vec![
        ("sparse+curiosity", RewardMode::Sparse, CuriosityChoice::paper_spatial()),
        ("sparse-only", RewardMode::Sparse, CuriosityChoice::None),
        ("dense+curiosity", RewardMode::Dense, CuriosityChoice::paper_spatial()),
        ("dense-only", RewardMode::Dense, CuriosityChoice::None),
    ]
}

/// Trains one mechanism, returning checkpointed training-curve stats.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn train_mechanism(
    scale: &Scale,
    reward: RewardMode,
    curiosity: CuriosityChoice,
    checkpoints: usize,
) -> Result<Vec<(usize, EpisodeStats)>, TrainerError> {
    let mut env = scale.base_env();
    env.num_workers = 2;
    env.num_pois = 300; // the paper's Fig. 5 setting
    let mut cfg = scale.tune(TrainerConfig::drl_cews(env));
    cfg.reward_mode = reward;
    cfg.curiosity = curiosity;
    let mut trainer = Trainer::new(cfg)?;
    let per = (scale.train_episodes / checkpoints.max(1)).max(1);
    let mut out = Vec::new();
    for c in 1..=checkpoints {
        let stats = trainer.train(per)?;
        let tail = &stats[stats.len().saturating_sub(3)..];
        out.push((c * per, EpisodeStats::mean(tail)));
    }
    Ok(out)
}

/// Regenerates Fig. 5 at the given scale.
pub fn run(scale: &Scale) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        "Fig. 5: reward mechanism x curiosity (training curves, W=2 P=300)",
        &["mechanism", "episode", "kappa", "xi", "rho"],
    );
    for (label, reward, curiosity) in mechanisms() {
        for (ep, s) in train_mechanism(scale, reward, curiosity, 3)? {
            table.push_row(vec![
                label.to_string(),
                ep.to_string(),
                f3(s.kappa),
                f3(s.xi),
                f3(s.rho),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn four_mechanisms_cover_the_grid() {
        let m = mechanisms();
        assert_eq!(m.len(), 4);
        let sparse = m.iter().filter(|x| x.1 == RewardMode::Sparse).count();
        assert_eq!(sparse, 2);
    }

    #[test]
    fn smoke_mechanism_runs() {
        let curve =
            train_mechanism(&Scale::smoke(), RewardMode::Sparse, CuriosityChoice::None, 2).unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].1.int_reward, 0.0);
    }
}
