//! Figs. 6–8: κ, ξ and ρ for all five algorithms across the four scenario
//! sweeps — number of PoIs (a), number of workers (b), energy budget (c)
//! and number of charging stations (d).
//!
//! One run of a sweep point trains the two trainer-based methods
//! (DRL-CEWS, DPPO) and Edics on the scenario, then evaluates all five
//! algorithms on identical held-out scenario seeds. Figs. 6, 7 and 8 are
//! the κ, ξ and ρ columns of the same measurement.

use super::Scale;
use crate::eval::{evaluate, PolicyScheduler};
use crate::report::{f3, Table};
use crate::trainer::{Trainer, TrainerConfig, TrainerError};
use vc_baselines::prelude::*;
use vc_env::prelude::*;

/// The four sweep axes of Figs. 6–8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// Fig. x(a): P ∈ {100..500}, W = 2.
    Pois,
    /// Fig. x(b): W ∈ {1..25}, P = 300.
    Workers,
    /// Fig. x(c): initial energy budget b₀.
    Budget,
    /// Fig. x(d): number of charging stations ∈ {2..10}.
    Stations,
}

impl Axis {
    /// All axes in paper order.
    pub const ALL: [Axis; 4] = [Axis::Pois, Axis::Workers, Axis::Budget, Axis::Stations];

    /// The full value axis from the paper.
    pub fn values(self) -> Vec<usize> {
        match self {
            Axis::Pois => vec![100, 200, 300, 400, 500],
            Axis::Workers => vec![1, 2, 5, 10, 25],
            Axis::Budget => vec![20, 40, 60, 80, 100],
            Axis::Stations => vec![2, 4, 6, 8, 10],
        }
    }

    /// Applies one sweep value to a base environment.
    pub fn apply(self, env: &mut EnvConfig, value: usize) {
        match self {
            Axis::Pois => {
                env.num_pois = value;
                env.num_workers = 2;
            }
            Axis::Workers => {
                env.num_workers = value;
                env.num_pois = 300;
            }
            Axis::Budget => {
                env.initial_energy = value as f32;
            }
            Axis::Stations => {
                env.num_stations = value;
            }
        }
    }

    /// Axis label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Axis::Pois => "pois",
            Axis::Workers => "workers",
            Axis::Budget => "budget",
            Axis::Stations => "stations",
        }
    }

    /// Parses an axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Axis::ALL.iter().copied().find(|a| a.label() == name)
    }
}

/// One algorithm's metrics at one sweep value.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Algorithm name.
    pub algo: &'static str,
    /// Sweep-axis value (worker/PoI/obstacle/station count).
    pub value: usize,
    /// Mean evaluation metrics at this point.
    pub metrics: Metrics,
}

/// Runs all five algorithms on one scenario, training where needed.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn run_point(
    scale: &Scale,
    env: &EnvConfig,
    value: usize,
) -> Result<Vec<PointResult>, TrainerError> {
    let mut results = Vec::with_capacity(5);

    // DRL-CEWS.
    let mut cews = Trainer::new(scale.tune(TrainerConfig::drl_cews(env.clone())))?;
    cews.train(scale.train_episodes)?;
    let mut cews_policy = PolicyScheduler::from_trainer(&cews, "drl-cews");
    results.push(PointResult {
        algo: "drl-cews",
        value,
        metrics: evaluate(&mut cews_policy, env, scale.eval_episodes, 7),
    });
    drop(cews);

    // DPPO.
    let mut dppo_cfg = scale.tune(TrainerConfig::dppo(env.clone()));
    // Keep the paper's batch-250 only at full scale; otherwise follow scale.
    dppo_cfg.ppo.minibatch = scale.minibatch;
    let mut dppo = Trainer::new(dppo_cfg)?;
    dppo.train(scale.train_episodes)?;
    let mut dppo_policy = PolicyScheduler::from_trainer(&dppo, "dppo");
    results.push(PointResult {
        algo: "dppo",
        value,
        metrics: evaluate(&mut dppo_policy, env, scale.eval_episodes, 7),
    });
    drop(dppo);

    // Edics (multi-agent, trains on its own environment clone).
    let mut edics = Edics::new(
        env,
        EdicsConfig {
            ppo: vc_rl::ppo::PpoConfig {
                epochs: scale.epochs,
                minibatch: scale.minibatch,
                ..Default::default()
            },
            seed: 9,
        },
    );
    // Edics trains W independent agents, so its per-episode cost scales
    // with W²; hold its wall-clock budget roughly constant across the
    // worker sweep by dividing the episode budget by W.
    let edics_episodes = (scale.train_episodes / env.num_workers.max(1)).max(30);
    let mut edics_env = CrowdsensingEnv::new(env.clone());
    for _ in 0..edics_episodes {
        edics.train_episode(&mut edics_env);
    }
    results.push(PointResult {
        algo: "edics",
        value,
        metrics: evaluate(&mut edics, env, scale.eval_episodes, 7),
    });

    // D&C and Greedy need no training.
    results.push(PointResult {
        algo: "d&c",
        value,
        metrics: evaluate(&mut DncScheduler::default(), env, scale.eval_episodes, 7),
    });
    results.push(PointResult {
        algo: "greedy",
        value,
        metrics: evaluate(&mut GreedyScheduler, env, scale.eval_episodes, 7),
    });
    Ok(results)
}

/// Regenerates one sweep (one panel each of Figs. 6, 7 and 8).
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn run(scale: &Scale, axis: Axis) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        format!(
            "Figs. 6-8 ({}): kappa (Fig.6) / xi (Fig.7) / rho (Fig.8) vs {}",
            axis.label(),
            axis.label()
        ),
        &[axis.label(), "algo", "kappa", "xi", "rho"],
    );
    for value in scale.pick(&axis.values()) {
        let mut env = scale.base_env();
        axis.apply(&mut env, value);
        for r in run_point(scale, &env, value)? {
            table.push_row(vec![
                value.to_string(),
                r.algo.to_string(),
                f3(r.metrics.data_collection_ratio),
                f3(r.metrics.remaining_data_ratio),
                f3(r.metrics.energy_efficiency),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn axes_roundtrip_names() {
        for a in Axis::ALL {
            assert_eq!(Axis::from_name(a.label()), Some(a));
        }
        assert_eq!(Axis::from_name("bogus"), None);
    }

    #[test]
    fn axis_values_match_paper_ranges() {
        assert_eq!(Axis::Pois.values(), vec![100, 200, 300, 400, 500]);
        assert_eq!(Axis::Workers.values().last(), Some(&25));
        assert_eq!(Axis::Stations.values(), vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn apply_modifies_env() {
        let mut env = EnvConfig::paper_default();
        Axis::Budget.apply(&mut env, 20);
        assert_eq!(env.initial_energy, 20.0);
        Axis::Workers.apply(&mut env, 5);
        assert_eq!(env.num_workers, 5);
        assert_eq!(env.num_pois, 300);
        assert!(env.validate().is_ok());
    }

    #[test]
    fn smoke_point_covers_all_five_algorithms() {
        let scale = Scale::smoke();
        let mut env = scale.base_env();
        Axis::Pois.apply(&mut env, 30);
        env.num_pois = 30;
        let rs = run_point(&scale, &env, 30).unwrap();
        let names: Vec<&str> = rs.iter().map(|r| r.algo).collect();
        assert_eq!(names, vec!["drl-cews", "dppo", "edics", "d&c", "greedy"]);
        for r in rs {
            assert!((0.0..=1.0).contains(&r.metrics.data_collection_ratio));
        }
    }
}
