//! Fig. 4: feature selection for the curiosity model.
//!
//! Five intrinsic-reward variants train on the W = 2, P = 200 scenario:
//! {shared, independent} × {embedding, direct} spatial curiosity plus RND.
//! The paper's findings: embedding ≻ direct features, shared ≻ independent
//! structure, and RND is inefficient in this multi-worker system. We emit
//! the κ/ξ/ρ training curves (sampled at checkpoints) per variant.

use super::Scale;
use crate::report::{f3, Table};
use crate::trainer::{CuriosityChoice, Trainer, TrainerConfig, TrainerError};
use vc_curiosity::prelude::{FeatureKind, StructureKind};
use vc_rl::chief::EpisodeStats;

/// The compared variants: the paper's five (four spatial combinations plus
/// RND), extended with a parameter-free count-based reference that bounds
/// how much of the spatial model's effect is pure visitation novelty.
pub fn variants() -> Vec<(String, CuriosityChoice)> {
    let mut v = Vec::new();
    for structure in [StructureKind::Shared, StructureKind::Independent] {
        for feature in [FeatureKind::Embedding, FeatureKind::Direct] {
            let c = CuriosityChoice::Spatial { feature, structure, eta: 0.3 };
            v.push((c.label(), c));
        }
    }
    v.push(("rnd".into(), CuriosityChoice::Rnd { eta: 0.3 }));
    v.push(("count".into(), CuriosityChoice::Count { eta: 0.3 }));
    v
}

/// Training-curve checkpoints for one variant: `(episode, mean stats)`.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn train_variant(
    scale: &Scale,
    choice: CuriosityChoice,
    checkpoints: usize,
) -> Result<Vec<(usize, EpisodeStats)>, TrainerError> {
    let mut env = scale.base_env();
    env.num_pois = 200; // the paper's Fig. 4 setting (P = 200, W = 2)
    env.num_workers = 2;
    let mut cfg = scale.tune(TrainerConfig::drl_cews(env));
    cfg.curiosity = choice;
    let mut trainer = Trainer::new(cfg)?;
    let per = (scale.train_episodes / checkpoints.max(1)).max(1);
    let mut out = Vec::new();
    for c in 1..=checkpoints {
        let stats = trainer.train(per)?;
        // Average the last few episodes of the window to de-noise.
        let tail = &stats[stats.len().saturating_sub(3)..];
        out.push((c * per, EpisodeStats::mean(tail)));
    }
    Ok(out)
}

/// Regenerates Fig. 4 at the given scale.
pub fn run(scale: &Scale) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        "Fig. 4: curiosity feature selection (training curves, W=2 P=200)",
        &["variant", "episode", "kappa", "xi", "rho", "r_int"],
    );
    for (label, choice) in variants() {
        for (ep, s) in train_variant(scale, choice, 3)? {
            table.push_row(vec![
                label.clone(),
                ep.to_string(),
                f3(s.kappa),
                f3(s.xi),
                f3(s.rho),
                format!("{:.2}", s.int_reward),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_paper_five_plus_count_reference() {
        let v = variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0].0, "shared-embedding");
        assert_eq!(v[4].0, "rnd");
        assert_eq!(v[5].0, "count");
    }

    #[test]
    fn smoke_variant_curve_has_checkpoints() {
        let curve = train_variant(&Scale::smoke(), CuriosityChoice::paper_spatial(), 2).unwrap();
        assert_eq!(curve.len(), 2);
        assert!(curve[0].0 < curve[1].0);
        assert!(curve[0].1.int_reward > 0.0);
    }
}
