//! Ablations of the design choices this reproduction makes on top of the
//! paper (see DESIGN.md, "Key design decisions"), plus the η sensitivity
//! study the paper mentions as a tuned hyperparameter.
//!
//! * **validity masking** — we default to masking invalid moves/charges at
//!   sampling time instead of learning wall avoidance from the collision
//!   penalty alone; the ablation trains both ways.
//! * **worker-identity marks** — our state channel 1 encodes worker identity
//!   in disjoint value bands; the ablation reverts to the paper's literal
//!   energy-only encoding, under which the factored action heads cannot
//!   distinguish workers.
//! * **η sweep** — the intrinsic-reward scale, from "no curiosity" through
//!   the paper's 0.3 to an exploration-dominated 1.0.

use super::Scale;
use crate::eval::{evaluate, PolicyScheduler};
use crate::report::{f3, Table};
use crate::trainer::{CuriosityChoice, Trainer, TrainerConfig, TrainerError};
use vc_curiosity::prelude::{FeatureKind, StructureKind};

/// Trains one configuration and evaluates it on its own scenario.
fn run_one(scale: &Scale, cfg: TrainerConfig) -> Result<(f32, f32, f32), TrainerError> {
    let env = cfg.env.clone();
    let mut trainer = Trainer::new(cfg)?;
    trainer.train(scale.train_episodes)?;
    let mut policy = PolicyScheduler::from_trainer(&trainer, "ablation");
    let m = evaluate(&mut policy, &env, scale.eval_episodes, 13);
    Ok((m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency))
}

/// Masking ablation: masked sampling (our default) vs the paper-faithful
/// collision-penalty-only scheme.
pub fn run_masking(scale: &Scale) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        "Ablation: action-validity masking vs collision-penalty only",
        &["variant", "kappa", "xi", "rho"],
    );
    for (label, mask) in [("masked (default)", true), ("penalty-only (paper)", false)] {
        let mut cfg = scale.tune(TrainerConfig::drl_cews(scale.base_env()));
        cfg.mask_invalid = mask;
        let (k, x, r) = run_one(scale, cfg)?;
        table.push_row(vec![label.to_string(), f3(k), f3(x), f3(r)]);
    }
    Ok(table)
}

/// Worker-identity-mark ablation (only meaningful for W ≥ 2).
pub fn run_identity_marks(scale: &Scale) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        "Ablation: worker-identity marks in state channel 1",
        &["variant", "kappa", "xi", "rho"],
    );
    for (label, paper_channel) in [("identity marks (default)", false), ("paper energy-only", true)]
    {
        let mut env = scale.base_env();
        env.num_workers = 2;
        env.paper_worker_channel = paper_channel;
        let cfg = scale.tune(TrainerConfig::drl_cews(env));
        let (k, x, r) = run_one(scale, cfg)?;
        table.push_row(vec![label.to_string(), f3(k), f3(x), f3(r)]);
    }
    Ok(table)
}

/// Intrinsic-reward scale sweep.
pub fn run_eta(scale: &Scale) -> Result<Table, TrainerError> {
    let mut table = Table::new(
        "Ablation: curiosity scale eta (paper uses 0.3)",
        &["eta", "kappa", "xi", "rho"],
    );
    for eta in [0.0f32, 0.1, 0.3, 1.0] {
        let mut cfg = scale.tune(TrainerConfig::drl_cews(scale.base_env()));
        cfg.curiosity = if eta == 0.0 {
            CuriosityChoice::None
        } else {
            CuriosityChoice::Spatial {
                feature: FeatureKind::Embedding,
                structure: StructureKind::Shared,
                eta,
            }
        };
        let (k, x, r) = run_one(scale, cfg)?;
        table.push_row(vec![format!("{eta:.1}"), f3(k), f3(x), f3(r)]);
    }
    Ok(table)
}

/// All ablations.
pub fn run(scale: &Scale) -> Result<Vec<Table>, TrainerError> {
    Ok(vec![run_masking(scale)?, run_identity_marks(scale)?, run_eta(scale)?])
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn masking_ablation_smoke() {
        let t = run_masking(&Scale::smoke()).unwrap();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn eta_ablation_covers_zero_and_paper_value() {
        let t = run_eta(&Scale::smoke()).unwrap();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "0.0");
        assert_eq!(t.rows[2][0], "0.3");
    }
}
