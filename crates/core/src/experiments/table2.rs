//! Table II: impact of the number of employees and the updating batch size
//! on κ, ξ and ρ.
//!
//! The paper trains DRL-CEWS for every (employees, batch) cell and reports
//! the converged metrics; the finding is that performance improves sharply
//! up to 4–8 employees and saturates, while batch 250 edges out the others.

use super::Scale;
use crate::eval::{evaluate, PolicyScheduler};
use crate::report::{f3, Table};
use crate::trainer::{Trainer, TrainerConfig, TrainerError};

/// Full sweep axes from the paper.
pub const EMPLOYEES: [usize; 5] = [1, 2, 4, 8, 16];
/// Batch sizes swept in Table 2.
pub const BATCHES: [usize; 4] = [50, 125, 250, 500];

/// One measured cell.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Employee-thread count M.
    pub employees: usize,
    /// PPO batch size.
    pub batch: usize,
    /// Data collection ratio κ.
    pub kappa: f32,
    /// Remaining data ratio ξ.
    pub xi: f32,
    /// Energy efficiency ρ.
    pub rho: f32,
}

/// Trains one (employees, batch) configuration and evaluates it.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn run_cell(scale: &Scale, employees: usize, batch: usize) -> Result<Cell, TrainerError> {
    let env = scale.base_env();
    let mut cfg = scale.tune(TrainerConfig::drl_cews(env.clone()));
    cfg.num_employees = employees;
    cfg.ppo.minibatch = batch;
    let mut trainer = Trainer::new(cfg)?;
    trainer.train(scale.train_episodes)?;
    let mut policy = PolicyScheduler::from_trainer(&trainer, "drl-cews");
    let m = evaluate(&mut policy, &env, scale.eval_episodes, 42);
    Ok(Cell {
        employees,
        batch,
        kappa: m.data_collection_ratio,
        xi: m.remaining_data_ratio,
        rho: m.energy_efficiency,
    })
}

/// Regenerates Table II at the given scale.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn run(scale: &Scale) -> Result<Table, TrainerError> {
    let employees = scale.pick(&EMPLOYEES);
    let batches = scale.pick(&BATCHES);
    let mut table = Table::new(
        "Table II: impact of #employees x batch size on kappa/xi/rho",
        &["batch", "employees", "kappa", "xi", "rho"],
    );
    for &b in &batches {
        for &e in &employees {
            let cell = run_cell(scale, e, b)?;
            table.push_row(vec![
                b.to_string(),
                e.to_string(),
                f3(cell.kappa),
                f3(cell.xi),
                f3(cell.rho),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_produces_bounded_metrics() {
        let c = run_cell(&Scale::smoke(), 1, 16).unwrap();
        assert!((0.0..=1.0).contains(&c.kappa));
        assert!((0.0..=1.0).contains(&c.xi));
        assert!(c.rho >= 0.0);
    }

    #[test]
    fn smoke_table_has_expected_shape() {
        let t = run(&Scale::smoke()).unwrap();
        // 2 batches × 2 employee counts at smoke scale.
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.headers.len(), 5);
    }
}
