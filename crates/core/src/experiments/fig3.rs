//! Fig. 3: training time as a function of the number of employees.
//!
//! The paper's takeaway: wall-clock per episode grows with M (the
//! synchronous chief waits for every employee each round), and at batch 250
//! going from 8 to 16 employees costs ~45% more time for ~1.7% more ρ. We
//! reproduce the *relative* time curve; on a 1-core container the growth is
//! roughly linear in M since employees cannot physically run in parallel.

use super::Scale;
use crate::report::{f2, Table};
use crate::trainer::{Trainer, TrainerConfig, TrainerError};
use std::time::Instant;

/// Measured training time for one employee count.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Employee-thread count M.
    pub employees: usize,
    /// Mean wall-clock seconds per training episode.
    pub seconds_per_episode: f32,
}

/// Times a few training episodes for one employee count.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn time_employees(
    scale: &Scale,
    employees: usize,
    episodes: usize,
) -> Result<Timing, TrainerError> {
    let env = scale.base_env();
    let mut cfg = scale.tune(TrainerConfig::drl_cews(env));
    cfg.num_employees = employees;
    let mut trainer = Trainer::new(cfg)?;
    // One warm-up episode excluded from the measurement.
    trainer.train_episode()?;
    let start = Instant::now();
    trainer.train(episodes)?;
    Ok(Timing {
        employees,
        seconds_per_episode: start.elapsed().as_secs_f32() / episodes.max(1) as f32,
    })
}

/// Regenerates Fig. 3 (per-episode training time vs M) at the given scale.
pub fn run(scale: &Scale) -> Result<Table, TrainerError> {
    let employees = scale.pick(&super::table2::EMPLOYEES);
    let episodes = (scale.train_episodes / 10).max(2);
    let mut table = Table::new(
        "Fig. 3: training time vs number of employees (batch fixed)",
        &["employees", "sec/episode", "relative"],
    );
    let timings: Vec<Timing> =
        employees.iter().map(|&e| time_employees(scale, e, episodes)).collect::<Result<_, _>>()?;
    let base = timings[0].seconds_per_episode.max(1e-9);
    for t in &timings {
        table.push_row(vec![
            t.employees.to_string(),
            format!("{:.3}", t.seconds_per_episode),
            f2(t.seconds_per_episode / base),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn timing_is_positive_and_grows_with_employees() {
        let scale = Scale::smoke();
        let t1 = time_employees(&scale, 1, 2).unwrap();
        let t4 = time_employees(&scale, 4, 2).unwrap();
        assert!(t1.seconds_per_episode > 0.0);
        // On a single core, 4 synchronous employees must cost more wall
        // clock than 1 (each does a full rollout + gradient pass).
        assert!(
            t4.seconds_per_episode > t1.seconds_per_episode,
            "4 employees ({}) not slower than 1 ({})",
            t4.seconds_per_episode,
            t1.seconds_per_episode
        );
    }
}
