//! Fig. 2(c): attained trajectories for 2 drones with 4 charging stations.
//!
//! Trains DRL-CEWS briefly on the paper map, then rolls the policy through
//! one evaluation episode while recording every worker's path, rendered as
//! ASCII maps (obstacles `#`, path `*`, start `S`, end `E`).

use super::Scale;
use crate::report::{f2, Table};
use crate::trainer::{Trainer, TrainerConfig, TrainerError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_rl::prelude::*;

/// A recorded evaluation episode.
pub struct TrajectoryRun {
    /// Per-slot worker positions and actions.
    pub trajectory: Trajectory,
    /// Final episode metrics.
    pub metrics: Metrics,
    /// Environment configuration the episode ran on.
    pub env_cfg: EnvConfig,
}

/// Trains and records one trajectory episode.
///
/// # Errors
///
/// Propagates trainer construction/training failures.
pub fn record(scale: &Scale) -> Result<TrajectoryRun, TrainerError> {
    let mut env_cfg = scale.base_env();
    env_cfg.num_workers = 2;
    env_cfg.num_stations = 4;
    let mut trainer = Trainer::new(scale.tune(TrainerConfig::drl_cews(env_cfg.clone())))?;
    trainer.train(scale.train_episodes)?;

    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    env.reset_with_seed(env_cfg.seed.wrapping_add(31));
    let mut rng = StdRng::seed_from_u64(4);
    let mut trajectory = Trajectory::new(env_cfg.num_workers);
    trajectory.record(env.workers().iter().map(|w| w.pos));
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: false };
    while !env.done() {
        let sampled = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
        env.step(&sampled.actions);
        trajectory.record(env.workers().iter().map(|w| w.pos));
    }
    Ok(TrajectoryRun { trajectory, metrics: env.metrics(), env_cfg })
}

/// Regenerates Fig. 2(c): returns the summary table; the binary also prints
/// the ASCII maps from the returned run.
pub fn run(scale: &Scale) -> Result<(Table, TrajectoryRun), TrainerError> {
    let r = record(scale)?;
    let mut table = Table::new(
        "Fig. 2(c): trajectories for 2 drones, 4 charging stations",
        &["worker", "path length", "kappa(final)"],
    );
    for w in 0..r.env_cfg.num_workers {
        table.push_row(vec![
            w.to_string(),
            f2(r.trajectory.path_length(w)),
            f2(r.metrics.data_collection_ratio),
        ]);
    }
    Ok((table, r))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn smoke_trajectory_records_every_slot() {
        let r = record(&Scale::smoke()).unwrap();
        // horizon steps + the initial position.
        assert_eq!(r.trajectory.len(), r.env_cfg.horizon + 1);
        assert!(r.trajectory.path_length(0) >= 0.0);
        let art = r.trajectory.ascii(&r.env_cfg, 0);
        assert!(art.contains('S') || art.contains('E'));
    }
}
