//! The serving-side checkpoint surface: load a v2 training checkpoint into
//! an inference-only [`PolicyArtifact`] without building a trainer (no
//! employee threads, no optimizers, no curiosity model).
//!
//! `vc_serve` is the main consumer: the daemon validates and loads an
//! artifact here, holds it behind an `Arc`, and hot-reloads by loading a
//! *new* artifact and atomically swapping the `Arc` only after every check
//! below has passed — so a corrupt file can never replace good weights.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::Path;
use vc_env::prelude::*;
use vc_nn::param::ParamStore;
use vc_nn::serialize::{load_checkpoint_v2, CheckpointError};
use vc_rl::prelude::*;

use crate::trainer::TrainerConfig;

/// Why a checkpoint could not be turned into a servable artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The byte stream failed v2 decoding (bad magic/version/CRC/layout).
    Checkpoint(CheckpointError),
    /// The embedded metadata is not a parseable [`TrainerConfig`].
    BadMeta,
    /// The metadata parsed but describes an invalid environment.
    Env(EnvError),
    /// The parameter payload does not match the network the metadata
    /// describes (scalar-count mismatch).
    ShapeMismatch {
        /// Scalars the rebuilt network expects.
        expected: usize,
        /// Scalars the checkpoint carries.
        got: usize,
    },
    /// The checkpoint file could not be read.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Checkpoint(e) => write!(f, "undecodable checkpoint: {e}"),
            ArtifactError::BadMeta => write!(f, "checkpoint metadata is not a TrainerConfig"),
            ArtifactError::Env(e) => write!(f, "checkpoint env config invalid: {e}"),
            ArtifactError::ShapeMismatch { expected, got } => {
                write!(f, "checkpoint carries {got} policy scalars, network needs {expected}")
            }
            ArtifactError::Io(e) => write!(f, "cannot read checkpoint: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Checkpoint(e) => Some(e),
            ArtifactError::Env(e) => Some(e),
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ArtifactError {
    fn from(e: CheckpointError) -> Self {
        ArtifactError::Checkpoint(e)
    }
}

/// An immutable, inference-ready policy: the actor-critic network plus the
/// parameter store it reads, rebuilt and shape-validated from a v2
/// checkpoint's own metadata.
pub struct PolicyArtifact {
    /// Environment configuration the policy was trained on (the daemon's
    /// base scenario; requests snapshot fleet state onto it).
    pub env: EnvConfig,
    /// The rebuilt actor-critic network.
    pub net: ActorCritic,
    /// Parameters backing [`Self::net`], values copied from the checkpoint.
    pub store: ParamStore,
    /// Whether the training config masked invalid actions.
    pub mask_invalid: bool,
    /// Episodes the checkpoint had trained for (provenance).
    pub episodes: u64,
    /// Gradient rounds the checkpoint had trained for (provenance).
    pub rounds: u64,
}

impl fmt::Debug for PolicyArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyArtifact")
            .field("grid", &self.env.grid)
            .field("num_workers", &self.env.num_workers)
            .field("scalars", &self.store.num_scalars())
            .field("episodes", &self.episodes)
            .finish()
    }
}

impl PolicyArtifact {
    /// Decodes, validates, and materializes an artifact from checkpoint
    /// bytes. Validation order: CRC32 footer and wire layout first
    /// (`load_checkpoint_v2`), then metadata parse, env validation, and
    /// finally the parameter-shape cross-check — nothing is trusted until
    /// everything has passed.
    ///
    /// # Errors
    ///
    /// A typed [`ArtifactError`] for each validation stage; never panics
    /// on hostile bytes.
    pub fn from_bytes(data: &[u8]) -> Result<Self, ArtifactError> {
        let ck = load_checkpoint_v2(data)?;
        let cfg: TrainerConfig =
            serde_json::from_str(&ck.meta).map_err(|_| ArtifactError::BadMeta)?;
        cfg.env.validate().map_err(ArtifactError::Env)?;
        // Same seed and NetConfig as training ⇒ identical parameter layout,
        // so a flat value copy restores the exact trained weights.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let net_cfg = NetConfig::for_scenario(cfg.env.grid, cfg.env.num_workers);
        let net = ActorCritic::new(&mut store, net_cfg, &mut rng);
        if ck.policy.num_scalars() != store.num_scalars() {
            return Err(ArtifactError::ShapeMismatch {
                expected: store.num_scalars(),
                got: ck.policy.num_scalars(),
            });
        }
        store.copy_values_from(&ck.policy);
        Ok(PolicyArtifact {
            env: cfg.env,
            net,
            store,
            mask_invalid: cfg.mask_invalid,
            episodes: ck.episodes,
            rounds: ck.rounds,
        })
    }

    /// Reads and loads a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on read failure, otherwise as
    /// [`Self::from_bytes`].
    pub fn from_file(path: &Path) -> Result<Self, ArtifactError> {
        let data = std::fs::read(path).map_err(ArtifactError::Io)?;
        Self::from_bytes(&data)
    }

    /// Builds a fresh environment matching this artifact's scenario.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Env`] if the stored config stopped validating
    /// (cannot happen for artifacts from [`Self::from_bytes`], which
    /// validates eagerly; kept typed for defense in depth).
    pub fn make_env(&self) -> Result<CrowdsensingEnv, ArtifactError> {
        self.env.validate().map_err(ArtifactError::Env)?;
        Ok(CrowdsensingEnv::new(self.env.clone()))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::trainer::Trainer;
    use vc_nn::serialize::{save_checkpoint_v2, AdamState, TrainCheckpoint};

    fn tiny_checkpoint() -> Vec<u8> {
        let mut env = EnvConfig::tiny();
        env.horizon = 8;
        let mut cfg = TrainerConfig::drl_cews(env).quick();
        cfg.num_employees = 1;
        let mut trainer = Trainer::new(cfg).unwrap();
        trainer.checkpoint_v2().unwrap().to_vec()
    }

    #[test]
    fn artifact_round_trips_from_trainer_checkpoint() {
        let bytes = tiny_checkpoint();
        let art = PolicyArtifact::from_bytes(&bytes).unwrap();
        assert!(art.store.num_scalars() > 0);
        let env = art.make_env().unwrap();
        assert_eq!(env.workers().len(), art.env.num_workers);
    }

    #[test]
    fn corrupt_bytes_give_typed_errors() {
        let mut bytes = tiny_checkpoint();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            PolicyArtifact::from_bytes(&bytes),
            Err(ArtifactError::Checkpoint(CheckpointError::BadCrc { .. }))
        ));
        assert!(matches!(
            PolicyArtifact::from_bytes(&[]),
            Err(ArtifactError::Checkpoint(CheckpointError::Truncated))
        ));
    }

    #[test]
    fn non_trainer_meta_is_rejected() {
        let ck = TrainCheckpoint {
            policy: ParamStore::new(),
            curiosity: None,
            ppo_opt: AdamState::default(),
            curiosity_opt: None,
            rng_states: vec![],
            episodes: 0,
            rounds: 0,
            meta: "not json".to_owned(),
        };
        let bytes = save_checkpoint_v2(&ck);
        assert!(matches!(PolicyArtifact::from_bytes(&bytes), Err(ArtifactError::BadMeta)));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        // Valid meta, but a policy payload from a different (empty) store.
        let bytes = tiny_checkpoint();
        let mut ck = load_checkpoint_v2(&bytes).unwrap();
        ck.policy = ParamStore::new();
        ck.ppo_opt = AdamState::default();
        let reserialized = save_checkpoint_v2(&ck);
        assert!(matches!(
            PolicyArtifact::from_bytes(&reserialized),
            Err(ArtifactError::ShapeMismatch { expected: _, got: 0 })
        ));
    }
}
