//! The DRL-CEWS training loop (Algorithms 1–2).
//!
//! A [`Trainer`] owns the *global* PPO and curiosity parameter stores and
//! their Adam optimizers (the chief), and drives M employee threads, each
//! holding a local model copy and a local environment. One
//! [`Trainer::train_episode`] runs:
//!
//! 1. broadcast global parameters;
//! 2. every employee rolls out one episode (exploration, Alg. 1 lines 4–15),
//!    adding the intrinsic curiosity reward to the extrinsic reward;
//! 3. K synchronized update rounds (exploitation, lines 17–23): employees
//!    compute minibatch gradients; the chief sums them through the gradient
//!    buffers, averages over M, clips, steps Adam, and re-broadcasts.
//!
//! The same trainer realizes both **DRL-CEWS** (sparse reward + spatial
//! curiosity) and the **DPPO** comparator (dense reward, no curiosity) via
//! [`TrainerConfig`] presets, so the comparison in Figs. 5–8 shares one
//! implementation.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::{Duration, Instant};
use vc_curiosity::prelude::*;
use vc_env::prelude::*;
use vc_nn::optim::{Adam, LrSchedule, Optimizer};
use vc_nn::prelude::*;
use vc_rl::prelude::*;
use vc_telemetry::{Field, Telemetry};

/// Errors from building or driving a [`Trainer`].
#[derive(Clone, Debug, PartialEq)]
pub enum TrainerError {
    /// The environment configuration failed validation.
    Env(EnvError),
    /// The chief–employee executor failed (employee death, closed channel,
    /// malformed gradients).
    Chief(ChiefError),
    /// A durable checkpoint could not be decoded or does not match this
    /// trainer's models.
    Checkpoint(CheckpointError),
}

impl fmt::Display for TrainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainerError::Env(e) => write!(f, "invalid trainer environment: {e}"),
            TrainerError::Chief(e) => write!(f, "chief executor failed: {e}"),
            TrainerError::Checkpoint(e) => write!(f, "bad training checkpoint: {e}"),
        }
    }
}

impl std::error::Error for TrainerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainerError::Env(e) => Some(e),
            TrainerError::Chief(e) => Some(e),
            TrainerError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for TrainerError {
    fn from(e: CheckpointError) -> Self {
        TrainerError::Checkpoint(e)
    }
}

impl From<EnvError> for TrainerError {
    fn from(e: EnvError) -> Self {
        TrainerError::Env(e)
    }
}

impl From<ChiefError> for TrainerError {
    fn from(e: ChiefError) -> Self {
        TrainerError::Chief(e)
    }
}

/// Which intrinsic-reward model the trainer attaches.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CuriosityChoice {
    /// No intrinsic reward.
    None,
    /// The paper's spatial curiosity model.
    Spatial {
        /// Position-feature extractor variant.
        feature: FeatureKind,
        /// Predictor structure (joint or per-worker).
        structure: StructureKind,
        /// Intrinsic-reward scale η.
        eta: f32,
    },
    /// Random network distillation on the full state.
    Rnd {
        /// Intrinsic-reward scale η.
        eta: f32,
    },
    /// Pathak-style ICM on the full state.
    Icm {
        /// Intrinsic-reward scale η.
        eta: f32,
    },
    /// Count-based novelty bonus (parameter-free reference).
    Count {
        /// Intrinsic-reward scale η.
        eta: f32,
    },
}

impl CuriosityChoice {
    /// The paper's final choice: shared structure + embedding feature,
    /// η = 0.3.
    pub fn paper_spatial() -> Self {
        CuriosityChoice::Spatial {
            feature: FeatureKind::Embedding,
            structure: StructureKind::Shared,
            eta: 0.3,
        }
    }

    /// Instantiates the model for a scenario.
    pub fn build(self, env_cfg: &EnvConfig, seed: u64) -> Box<dyn Curiosity> {
        match self {
            CuriosityChoice::None => Box::new(NoCuriosity::new()),
            CuriosityChoice::Spatial { feature, structure, eta } => {
                let mut cfg = vc_curiosity::spatial::SpatialCuriosityConfig::paper_default(
                    env_cfg.grid,
                    env_cfg.size_x,
                    env_cfg.size_y,
                    env_cfg.num_workers,
                );
                cfg.feature = feature;
                cfg.structure = structure;
                cfg.eta = eta;
                cfg.seed = seed;
                Box::new(SpatialCuriosity::new(cfg))
            }
            CuriosityChoice::Rnd { eta } => {
                let mut cfg = RndConfig::for_state(vc_env::state::state_len(env_cfg));
                cfg.eta = eta;
                cfg.seed = seed;
                Box::new(Rnd::new(cfg))
            }
            CuriosityChoice::Icm { eta } => {
                let mut cfg =
                    IcmConfig::for_state(vc_env::state::state_len(env_cfg), env_cfg.num_workers);
                cfg.eta = eta;
                cfg.seed = seed;
                Box::new(Icm::new(cfg))
            }
            CuriosityChoice::Count { eta } => {
                let mut cfg =
                    CountCuriosityConfig::for_space(env_cfg.grid, env_cfg.size_x, env_cfg.size_y);
                cfg.eta = eta;
                Box::new(CountCuriosity::new(cfg))
            }
        }
    }

    /// Short label for experiment reports.
    pub fn label(&self) -> String {
        match self {
            CuriosityChoice::None => "none".into(),
            CuriosityChoice::Spatial { feature, structure, .. } => {
                let f = match feature {
                    FeatureKind::Embedding => "embedding",
                    FeatureKind::Direct => "direct",
                };
                let s = match structure {
                    StructureKind::Shared => "shared",
                    StructureKind::Independent => "independent",
                };
                format!("{s}-{f}")
            }
            CuriosityChoice::Rnd { .. } => "rnd".into(),
            CuriosityChoice::Icm { .. } => "icm".into(),
            CuriosityChoice::Count { .. } => "count".into(),
        }
    }
}

/// Fault-tolerance policy for the chief–employee executor, in
/// serialization-friendly units (see `ChiefConfig` in `vc-rl` for the
/// runtime semantics).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Gather-round timeout in milliseconds; `None` waits forever (a hung
    /// employee then wedges the synchronous barrier).
    pub round_timeout_ms: Option<u64>,
    /// Total employee respawns allowed before a death aborts the run.
    pub restart_budget: usize,
    /// Base of the exponential respawn backoff, in milliseconds.
    pub backoff_base_ms: u64,
    /// Deterministic fault-injection script (empty in production runs).
    pub faults: FaultPlan,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            round_timeout_ms: None,
            restart_budget: 16,
            backoff_base_ms: 10,
            faults: FaultPlan::none(),
        }
    }
}

impl FaultConfig {
    fn to_chief(&self) -> ChiefConfig {
        ChiefConfig {
            round_timeout: self.round_timeout_ms.map(Duration::from_millis),
            restart_budget: self.restart_budget,
            backoff_base: Duration::from_millis(self.backoff_base_ms),
            backoff_cap: Duration::from_secs(5),
            // Derive the jitter stream from the training seed's fault
            // config deterministically: resumes reproduce the schedule.
            backoff_seed: 0xBAC0_FF5E ^ self.restart_budget as u64,
            faults: self.faults.clone(),
        }
    }
}

/// Full trainer configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Crowdsensing environment configuration.
    pub env: EnvConfig,
    /// PPO hyperparameters shared by every employee.
    pub ppo: PpoConfig,
    /// Extrinsic-reward shaping (sparse or dense).
    pub reward_mode: RewardMode,
    /// Intrinsic-reward model attached to the trainer.
    pub curiosity: CuriosityChoice,
    /// Number of employee threads M (8 in the paper's final setting).
    pub num_employees: usize,
    /// Learning rate for the curiosity forward model.
    pub curiosity_lr: f32,
    /// Policy learning-rate schedule, evaluated against
    /// [`Self::schedule_horizon`] episodes.
    pub lr_schedule: LrSchedule,
    /// Episode count over which `lr_schedule` anneals (progress saturates
    /// at 1 beyond it). Ignored for the constant schedule.
    pub schedule_horizon: usize,
    /// Mask invalid moves/charges at sampling time. Defaults to `true`: on
    /// this CPU-scale substrate, burning episodes on learning wall avoidance
    /// from the collision penalty alone is wasted budget. Set `false` for
    /// the paper-faithful penalty-only ablation.
    pub mask_invalid: bool,
    /// Master seed for network init, employees and sampling.
    pub seed: u64,
    /// Fault-tolerance policy (restart budget, round timeout, injection).
    pub fault: FaultConfig,
}

impl TrainerConfig {
    /// The full DRL-CEWS method: sparse reward + shared-embedding spatial
    /// curiosity, 8 employees, batch 250.
    pub fn drl_cews(env: EnvConfig) -> Self {
        Self {
            env,
            ppo: PpoConfig::default(),
            reward_mode: RewardMode::Sparse,
            curiosity: CuriosityChoice::paper_spatial(),
            num_employees: 8,
            curiosity_lr: 3e-3,
            lr_schedule: LrSchedule::Constant,
            schedule_horizon: 2500,
            mask_invalid: true,
            seed: 1,
            fault: FaultConfig::default(),
        }
    }

    /// The DPPO comparator (Heess et al.): dense reward (Eqn 20), no
    /// curiosity, per-batch advantage normalization, 8 employees, batch 250.
    pub fn dppo(env: EnvConfig) -> Self {
        Self {
            env,
            ppo: PpoConfig { normalize_adv: true, minibatch: 250, ..PpoConfig::default() },
            reward_mode: RewardMode::Dense,
            curiosity: CuriosityChoice::None,
            num_employees: 8,
            curiosity_lr: 1e-3,
            lr_schedule: LrSchedule::Constant,
            schedule_horizon: 2500,
            mask_invalid: true,
            seed: 1,
            fault: FaultConfig::default(),
        }
    }

    /// Scales the configuration down for fast CI / unit-test runs.
    pub fn quick(mut self) -> Self {
        self.num_employees = 2;
        self.ppo.epochs = 1;
        self.ppo.minibatch = 32;
        self
    }
}

/// One employee thread's state: local env, local models, local buffer.
struct CewsEmployee {
    env: CrowdsensingEnv,
    store: ParamStore,
    net: ActorCritic,
    curiosity: Box<dyn Curiosity>,
    buffer: RolloutBuffer,
    ppo: PpoConfig,
    reward_mode: RewardMode,
    opts: PolicyOptions,
    rng: StdRng,
    episode: usize,
    base_seed: u64,
}

impl CewsEmployee {
    fn shaped_state(&self) -> Vec<f32> {
        vc_env::state::encode(&self.env)
    }
}

impl Employee for CewsEmployee {
    fn load_params(&mut self, ppo: &[f32], curiosity: &[f32]) {
        self.store.load_flat_values(ppo);
        if !curiosity.is_empty() {
            self.curiosity.params_mut().load_flat_values(curiosity);
        }
    }

    fn rollout(&mut self) -> EpisodeStats {
        // All employees train on the *same* designed scenario (the paper
        // trains and evaluates on one map, Fig. 2b); experience diversity
        // comes from each employee's independent stochastic policy draws.
        let _ = self.base_seed;
        self.env.reset();
        self.buffer.clear();
        self.curiosity.clear_buffer();

        let mut ext_total = 0.0f32;
        let mut int_total = 0.0f32;
        while !self.env.done() {
            let state = self.shaped_state();
            let sampled =
                sample_action(&self.net, &self.store, &self.env, self.opts, &mut self.rng);
            let positions: Vec<Point> = self.env.workers().iter().map(|w| w.pos).collect();
            let result = self.env.step(&sampled.actions);
            let next_positions: Vec<Point> = self.env.workers().iter().map(|w| w.pos).collect();
            let next_state = self.shaped_state();

            let r_ext = extrinsic_reward(self.reward_mode, self.env.config(), &result.outcomes);
            let r_int = self.curiosity.intrinsic_reward(&TransitionView {
                state: &state,
                next_state: &next_state,
                positions: &positions,
                next_positions: &next_positions,
                moves: &sampled.moves,
            });
            ext_total += r_ext;
            int_total += r_int;

            self.buffer.push(Transition {
                state,
                moves: sampled.moves,
                charges: sampled.charges,
                move_mask: sampled.move_mask,
                charge_mask: sampled.charge_mask,
                logp: sampled.logp,
                reward: r_ext + r_int,
                value: sampled.value,
            });
        }
        let v_last = state_value(&self.net, &self.store, &self.env);
        finish_rollout(&mut self.buffer, &self.ppo, v_last);
        self.episode += 1;

        let m = self.env.metrics();
        EpisodeStats {
            kappa: m.data_collection_ratio,
            xi: m.remaining_data_ratio,
            rho: m.energy_efficiency,
            ext_reward: ext_total,
            int_reward: int_total,
            collisions: self.env.workers().iter().map(|w| w.collisions).sum(),
        }
    }

    fn compute_grads(&mut self) -> GradPair {
        self.store.zero_grads();
        let batches = self.buffer.minibatch_indices(self.ppo.minibatch, &mut self.rng);
        let mut stats = PpoStats::default();
        if let Some(batch) = batches.first() {
            stats = compute_ppo_grads(&self.net, &mut self.store, &self.buffer, batch, &self.ppo);
        }
        let ppo = self.store.flat_grads();
        self.curiosity.params_mut().zero_grads();
        self.curiosity.compute_grads(self.ppo.minibatch, &mut self.rng);
        let cur = if self.curiosity.params().is_empty() {
            Vec::new()
        } else {
            self.curiosity.params().flat_grads()
        };
        GradPair { ppo, curiosity: cur, stats }
    }

    fn snapshot_rng(&self) -> [u64; 4] {
        self.rng.state()
    }

    fn restore_rng(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

/// The chief: global stores, optimizers, and the employee executor.
pub struct Trainer {
    cfg: TrainerConfig,
    store: ParamStore,
    net: ActorCritic,
    curiosity_store_len: usize,
    curiosity: Box<dyn Curiosity>,
    ppo_opt: Adam,
    curiosity_opt: Adam,
    executor: ChiefExecutor,
    episodes: usize,
    rounds: u64,
    history: Vec<EpisodeStats>,
    last_ppo_stats: PpoStats,
    telemetry: Telemetry,
}

impl Trainer {
    /// Builds the global models and spawns the employee threads.
    ///
    /// # Errors
    ///
    /// [`TrainerError::Env`] on an invalid environment config,
    /// [`TrainerError::Chief`] when no employees are requested or a thread
    /// fails to spawn.
    pub fn new(cfg: TrainerConfig) -> Result<Self, TrainerError> {
        Self::with_telemetry(cfg, Telemetry::off())
    }

    /// Like [`Self::new`], with a telemetry registry threaded through the
    /// whole stack: the chief executor (round timings, quarantine/restart
    /// counters, per-employee gradient-norm histograms), every employee's
    /// environment (collision/charge counters, per-episode κ/ξ/ρ), and —
    /// when the handle is enabled — the dense-kernel call/FLOP tallies in
    /// `vc_nn`. The config stays serializable; the handle lives only here.
    ///
    /// # Errors
    ///
    /// Same as [`Self::new`].
    pub fn with_telemetry(cfg: TrainerConfig, telemetry: Telemetry) -> Result<Self, TrainerError> {
        cfg.env.validate()?;
        // Size the dense-kernel thread budget to the cores left after each
        // employee thread claims one. Purely a throughput knob: kernel
        // results are bit-identical for every setting.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let kernel_threads = (cores / cfg.num_employees.max(1)).max(1);
        vc_nn::prelude::set_kernel_threads(kernel_threads);
        // Pre-grow the persistent kernel pool so the first large GEMM of the
        // run doesn't pay worker-spawn latency mid-rollout. The pool is
        // process-global and grow-only; with `kernel_threads == 1` every
        // matmul stays on the calling thread and no workers are reserved.
        if kernel_threads > 1 {
            vc_nn::ops::pool::ensure_workers(kernel_threads - 1);
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let net_cfg = NetConfig::for_scenario(cfg.env.grid, cfg.env.num_workers);
        let net = ActorCritic::new(&mut store, net_cfg, &mut rng);
        let curiosity = cfg.curiosity.build(&cfg.env, cfg.seed.wrapping_add(77));

        // The employee factory outlives construction: the executor re-invokes
        // it to build replacements for dead employees, which then receive the
        // current global snapshot via the chief's respawn path. A respawned
        // employee's RNG restarts its seeded stream — acceptable, since the
        // original stream died with the panicked thread.
        let fac_env = cfg.env.clone();
        let fac_curiosity = cfg.curiosity;
        let fac_telemetry = telemetry.clone();
        let (fac_ppo, fac_reward, fac_mask, fac_seed) =
            (cfg.ppo, cfg.reward_mode, cfg.mask_invalid, cfg.seed);
        let factory = move |id: usize| -> Box<dyn Employee> {
            // Same init seed ⇒ identical parameter layout; values are
            // overwritten by the first broadcast anyway.
            let mut erng = StdRng::seed_from_u64(fac_seed);
            let mut estore = ParamStore::new();
            let enet = ActorCritic::new(&mut estore, net_cfg, &mut erng);
            let mut emp_env = CrowdsensingEnv::new(fac_env.clone());
            emp_env.set_telemetry(fac_telemetry.clone());
            Box::new(CewsEmployee {
                env: emp_env,
                store: estore,
                net: enet,
                curiosity: fac_curiosity.build(&fac_env, fac_seed.wrapping_add(77)),
                buffer: RolloutBuffer::new(),
                ppo: fac_ppo,
                reward_mode: fac_reward,
                opts: PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: fac_mask },
                rng: StdRng::seed_from_u64(fac_seed.wrapping_add(1000 + id as u64)),
                episode: 0,
                base_seed: fac_env.seed,
            })
        };
        let mut executor =
            ChiefExecutor::spawn_with(cfg.num_employees, factory, cfg.fault.to_chief())?;
        executor.set_telemetry(telemetry.clone());
        if telemetry.is_on() {
            vc_nn::prelude::set_kernel_telemetry(true);
        }

        let ppo_opt = Adam::new(cfg.ppo.lr);
        let curiosity_opt = Adam::new(cfg.curiosity_lr);
        let curiosity_store_len = curiosity.params().num_scalars();
        Ok(Self {
            cfg,
            store,
            net,
            curiosity_store_len,
            curiosity,
            ppo_opt,
            curiosity_opt,
            executor,
            episodes: 0,
            rounds: 0,
            history: Vec::new(),
            last_ppo_stats: PpoStats::default(),
            telemetry,
        })
    }

    /// Rebuilds a trainer from a v2 checkpoint produced by
    /// [`Self::checkpoint_v2`]: the embedded JSON config reconstructs the
    /// trainer, then parameters, optimizer moments, per-employee RNG
    /// streams and counters are restored, continuing the run bit-exactly
    /// (guaranteed for curiosity-free configs; curiosity models with
    /// unserialized internal state resume approximately).
    ///
    /// # Errors
    ///
    /// [`TrainerError::Checkpoint`] on a corrupt or incompatible
    /// checkpoint, plus everything [`Self::new`] can return.
    pub fn resume_from(data: &[u8]) -> Result<Self, TrainerError> {
        Self::resume_from_with_telemetry(data, Telemetry::off())
    }

    /// [`Self::resume_from`] with a telemetry registry attached to the
    /// rebuilt trainer (the handle itself is never checkpointed).
    ///
    /// # Errors
    ///
    /// Same as [`Self::resume_from`].
    pub fn resume_from_with_telemetry(
        data: &[u8],
        telemetry: Telemetry,
    ) -> Result<Self, TrainerError> {
        let ck = vc_nn::serialize::load_checkpoint_v2(data)?;
        let cfg: TrainerConfig = serde_json::from_str(&ck.meta).map_err(|_| {
            TrainerError::Checkpoint(CheckpointError::Inconsistent(
                "metadata is not a TrainerConfig",
            ))
        })?;
        let mut trainer = Trainer::with_telemetry(cfg, telemetry)?;
        trainer.restore_v2(data)?;
        Ok(trainer)
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes
    }

    /// Per-episode stats history (mean over employees).
    pub fn history(&self) -> &[EpisodeStats] {
        &self.history
    }

    /// The global policy network.
    pub fn net(&self) -> &ActorCritic {
        &self.net
    }

    /// The global parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// The chief-side curiosity model (for Fig. 9 heat maps).
    pub fn curiosity(&self) -> &dyn Curiosity {
        self.curiosity.as_ref()
    }

    /// Diagnostics from the most recent update round (mean over employees):
    /// policy entropy, value loss, and the KL proxy.
    pub fn last_ppo_stats(&self) -> PpoStats {
        self.last_ppo_stats
    }

    fn broadcast(&mut self) -> Result<(), ChiefError> {
        let cur = if self.curiosity_store_len == 0 {
            Vec::new()
        } else {
            self.curiosity.params().flat_values()
        };
        self.executor.broadcast_params(self.store.flat_values(), cur)
    }

    /// Writes one `"round"` line to the telemetry JSONL sink (the
    /// `round_timings.jsonl` schema): phase timings in milliseconds plus
    /// the round's health counters. No-op when telemetry is off.
    #[allow(clippy::too_many_arguments)] // flat timing record, not an API
    fn emit_round_event(
        &self,
        round: u64,
        gather_ms: f64,
        apply_ms: f64,
        broadcast_ms: f64,
        sync_ms: f64,
        report: &RoundReport,
    ) {
        if !self.telemetry.is_on() {
            return;
        }
        self.telemetry.event(
            "round",
            &[
                ("episode", Field::U64(self.episodes as u64)),
                ("round", Field::U64(round)),
                ("gather_ms", Field::F64(gather_ms)),
                ("apply_ms", Field::F64(apply_ms)),
                ("broadcast_ms", Field::F64(broadcast_ms)),
                ("sync_ms", Field::F64(sync_ms)),
                ("contributors", Field::U64(report.contributors as u64)),
                ("quarantined", Field::U64(report.quarantined.len() as u64)),
                ("failed", Field::U64(report.failed.len() as u64)),
                ("respawned", Field::U64(report.respawned.len() as u64)),
            ],
        );
    }

    /// The telemetry handle this trainer records into (disabled for
    /// [`Self::new`]-built trainers).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Scrapes the process-wide dense-kernel counters (`vc_nn`) into
    /// `nn_gemm_calls` / `nn_gemm_flops` gauges, plus the persistent-pool
    /// (`nn_pool_*`) and tensor-arena (`nn_arena_*`) health counters, so a
    /// Prometheus dump includes the kernel tallies. Call before
    /// [`Telemetry::prometheus`].
    pub fn publish_kernel_telemetry(&self) {
        if !self.telemetry.is_on() {
            return;
        }
        let k = vc_nn::prelude::kernel_counters();
        self.telemetry.gauge("nn_gemm_calls").set(k.gemm_calls as f64);
        self.telemetry.gauge("nn_gemm_flops").set(k.gemm_flops as f64);
        let p = vc_nn::prelude::pool_stats();
        self.telemetry.gauge("nn_pool_workers").set(p.workers as f64);
        self.telemetry.gauge("nn_pool_dispatches").set(p.dispatches as f64);
        self.telemetry.gauge("nn_pool_jobs_executed").set(p.jobs_executed as f64);
        self.telemetry.gauge("nn_pool_jobs_helped").set(p.jobs_helped as f64);
        self.telemetry.gauge("nn_pool_parks").set(p.parks as f64);
        let a = vc_nn::prelude::arena_stats();
        self.telemetry.gauge("nn_arena_hits").set(a.hits as f64);
        self.telemetry.gauge("nn_arena_misses").set(a.misses as f64);
        self.telemetry.gauge("nn_arena_held_bytes").set(a.held_bytes as f64);
    }

    /// One full episode of the chief–employee loop; returns the mean
    /// employee stats (over the employees that completed their rollout).
    ///
    /// Faults are absorbed, not fatal: panicked/hung employees are
    /// respawned within the restart budget, and an update round whose
    /// every contribution was quarantined is skipped rather than applying
    /// a zero (or poisoned) gradient.
    ///
    /// # Errors
    ///
    /// [`TrainerError::Chief`] when the executor hits an unrecoverable
    /// failure: restart budget exhausted, malformed gradients, protocol
    /// violation.
    pub fn train_episode(&mut self) -> Result<EpisodeStats, TrainerError> {
        let tel_on = self.telemetry.is_on();
        // Anneal the policy learning rate against the schedule horizon.
        let progress = self.episodes as f32 / self.cfg.schedule_horizon.max(1) as f32;
        self.ppo_opt.set_learning_rate(self.cfg.lr_schedule.at(self.cfg.ppo.lr, progress));
        self.broadcast()?;
        // Rollout is the synchronization barrier of the episode: the chief
        // blocks until every (surviving) employee has finished exploring.
        let sync_timer = tel_on.then(Instant::now);
        let rollout = self.executor.rollout_all()?;
        let sync_ms = sync_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
        for _k in 0..self.cfg.ppo.epochs {
            let round = self.rounds;
            let gather_timer = tel_on.then(Instant::now);
            let report = self.executor.gather_grads()?;
            let gather_ms = gather_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            self.rounds += 1;
            if report.contributors == 0 {
                // Every warm employee died or was quarantined this round;
                // there is no gradient to apply.
                self.emit_round_event(round, gather_ms, 0.0, 0.0, sync_ms, &report);
                continue;
            }
            self.last_ppo_stats = report.stats;
            let apply_timer = tel_on.then(Instant::now);
            // Average over the employees that actually contributed so the
            // step size is independent of (surviving) M.
            let m = report.contributors as f32;
            self.store.zero_grads();
            let scaled: Vec<f32> = report.ppo.iter().map(|g| g / m).collect();
            self.store.add_flat_grads(&scaled);
            self.store.clip_grad_norm(self.cfg.ppo.max_grad_norm);
            self.ppo_opt.step(&mut self.store);

            if !report.curiosity.is_empty() {
                let cstore = self.curiosity.params_mut();
                cstore.zero_grads();
                let cscaled: Vec<f32> = report.curiosity.iter().map(|g| g / m).collect();
                cstore.add_flat_grads(&cscaled);
                cstore.clip_grad_norm(self.cfg.ppo.max_grad_norm);
                self.curiosity_opt.step(cstore);
            }
            let apply_ms = apply_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            let bc_timer = tel_on.then(Instant::now);
            self.broadcast()?;
            let broadcast_ms = bc_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3);
            if tel_on {
                self.telemetry
                    .histogram("trainer_apply_seconds", &vc_telemetry::SPAN_SECONDS_BOUNDS)
                    .observe(apply_ms / 1e3);
            }
            self.emit_round_event(round, gather_ms, apply_ms, broadcast_ms, sync_ms, &report);
        }
        self.episodes += 1;
        let mean = EpisodeStats::mean(&rollout.stats);
        self.history.push(mean);
        Ok(mean)
    }

    /// Trains for `episodes` episodes, returning per-episode mean stats.
    ///
    /// # Errors
    ///
    /// Stops at the first failing episode — see [`Self::train_episode`].
    pub fn train(&mut self, episodes: usize) -> Result<Vec<EpisodeStats>, TrainerError> {
        (0..episodes).map(|_| self.train_episode()).collect()
    }

    /// Serializes the global policy parameters (Section VI-D's periodic
    /// checkpoint).
    pub fn checkpoint(&self) -> bytes::Bytes {
        vc_nn::serialize::save_checkpoint(&self.store)
    }

    /// Restores global policy parameters from a checkpoint.
    pub fn restore(&mut self, data: &[u8]) -> Result<(), vc_nn::serialize::CheckpointError> {
        let restored = vc_nn::serialize::load_checkpoint(data)?;
        self.store.copy_values_from(&restored);
        Ok(())
    }

    /// Global gradient gather rounds completed so far.
    pub fn rounds_trained(&self) -> u64 {
        self.rounds
    }

    /// Employee respawns spent from the restart budget so far.
    pub fn restarts_used(&self) -> usize {
        self.executor.restarts_used()
    }

    /// Serializes the complete training state — both parameter stores,
    /// Adam moments, per-employee RNG streams, counters, and the trainer
    /// config as JSON metadata — in the durable v2 format (CRC32 footer).
    /// Pair with [`Self::resume_from`] / [`Self::restore_v2`].
    ///
    /// # Errors
    ///
    /// [`TrainerError::Chief`] when an employee fails to report its RNG
    /// state (and cannot be respawned).
    pub fn checkpoint_v2(&mut self) -> Result<bytes::Bytes, TrainerError> {
        let rng_states = self.executor.snapshot_rngs()?;
        let (m, v) = self.ppo_opt.flat_moments();
        let ppo_opt = AdamState { t: self.ppo_opt.steps(), m, v };
        let (curiosity, curiosity_opt) = if self.curiosity_store_len == 0 {
            (None, None)
        } else {
            let (cm, cv) = self.curiosity_opt.flat_moments();
            (
                Some(self.curiosity.params().clone()),
                Some(AdamState { t: self.curiosity_opt.steps(), m: cm, v: cv }),
            )
        };
        let meta = serde_json::to_string(&self.cfg).map_err(|_| {
            TrainerError::Checkpoint(CheckpointError::Inconsistent(
                "trainer config failed to serialize",
            ))
        })?;
        let ck = TrainCheckpoint {
            policy: self.store.clone(),
            curiosity,
            ppo_opt,
            curiosity_opt,
            rng_states,
            episodes: self.episodes as u64,
            rounds: self.rounds,
            meta,
        };
        Ok(vc_nn::serialize::save_checkpoint_v2(&ck))
    }

    /// Restores the full training state captured by [`Self::checkpoint_v2`]
    /// into this (compatibly configured) trainer: parameters, optimizer
    /// moments, per-employee RNG streams, and the episode/round counters.
    ///
    /// # Errors
    ///
    /// [`TrainerError::Checkpoint`] on a corrupt checkpoint or one whose
    /// shapes don't match this trainer's models; [`TrainerError::Chief`]
    /// when the RNG streams can't be delivered to the employees.
    pub fn restore_v2(&mut self, data: &[u8]) -> Result<(), TrainerError> {
        let ck = vc_nn::serialize::load_checkpoint_v2(data)?;
        if ck.policy.num_scalars() != self.store.num_scalars() {
            return Err(TrainerError::Checkpoint(CheckpointError::Inconsistent(
                "policy shape doesn't match this trainer",
            )));
        }
        self.store.copy_values_from(&ck.policy);
        self.ppo_opt
            .restore_state(&self.store, ck.ppo_opt.t, &ck.ppo_opt.m, &ck.ppo_opt.v)
            .map_err(|_| {
                TrainerError::Checkpoint(CheckpointError::Inconsistent(
                    "ppo Adam moments don't match the policy",
                ))
            })?;
        if let (Some(cur), Some(copt)) = (&ck.curiosity, &ck.curiosity_opt) {
            if self.curiosity_store_len != 0 {
                if cur.num_scalars() != self.curiosity_store_len {
                    return Err(TrainerError::Checkpoint(CheckpointError::Inconsistent(
                        "curiosity shape doesn't match this trainer",
                    )));
                }
                self.curiosity.params_mut().copy_values_from(cur);
                let cstore = self.curiosity.params();
                self.curiosity_opt.restore_state(cstore, copt.t, &copt.m, &copt.v).map_err(
                    |_| {
                        TrainerError::Checkpoint(CheckpointError::Inconsistent(
                            "curiosity Adam moments don't match the model",
                        ))
                    },
                )?;
            }
        }
        if !ck.rng_states.is_empty() {
            self.executor.restore_rngs(&ck.rng_states)?;
        }
        self.episodes = ck.episodes as usize;
        self.rounds = ck.rounds;
        self.executor.set_round(ck.rounds);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tiny_trainer(curiosity: CuriosityChoice, reward: RewardMode, employees: usize) -> Trainer {
        let mut env = EnvConfig::tiny();
        env.horizon = 12;
        let mut cfg = TrainerConfig::drl_cews(env).quick();
        cfg.curiosity = curiosity;
        cfg.reward_mode = reward;
        cfg.num_employees = employees;
        Trainer::new(cfg).unwrap()
    }

    #[test]
    fn new_rejects_invalid_configs_with_typed_errors() {
        let mut env = EnvConfig::tiny();
        env.grid = 0;
        let err = match Trainer::new(TrainerConfig::drl_cews(env)) {
            Err(e) => e,
            Ok(_) => panic!("zero-grid config must be rejected"),
        };
        assert!(matches!(err, TrainerError::Env(EnvError::InvalidConfig(_))), "{err}");

        let mut cfg = TrainerConfig::drl_cews(EnvConfig::tiny()).quick();
        cfg.num_employees = 0;
        let err = match Trainer::new(cfg) {
            Err(e) => e,
            Ok(_) => panic!("zero-employee config must be rejected"),
        };
        assert_eq!(err, TrainerError::Chief(ChiefError::NoEmployees));
        // The chain is inspectable through std::error::Error::source.
        let src = std::error::Error::source(&err).map(ToString::to_string);
        assert_eq!(src.as_deref(), Some("need at least one employee"));
    }

    #[test]
    fn presets_match_paper_settings() {
        let cews = TrainerConfig::drl_cews(EnvConfig::paper_default());
        assert_eq!(cews.reward_mode, RewardMode::Sparse);
        assert_eq!(cews.num_employees, 8);
        assert_eq!(cews.curiosity, CuriosityChoice::paper_spatial());
        let dppo = TrainerConfig::dppo(EnvConfig::paper_default());
        assert_eq!(dppo.reward_mode, RewardMode::Dense);
        assert_eq!(dppo.curiosity, CuriosityChoice::None);
        assert_eq!(dppo.ppo.minibatch, 250);
        assert!(dppo.ppo.normalize_adv);
    }

    #[test]
    fn train_episode_produces_stats_and_moves_params() {
        let mut t = tiny_trainer(CuriosityChoice::paper_spatial(), RewardMode::Sparse, 2);
        let before = t.store().flat_values();
        let stats = t.train_episode().unwrap();
        assert_eq!(t.episodes_trained(), 1);
        assert!(stats.int_reward > 0.0, "spatial curiosity must pay out early");
        assert!((0.0..=1.0).contains(&stats.kappa));
        assert_ne!(t.store().flat_values(), before, "global params did not move");
        assert_eq!(t.history().len(), 1);
    }

    #[test]
    fn curiosity_params_are_trained_too() {
        let mut t = tiny_trainer(CuriosityChoice::paper_spatial(), RewardMode::Sparse, 2);
        let before = t.curiosity.params().flat_values();
        t.train_episode().unwrap();
        assert_ne!(t.curiosity.params().flat_values(), before, "curiosity params frozen");
    }

    #[test]
    fn dense_no_curiosity_variant_runs() {
        let mut t = tiny_trainer(CuriosityChoice::None, RewardMode::Dense, 2);
        let stats = t.train_episode().unwrap();
        assert_eq!(stats.int_reward, 0.0);
    }

    #[test]
    fn single_employee_works() {
        let mut t = tiny_trainer(CuriosityChoice::None, RewardMode::Sparse, 1);
        t.train(2).unwrap();
        assert_eq!(t.episodes_trained(), 2);
    }

    #[test]
    fn checkpoint_roundtrip_restores_policy() {
        let mut t = tiny_trainer(CuriosityChoice::None, RewardMode::Dense, 2);
        t.train_episode().unwrap();
        let ckpt = t.checkpoint();
        let saved = t.store().flat_values();
        t.train_episode().unwrap(); // diverge
        assert_ne!(t.store().flat_values(), saved);
        t.restore(&ckpt).unwrap();
        assert_eq!(t.store().flat_values(), saved);
    }

    #[test]
    fn rnd_and_icm_variants_run() {
        for choice in [
            CuriosityChoice::Rnd { eta: 0.3 },
            CuriosityChoice::Icm { eta: 0.3 },
            CuriosityChoice::Count { eta: 0.3 },
        ] {
            let mut t = tiny_trainer(choice, RewardMode::Sparse, 1);
            let stats = t.train_episode().unwrap();
            assert!(stats.int_reward > 0.0, "{} produced no intrinsic reward", choice.label());
        }
    }

    #[test]
    fn curiosity_labels() {
        assert_eq!(CuriosityChoice::paper_spatial().label(), "shared-embedding");
        assert_eq!(CuriosityChoice::None.label(), "none");
        assert_eq!(CuriosityChoice::Rnd { eta: 0.1 }.label(), "rnd");
    }
}
