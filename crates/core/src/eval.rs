//! Evaluation of trained policies (the testing process of Section VI-D):
//! only the policy network π drives the workers; the environment supplies
//! states and metrics.

use crate::trainer::Trainer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::scheduler::Scheduler;
use vc_env::prelude::*;
use vc_nn::prelude::*;
use vc_rl::prelude::*;

/// A trained actor–critic wrapped as a [`Scheduler`], so learned policies
/// and engineered baselines run through the same evaluation harness.
pub struct PolicyScheduler {
    net: ActorCritic,
    store: ParamStore,
    opts: PolicyOptions,
    rng: StdRng,
    name: &'static str,
}

impl PolicyScheduler {
    /// Wraps a network + parameters. Evaluation uses stochastic sampling by
    /// default (matching the paper's testing process, which keeps the policy
    /// distributional); `mask_invalid` should match the training setting.
    pub fn new(
        net: ActorCritic,
        store: ParamStore,
        greedy: bool,
        mask_invalid: bool,
        name: &'static str,
    ) -> Self {
        Self {
            net,
            store,
            opts: PolicyOptions {
                mode: if greedy { SampleMode::Greedy } else { SampleMode::Stochastic },
                mask_invalid,
            },
            rng: StdRng::seed_from_u64(0xE7A1),
            name,
        }
    }

    /// Snapshot of a trainer's current global policy, evaluated under the
    /// same action-validity masking it was trained with.
    pub fn from_trainer(trainer: &Trainer, name: &'static str) -> Self {
        Self::new(
            trainer.net().clone(),
            trainer.store().clone(),
            false,
            trainer.config().mask_invalid,
            name,
        )
    }
}

impl Scheduler for PolicyScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, _rng: &mut StdRng) -> Vec<WorkerAction> {
        sample_action(&self.net, &self.store, env, self.opts, &mut self.rng).actions
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Runs `episodes` evaluation episodes on the configured scenario and
/// returns the mean metrics. Episodes share the scenario (the paper
/// evaluates on the designed map it trained on) and differ only through the
/// schedulers' own stochasticity, seeded by `seed`.
pub fn evaluate(
    scheduler: &mut dyn Scheduler,
    env_cfg: &EnvConfig,
    episodes: usize,
    seed: u64,
) -> Metrics {
    assert!(episodes > 0, "need at least one evaluation episode");
    let mut env = CrowdsensingEnv::new(env_cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = Metrics::default();
    for _ep in 0..episodes {
        env.reset();
        let m = vc_baselines::scheduler::run_episode(scheduler, &mut env, &mut rng);
        acc.data_collection_ratio += m.data_collection_ratio;
        acc.remaining_data_ratio += m.remaining_data_ratio;
        acc.energy_efficiency += m.energy_efficiency;
        acc.fairness_index += m.fairness_index;
    }
    let n = episodes as f32;
    Metrics {
        data_collection_ratio: acc.data_collection_ratio / n,
        remaining_data_ratio: acc.remaining_data_ratio / n,
        energy_efficiency: acc.energy_efficiency / n,
        fairness_index: acc.fairness_index / n,
    }
}

/// Evaluates a policy network over `episodes` episodes run **in lockstep**:
/// every step encodes all still-running episodes, performs one batched
/// forward pass ([`sample_actions_batched`]) and advances each environment
/// with its own sampled action.
///
/// With `E` lockstep episodes each network evaluation amortizes over `E`
/// states, which is the batched-inference fast path the rollout benchmarks
/// measure. The kernels are batch-invariant, so with greedy sampling this
/// returns exactly the metrics of `episodes` sequential runs; stochastic
/// sampling draws from `rng_seed` in env-major order instead of
/// episode-major order, so individual episodes differ from a sequential run
/// while the distribution of outcomes does not.
pub fn evaluate_policy_batched(
    net: &ActorCritic,
    store: &ParamStore,
    env_cfg: &EnvConfig,
    opts: PolicyOptions,
    episodes: usize,
    rng_seed: u64,
) -> Metrics {
    assert!(episodes > 0, "need at least one evaluation episode");
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut envs: Vec<CrowdsensingEnv> =
        (0..episodes).map(|_| CrowdsensingEnv::new(env_cfg.clone())).collect();
    for env in &mut envs {
        env.reset();
    }

    loop {
        let active: Vec<usize> = (0..envs.len()).filter(|&i| !envs[i].done()).collect();
        if active.is_empty() {
            break;
        }
        let refs: Vec<&CrowdsensingEnv> = active.iter().map(|&i| &envs[i]).collect();
        let sampled = sample_actions_batched(net, store, &refs, opts, &mut rng);
        for (&i, s) in active.iter().zip(&sampled) {
            envs[i].step(&s.actions);
        }
    }

    let mut acc = Metrics::default();
    for env in &envs {
        let m = env.metrics();
        acc.data_collection_ratio += m.data_collection_ratio;
        acc.remaining_data_ratio += m.remaining_data_ratio;
        acc.energy_efficiency += m.energy_efficiency;
        acc.fairness_index += m.fairness_index;
    }
    let n = episodes as f32;
    Metrics {
        data_collection_ratio: acc.data_collection_ratio / n,
        remaining_data_ratio: acc.remaining_data_ratio / n,
        energy_efficiency: acc.energy_efficiency / n,
        fairness_index: acc.fairness_index / n,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::trainer::{CuriosityChoice, TrainerConfig};
    use vc_baselines::prelude::*;

    #[test]
    fn policy_scheduler_runs_episodes() {
        let mut env_cfg = EnvConfig::tiny();
        env_cfg.horizon = 10;
        let mut cfg = TrainerConfig::drl_cews(env_cfg.clone()).quick();
        cfg.curiosity = CuriosityChoice::None;
        let t = crate::trainer::Trainer::new(cfg).unwrap();
        let mut sched = PolicyScheduler::from_trainer(&t, "drl-cews");
        let m = evaluate(&mut sched, &env_cfg, 2, 0);
        assert!((0.0..=1.0).contains(&m.data_collection_ratio));
        assert_eq!(sched.name(), "drl-cews");
    }

    #[test]
    fn evaluate_averages_over_scenarios() {
        let mut env_cfg = EnvConfig::tiny();
        env_cfg.horizon = 20;
        env_cfg.num_pois = 40;
        let single = evaluate(&mut RandomScheduler, &env_cfg, 1, 3);
        let multi = evaluate(&mut RandomScheduler, &env_cfg, 4, 3);
        // Later episodes consume fresh scheduler randomness, so averaging
        // them in must shift the result away from the first draw.
        assert!((single.data_collection_ratio - multi.data_collection_ratio).abs() > 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_episodes_panics() {
        evaluate(&mut RandomScheduler, &EnvConfig::tiny(), 0, 0);
    }

    #[test]
    fn batched_greedy_eval_matches_sequential_eval() {
        let mut env_cfg = EnvConfig::tiny();
        env_cfg.horizon = 12;
        let mut cfg = TrainerConfig::drl_cews(env_cfg.clone()).quick();
        cfg.curiosity = CuriosityChoice::None;
        let t = crate::trainer::Trainer::new(cfg).unwrap();
        let opts = PolicyOptions { mode: SampleMode::Greedy, mask_invalid: true };

        let batched = evaluate_policy_batched(t.net(), t.store(), &env_cfg, opts, 3, 9);
        let mut sched =
            PolicyScheduler::new(t.net().clone(), t.store().clone(), true, true, "greedy");
        let sequential = evaluate(&mut sched, &env_cfg, 3, 9);

        // Greedy sampling ignores the RNG and the kernels are
        // batch-invariant, so lockstep and sequential evaluation must land
        // on identical metrics.
        assert_eq!(
            batched.data_collection_ratio.to_bits(),
            sequential.data_collection_ratio.to_bits()
        );
        assert_eq!(batched.energy_efficiency.to_bits(), sequential.energy_efficiency.to_bits());
        assert_eq!(batched.fairness_index.to_bits(), sequential.fairness_index.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn batched_zero_episodes_panics() {
        let env_cfg = EnvConfig::tiny();
        let mut cfg = TrainerConfig::drl_cews(env_cfg.clone()).quick();
        cfg.curiosity = CuriosityChoice::None;
        let t = crate::trainer::Trainer::new(cfg).unwrap();
        let opts = PolicyOptions::default();
        evaluate_policy_batched(t.net(), t.store(), &env_cfg, opts, 0, 0);
    }
}
