//! Experiment-result reporting: aligned terminal tables plus JSON dumps so
//! the regenerated numbers can be diffed against EXPERIMENTS.md.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A rectangular results table with a caption.
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Title printed above the table and stored in the JSON dump.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells; every row matches the header width.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.caption));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = writeln!(lock, "{}", self.render());
    }

    /// Writes the table as JSON next to the terminal output.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json)
    }
}

/// Formats an `f32` with 3 decimals (the paper's table precision).
pub fn f3(x: f32) -> String {
    format!("{x:.3}")
}

/// Formats an `f32` with 2 decimals.
pub fn f2(x: f32) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["algo", "kappa"]);
        t.push_row(vec!["greedy".into(), "0.123".into()]);
        t.push_row(vec!["drl-cews".into(), "0.9".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        let lines: Vec<&str> = r.lines().collect();
        // caption + header + separator + 2 rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_row_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("vc_report_test");
        let path = dir.join("t.json");
        t.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"caption\": \"demo\""));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(1.0), "1.00");
    }
}
