//! CSV export of training histories, so training curves (Figs. 4–5 style)
//! can be plotted from any run.

use std::io::Write;
use std::path::Path;
use vc_rl::chief::EpisodeStats;

/// CSV header matching [`write_csv`]'s columns.
pub const CSV_HEADER: &str = "episode,kappa,xi,rho,ext_reward,int_reward,collisions";

/// Renders a history as CSV text (header + one row per episode).
pub fn to_csv(history: &[EpisodeStats]) -> String {
    let mut out = String::with_capacity(32 * (history.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for (ep, s) in history.iter().enumerate() {
        out.push_str(&format!(
            "{ep},{:.6},{:.6},{:.6},{:.6},{:.6},{}\n",
            s.kappa, s.xi, s.rho, s.ext_reward, s.int_reward, s.collisions
        ));
    }
    out
}

/// Writes a history to a CSV file, creating parent directories.
pub fn write_csv(history: &[EpisodeStats], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(history).as_bytes())
}

/// Parses a CSV produced by [`to_csv`] back into stats (for tooling that
/// post-processes runs).
pub fn parse_csv(text: &str) -> Result<Vec<EpisodeStats>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    if header.trim() != CSV_HEADER {
        return Err(format!("unexpected header: {header}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 7 {
            return Err(format!("row {i}: expected 7 cells, got {}", cells.len()));
        }
        let f = |j: usize| -> Result<f32, String> {
            cells[j].parse().map_err(|e| format!("row {i} col {j}: {e}"))
        };
        out.push(EpisodeStats {
            kappa: f(1)?,
            xi: f(2)?,
            rho: f(3)?,
            ext_reward: f(4)?,
            int_reward: f(5)?,
            collisions: cells[6].parse().map_err(|e| format!("row {i} col 6: {e}"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> Vec<EpisodeStats> {
        vec![
            EpisodeStats {
                kappa: 0.1,
                xi: 0.9,
                rho: 0.05,
                ext_reward: 1.5,
                int_reward: 20.0,
                collisions: 3,
            },
            EpisodeStats {
                kappa: 0.4,
                xi: 0.6,
                rho: 0.2,
                ext_reward: 4.0,
                int_reward: 10.0,
                collisions: 0,
            },
        ]
    }

    #[test]
    fn csv_roundtrip() {
        let h = sample();
        let text = to_csv(&h);
        assert!(text.starts_with(CSV_HEADER));
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed[0].kappa - 0.1).abs() < 1e-6);
        assert_eq!(parsed[1].collisions, 0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("wrong,header\n1,2").is_err());
        let bad = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(parse_csv(&bad).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vc_training_log_test");
        let path = dir.join("run.csv");
        write_csv(&sample(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_csv(&text).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_history_is_header_only() {
        let text = to_csv(&[]);
        assert_eq!(text.trim(), CSV_HEADER);
        assert!(parse_csv(&text).unwrap().is_empty());
    }
}
