//! CSV export of training histories, so training curves (Figs. 4–5 style)
//! can be plotted from any run.
//!
//! Floats are written in Rust's shortest-round-trip form (`{:?}`), so
//! `parse_csv(to_csv(h))` reproduces `h` bit-exactly — a fixed-precision
//! format like `{:.6}` would silently lose the low mantissa bits and make
//! re-plotted curves drift from the run that produced them.

use std::io::Write;
use std::path::Path;
use vc_rl::chief::EpisodeStats;

/// CSV header matching [`write_csv`]'s columns.
pub const CSV_HEADER: &str = "episode,kappa,xi,rho,ext_reward,int_reward,collisions";

/// Renders one float in shortest-round-trip form (parses back bit-exactly).
fn fmt_f32(v: f32) -> String {
    format!("{v:?}")
}

/// Renders a history as CSV text (header + one row per episode).
pub fn to_csv(history: &[EpisodeStats]) -> String {
    let mut out = String::with_capacity(32 * (history.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for (ep, s) in history.iter().enumerate() {
        out.push_str(&format!(
            "{ep},{},{},{},{},{},{}\n",
            fmt_f32(s.kappa),
            fmt_f32(s.xi),
            fmt_f32(s.rho),
            fmt_f32(s.ext_reward),
            fmt_f32(s.int_reward),
            s.collisions
        ));
    }
    out
}

/// Writes a history to a CSV file, creating parent directories.
pub fn write_csv(history: &[EpisodeStats], path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_csv(history).as_bytes())
}

/// Parses a CSV produced by [`to_csv`] back into stats (for tooling that
/// post-processes runs). Non-finite cells are rejected: Rust's float parser
/// accepts `NaN`/`inf` spellings, but a training log containing them is
/// corrupt, not a curve.
pub fn parse_csv(text: &str) -> Result<Vec<EpisodeStats>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    if header.trim() != CSV_HEADER {
        return Err(format!("unexpected header: {header}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != 7 {
            return Err(format!("row {i}: expected 7 cells, got {}", cells.len()));
        }
        let f = |j: usize| -> Result<f32, String> {
            let v: f32 = cells[j].parse().map_err(|e| format!("row {i} col {j}: {e}"))?;
            if !v.is_finite() {
                return Err(format!("row {i} col {j}: non-finite value {:?}", cells[j]));
            }
            Ok(v)
        };
        out.push(EpisodeStats {
            kappa: f(1)?,
            xi: f(2)?,
            rho: f(3)?,
            ext_reward: f(4)?,
            int_reward: f(5)?,
            collisions: cells[6].parse().map_err(|e| format!("row {i} col 6: {e}"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn sample() -> Vec<EpisodeStats> {
        vec![
            EpisodeStats {
                kappa: 0.1,
                xi: 0.9,
                rho: 0.05,
                ext_reward: 1.5,
                int_reward: 20.0,
                collisions: 3,
            },
            EpisodeStats {
                kappa: 0.4,
                xi: 0.6,
                rho: 0.2,
                ext_reward: 4.0,
                int_reward: 10.0,
                collisions: 0,
            },
        ]
    }

    /// Asserts two stats are the same to the bit (NaN-free histories).
    fn assert_bit_equal(a: &EpisodeStats, b: &EpisodeStats, ctx: &str) {
        assert_eq!(a.kappa.to_bits(), b.kappa.to_bits(), "{ctx}: kappa");
        assert_eq!(a.xi.to_bits(), b.xi.to_bits(), "{ctx}: xi");
        assert_eq!(a.rho.to_bits(), b.rho.to_bits(), "{ctx}: rho");
        assert_eq!(a.ext_reward.to_bits(), b.ext_reward.to_bits(), "{ctx}: ext");
        assert_eq!(a.int_reward.to_bits(), b.int_reward.to_bits(), "{ctx}: int");
        assert_eq!(a.collisions, b.collisions, "{ctx}: collisions");
    }

    #[test]
    fn csv_roundtrip() {
        let h = sample();
        let text = to_csv(&h);
        assert!(text.starts_with(CSV_HEADER));
        assert_eq!(text.lines().count(), 3);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!((parsed[0].kappa - 0.1).abs() < 1e-6);
        assert_eq!(parsed[1].collisions, 0);
    }

    #[test]
    #[allow(clippy::excessive_precision)] // the full-mantissa literal IS the test
    fn csv_roundtrip_is_bit_exact_on_awkward_values() {
        // Values chosen to break fixed-precision formatting: subnormals,
        // maxima, values needing all 9 significant decimal digits.
        let h = vec![EpisodeStats {
            kappa: 0.1000000014901161, // f32 nearest to 0.1
            xi: f32::MIN_POSITIVE,
            rho: 1.0e-40,             // subnormal
            ext_reward: -f32::MAX,    // would format as garbage under {:.6}
            int_reward: 16_777_217.0, // 2^24 + 1 → rounds to 2^24 in f32
            collisions: u32::MAX,
        }];
        let parsed = parse_csv(&to_csv(&h)).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_bit_equal(&parsed[0], &h[0], "awkward");
    }

    #[test]
    fn csv_roundtrip_fuzz_bit_exact() {
        // Seeded xorshift over raw f32 bit patterns (finite only): the
        // round-trip must reproduce every episode bit for bit.
        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next_f32 = move || loop {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let v = f32::from_bits((s >> 32) as u32);
            if v.is_finite() {
                return v;
            }
        };
        for case in 0..200 {
            let h: Vec<EpisodeStats> = (0..5)
                .map(|_| EpisodeStats {
                    kappa: next_f32(),
                    xi: next_f32(),
                    rho: next_f32(),
                    ext_reward: next_f32(),
                    int_reward: next_f32(),
                    collisions: case,
                })
                .collect();
            let parsed = parse_csv(&to_csv(&h)).unwrap();
            assert_eq!(parsed.len(), h.len(), "case {case}");
            for (a, b) in parsed.iter().zip(&h) {
                assert_bit_equal(a, b, &format!("case {case}"));
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("wrong,header\n1,2").is_err());
        let bad = format!("{CSV_HEADER}\n1,2,3\n");
        assert!(parse_csv(&bad).is_err());
    }

    #[test]
    fn parse_rejects_malformed_rows() {
        // Too many cells.
        let bad = format!("{CSV_HEADER}\n0,1,2,3,4,5,6,7\n");
        assert!(parse_csv(&bad).unwrap_err().contains("expected 7 cells"));
        // Non-numeric float cell.
        let bad = format!("{CSV_HEADER}\n0,abc,0,0,0,0,0\n");
        assert!(parse_csv(&bad).unwrap_err().contains("col 1"));
        // Negative collision count (u32 column).
        let bad = format!("{CSV_HEADER}\n0,0,0,0,0,0,-1\n");
        assert!(parse_csv(&bad).unwrap_err().contains("col 6"));
    }

    #[test]
    fn parse_rejects_non_finite_cells() {
        for cell in ["NaN", "nan", "inf", "-inf", "infinity"] {
            let bad = format!("{CSV_HEADER}\n0,{cell},0,0,0,0,0\n");
            let err = parse_csv(&bad).unwrap_err();
            assert!(err.contains("non-finite"), "{cell}: {err}");
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("vc_training_log_test");
        let path = dir.join("run.csv");
        write_csv(&sample(), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_csv(&text).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_history_is_header_only() {
        let text = to_csv(&[]);
        assert_eq!(text.trim(), CSV_HEADER);
        assert!(parse_csv(&text).unwrap().is_empty());
    }
}
