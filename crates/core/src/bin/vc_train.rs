//! Train a DRL-CEWS (or variant) policy from the command line and compare
//! it against the engineered baselines.
//!
//! ```text
//! vc-train [--config ENV_JSON] [--episodes N] [--employees M] [--epochs K] [--minibatch B]
//!          [--lr F] [--ent F] [--eta F] [--reward sparse|dense]
//!          [--curiosity spatial|rnd|icm|none] [--mask] [--pois P]
//!          [--workers W] [--horizon T] [--seed S] [--log-every N]
//!          [--probe] [--save-ckpt PATH] [--load-ckpt PATH] [--save-csv PATH]
//!          [--record PATH]
//!          [--resume PATH] [--ckpt-every N] [--ckpt-keep K]
//!          [--round-timeout-ms MS] [--restart-budget N] [--inject SPEC]...
//!          [--telemetry-dir DIR] [--metrics-dump PATH]
//! ```
//!
//! Telemetry:
//!
//! * `--telemetry-dir DIR` enables the telemetry registry, streams one JSON
//!   line per update round (gather/apply/sync/broadcast timings, health
//!   counters) plus per-episode environment events to
//!   `DIR/round_timings.jsonl`, and writes a Prometheus-style dump of every
//!   metric to `DIR/metrics.prom` at exit.
//! * `--metrics-dump PATH` writes the Prometheus dump to PATH (also
//!   enables telemetry when `--telemetry-dir` is absent; no JSONL stream
//!   in that case).
//!
//! Fault tolerance & resume:
//!
//! * `--ckpt-every N` writes a durable v2 checkpoint (full training state:
//!   parameters, Adam moments, RNG streams, counters, config) every N
//!   episodes to `<base>.ep<E>`, where `<base>` is the `--save-ckpt` path
//!   (default `vc-train.ckpt`); `--ckpt-keep K` retains the last K (default
//!   3). Writes are atomic (tmp file + fsync + rename).
//! * `--resume PATH` rebuilds the trainer from a v2 checkpoint — including
//!   its embedded config, so the other training flags are ignored — and
//!   continues toward `--episodes` total episodes bit-exactly (for
//!   curiosity-free configs).
//! * `--inject SPEC` scripts a deterministic fault for testing recovery:
//!   `panic:J@K` (employee J panics at update round K), `stall:J@K:D`
//!   (stalls for D rounds), `nan:J@K` (emits NaN gradients). Repeatable.
//!   Pair stalls with `--round-timeout-ms` so the barrier can't wedge.

use drl_cews::prelude::*;
use vc_baselines::prelude::*;
use vc_env::prelude::*;
use vc_rl::chief::FaultKind;

/// Prints a CLI-level error and exits with status 2.
fn fail(msg: &str) -> ! {
    eprintln!("vc-train: {msg}");
    std::process::exit(2);
}

fn parse_f32(v: Option<String>, flag: &str) -> f32 {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| fail(&format!("{flag} needs a number")))
}

fn parse_usize(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| fail(&format!("{flag} needs an integer")))
}

fn need(v: Option<String>, what: &str) -> String {
    v.unwrap_or_else(|| fail(&format!("{what} needs a path")))
}

/// Parses a `--inject` spec: `panic:J@K`, `nan:J@K`, or `stall:J@K:D`.
fn parse_inject(spec: &str) -> Option<(usize, u64, FaultKind)> {
    let (kind, rest) = spec.split_once(':')?;
    let (target, kind) = match kind {
        "panic" => (rest, FaultKind::Panic),
        "nan" => (rest, FaultKind::NanGrads),
        "stall" => {
            let (target, dur) = rest.rsplit_once(':')?;
            (target, FaultKind::Stall { rounds: dur.parse().ok()? })
        }
        _ => return None,
    };
    let (j, k) = target.split_once('@')?;
    Some((j.parse().ok()?, k.parse().ok()?, kind))
}

fn main() {
    let mut env = EnvConfig::paper_default();
    env.num_pois = 100;
    env.horizon = 200;
    let mut cfg = TrainerConfig::drl_cews(env);
    cfg.num_employees = 2;
    cfg.ppo.epochs = 2;
    cfg.ppo.minibatch = 64;
    let mut episodes = 300usize;
    let mut log_every = 10usize;
    let mut probe = false;
    let mut save_ckpt: Option<String> = None;
    let mut load_ckpt: Option<String> = None;
    let mut save_csv: Option<String> = None;
    let mut record: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut ckpt_every: Option<usize> = None;
    let mut ckpt_keep = 3usize;
    let mut telemetry_dir: Option<String> = None;
    let mut metrics_dump: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--config" => {
                // Load a full EnvConfig from JSON (as produced by serde /
                // MapBuilder::config); later flags may still override fields.
                let path = need(args.next(), "--config");
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
                cfg.env = serde_json::from_str(&json)
                    .unwrap_or_else(|e| fail(&format!("invalid EnvConfig JSON in {path}: {e}")));
            }
            "--episodes" => episodes = parse_usize(args.next(), "--episodes"),
            "--employees" => cfg.num_employees = parse_usize(args.next(), "--employees"),
            "--epochs" => cfg.ppo.epochs = parse_usize(args.next(), "--epochs"),
            "--minibatch" => cfg.ppo.minibatch = parse_usize(args.next(), "--minibatch"),
            "--lr" => cfg.ppo.lr = parse_f32(args.next(), "--lr"),
            "--gamma" => cfg.ppo.gamma = parse_f32(args.next(), "--gamma"),
            "--ent" => cfg.ppo.ent_coef = parse_f32(args.next(), "--ent"),
            "--eta" => {
                let eta = parse_f32(args.next(), "--eta");
                cfg.curiosity = match cfg.curiosity {
                    CuriosityChoice::Spatial { feature, structure, .. } => {
                        CuriosityChoice::Spatial { feature, structure, eta }
                    }
                    CuriosityChoice::Rnd { .. } => CuriosityChoice::Rnd { eta },
                    CuriosityChoice::Icm { .. } => CuriosityChoice::Icm { eta },
                    CuriosityChoice::Count { .. } => CuriosityChoice::Count { eta },
                    CuriosityChoice::None => CuriosityChoice::None,
                };
            }
            "--reward" => {
                cfg.reward_mode = match args.next().as_deref() {
                    Some("sparse") => vc_env::reward::RewardMode::Sparse,
                    Some("dense") => vc_env::reward::RewardMode::Dense,
                    other => fail(&format!("--reward sparse|dense, got {other:?}")),
                };
            }
            "--curiosity" => {
                cfg.curiosity = match args.next().as_deref() {
                    Some("spatial") => CuriosityChoice::paper_spatial(),
                    Some("rnd") => CuriosityChoice::Rnd { eta: 0.3 },
                    Some("icm") => CuriosityChoice::Icm { eta: 0.3 },
                    Some("count") => CuriosityChoice::Count { eta: 0.3 },
                    Some("none") => CuriosityChoice::None,
                    other => {
                        fail(&format!("--curiosity spatial|rnd|icm|count|none, got {other:?}"))
                    }
                };
            }
            "--mask" => cfg.mask_invalid = true,
            "--clip-value" => cfg.ppo.clip_value = true,
            "--pois" => cfg.env.num_pois = parse_usize(args.next(), "--pois"),
            "--workers" => cfg.env.num_workers = parse_usize(args.next(), "--workers"),
            "--horizon" => cfg.env.horizon = parse_usize(args.next(), "--horizon"),
            "--seed" => cfg.seed = parse_usize(args.next(), "--seed") as u64,
            "--log-every" => log_every = parse_usize(args.next(), "--log-every"),
            "--probe" => probe = true,
            "--save-ckpt" => save_ckpt = Some(need(args.next(), "--save-ckpt")),
            "--load-ckpt" => load_ckpt = Some(need(args.next(), "--load-ckpt")),
            "--save-csv" => save_csv = Some(need(args.next(), "--save-csv")),
            "--record" => record = Some(need(args.next(), "--record")),
            "--resume" => resume = Some(need(args.next(), "--resume")),
            "--ckpt-every" => ckpt_every = Some(parse_usize(args.next(), "--ckpt-every")),
            "--ckpt-keep" => ckpt_keep = parse_usize(args.next(), "--ckpt-keep"),
            "--round-timeout-ms" => {
                cfg.fault.round_timeout_ms =
                    Some(parse_usize(args.next(), "--round-timeout-ms") as u64);
            }
            "--restart-budget" => {
                cfg.fault.restart_budget = parse_usize(args.next(), "--restart-budget");
            }
            "--telemetry-dir" => telemetry_dir = Some(need(args.next(), "--telemetry-dir")),
            "--metrics-dump" => metrics_dump = Some(need(args.next(), "--metrics-dump")),
            "--inject" => {
                let spec = need(args.next(), "--inject");
                let (employee, round, kind) = parse_inject(&spec).unwrap_or_else(|| {
                    fail(&format!("--inject wants panic:J@K, nan:J@K or stall:J@K:D, got {spec:?}"))
                });
                cfg.fault.faults = cfg.fault.faults.clone().with(employee, round, kind);
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }

    // Telemetry: enabled by either flag; the JSONL stream needs a dir.
    let telemetry = if telemetry_dir.is_some() || metrics_dump.is_some() {
        let t = vc_telemetry::Telemetry::new();
        if let Some(dir) = &telemetry_dir {
            let path = std::path::Path::new(dir).join("round_timings.jsonl");
            t.attach_jsonl(&path)
                .unwrap_or_else(|e| fail(&format!("cannot open {}: {e}", path.display())));
        }
        Some(t)
    } else {
        None
    };
    let handle = telemetry.clone().unwrap_or_else(vc_telemetry::Telemetry::off);

    let mut trainer = match &resume {
        Some(path) => {
            let data = std::fs::read(path)
                .unwrap_or_else(|e| fail(&format!("cannot read checkpoint {path}: {e}")));
            let t = Trainer::resume_from_with_telemetry(&data, handle.clone())
                .unwrap_or_else(|e| fail(&format!("cannot resume from {path}: {e}")));
            println!(
                "resumed from {path}: {} episodes / {} rounds trained (training flags other \
                 than --episodes come from the checkpoint)",
                t.episodes_trained(),
                t.rounds_trained()
            );
            t
        }
        None => Trainer::with_telemetry(cfg, handle.clone())
            .unwrap_or_else(|e| fail(&format!("cannot start trainer: {e}"))),
    };
    // Print the banner from the trainer's own config: on --resume it comes
    // from the checkpoint, not from the command line.
    let tcfg = trainer.config();
    println!(
        "training: {} reward, curiosity={}, M={}, K={}, batch={}, lr={}, ent={}, mask={}, \
         env: W={} P={} T={}",
        match tcfg.reward_mode {
            vc_env::reward::RewardMode::Sparse => "sparse",
            vc_env::reward::RewardMode::Dense => "dense",
        },
        tcfg.curiosity.label(),
        tcfg.num_employees,
        tcfg.ppo.epochs,
        tcfg.ppo.minibatch,
        tcfg.ppo.lr,
        tcfg.ppo.ent_coef,
        tcfg.mask_invalid,
        tcfg.env.num_workers,
        tcfg.env.num_pois,
        tcfg.env.horizon,
    );
    let env = trainer.config().env.clone();
    if let Some(path) = load_ckpt {
        let data = std::fs::read(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read checkpoint {path}: {e}")));
        trainer
            .restore(&data)
            .unwrap_or_else(|e| fail(&format!("cannot restore checkpoint {path}: {e:?}")));
        println!("restored policy from {path} (pass --episodes 0 to evaluate only)");
    }
    let ckpt_base = save_ckpt.clone().unwrap_or_else(|| "vc-train.ckpt".to_owned());
    let mut rotated: Vec<String> = Vec::new();
    let start = std::time::Instant::now();
    let first_ep = trainer.episodes_trained();
    for ep in first_ep..episodes.max(first_ep) {
        let s = trainer
            .train_episode()
            .unwrap_or_else(|e| fail(&format!("training failed at episode {ep}: {e}")));
        if let Some(every) = ckpt_every {
            if every > 0 && (ep + 1) % every == 0 {
                let bytes = trainer
                    .checkpoint_v2()
                    .unwrap_or_else(|e| fail(&format!("cannot snapshot training state: {e}")));
                let path = format!("{ckpt_base}.ep{}", ep + 1);
                vc_nn::serialize::write_checkpoint_file(std::path::Path::new(&path), &bytes)
                    .unwrap_or_else(|e| fail(&format!("cannot write checkpoint {path}: {e}")));
                println!("checkpoint (v2, resumable) -> {path}");
                rotated.push(path);
                while rotated.len() > ckpt_keep.max(1) {
                    std::fs::remove_file(rotated.remove(0)).ok();
                }
            }
        }
        if ep % log_every == 0 || ep + 1 == episodes {
            let probe_err = if probe {
                trainer.curiosity().as_spatial().map(|sp| {
                    let mut total = 0.0f32;
                    let mut n = 0;
                    for i in 0..8 {
                        for mv in [1usize, 3, 5, 7] {
                            let x = 1.0 + i as f32 * 1.8;
                            let from = vc_env::geometry::Point::new(x, x);
                            let (dx, dy) = vc_env::action::Move::from_index(mv).displacement(1.0);
                            let to = from.offset(dx, dy);
                            total += sp.prediction_error(0, &from, mv, &to);
                            n += 1;
                        }
                    }
                    total / n as f32
                })
            } else {
                None
            };
            println!(
                "episode {ep:>4}: kappa={:.3} xi={:.3} rho={:.3} r_ext={:+.2} r_int={:.2} coll={}{}",
                s.kappa, s.xi, s.rho, s.ext_reward, s.int_reward, s.collisions,
                probe_err.map(|e| format!(" probe_err={e:.3}")).unwrap_or_default()
            );
        }
    }
    println!(
        "trained {} episodes ({} total) in {:.1}s{}",
        trainer.episodes_trained() - first_ep,
        trainer.episodes_trained(),
        start.elapsed().as_secs_f32(),
        if trainer.restarts_used() > 0 {
            format!(", {} employee respawn(s)", trainer.restarts_used())
        } else {
            String::new()
        }
    );

    if let Some(path) = save_ckpt {
        // Atomic write: a crash here can never truncate an existing
        // checkpoint.
        vc_nn::serialize::write_checkpoint_file(std::path::Path::new(&path), &trainer.checkpoint())
            .unwrap_or_else(|e| fail(&format!("cannot write checkpoint {path}: {e}")));
        println!("checkpoint -> {path}");
    }
    if let Some(path) = save_csv {
        drl_cews::training_log::write_csv(trainer.history(), std::path::Path::new(&path))
            .unwrap_or_else(|e| fail(&format!("cannot write training CSV {path}: {e}")));
        println!("training curve -> {path}");
    }
    if let Some(path) = record {
        // Record one evaluation episode with the trained policy.
        use rand::SeedableRng;
        use vc_rl::prelude::*;
        let mut rec_env = vc_env::env::CrowdsensingEnv::new(env.clone());
        let mut recorder = vc_env::recording::Recorder::new(&rec_env);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let opts = PolicyOptions {
            mode: SampleMode::Stochastic,
            mask_invalid: trainer.config().mask_invalid,
        };
        while !rec_env.done() {
            let a = sample_action(trainer.net(), trainer.store(), &rec_env, opts, &mut rng);
            recorder.log(&a.actions);
            rec_env.step(&a.actions);
        }
        let recording = recorder.finish(&rec_env);
        let json = recording
            .to_json()
            .unwrap_or_else(|e| fail(&format!("cannot serialize recording: {e}")));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| fail(&format!("cannot write recording {path}: {e}")));
        println!("evaluation recording -> {path} (replay with vc_replay)");
    }

    let mut policy = PolicyScheduler::from_trainer(&trainer, "trained");
    for (name, m) in [
        ("trained", evaluate(&mut policy, &env, 4, 1)),
        ("d&c", evaluate(&mut DncScheduler::default(), &env, 4, 1)),
        ("greedy", evaluate(&mut GreedyScheduler, &env, 4, 1)),
        ("random", evaluate(&mut RandomScheduler, &env, 4, 1)),
    ] {
        println!(
            "  {name:>8}: kappa={:.3} xi={:.3} rho={:.3}",
            m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
        );
    }

    if let Some(t) = &telemetry {
        trainer.publish_kernel_telemetry();
        t.flush().unwrap_or_else(|e| fail(&format!("cannot flush telemetry log: {e}")));
        let mut prom_paths: Vec<std::path::PathBuf> = Vec::new();
        if let Some(dir) = &telemetry_dir {
            prom_paths.push(std::path::Path::new(dir).join("metrics.prom"));
            println!("round timings -> {dir}/round_timings.jsonl");
        }
        if let Some(path) = &metrics_dump {
            prom_paths.push(std::path::PathBuf::from(path));
        }
        for path in prom_paths {
            t.write_prometheus(&path)
                .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
            println!("metrics dump -> {}", path.display());
        }
    }
}
