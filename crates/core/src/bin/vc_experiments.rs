//! Command-line harness regenerating every table and figure of the paper.
//!
//! ```text
//! vc-experiments <experiment> [--scale smoke|quick|full] [--out DIR]
//!
//! experiments:
//!   table2    Table II  (#employees x batch size)
//!   fig2c     Fig. 2(c) (trajectories)
//!   fig3      Fig. 3    (training time vs #employees)
//!   fig4      Fig. 4    (curiosity feature selection)
//!   fig5      Fig. 5    (dense/sparse reward x curiosity)
//!   fig678    Figs. 6-8 (all four sweeps, all five algorithms)
//!   sweep:<axis>  one sweep only (axis: pois|workers|budget|stations)
//!   fig9      Fig. 9    (curiosity heat maps)
//!   ablations masking / identity-mark / eta ablations (DESIGN.md)
//!   all       everything above
//! ```

use drl_cews::experiments::{ablations, fig2c, fig3, fig4, fig5, fig9, sweeps, table2, Scale};
use drl_cews::report::Table;
use std::path::PathBuf;

struct Args {
    experiment: String,
    scale: Scale,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut scale = Scale::quick();
    let mut out = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let name = args.next().ok_or("--scale needs a value")?;
                scale = Scale::from_name(&name)
                    .ok_or_else(|| format!("unknown scale '{name}' (smoke|quick|full)"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(args.next().ok_or("--out needs a directory")?));
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(Args { experiment, scale, out })
}

fn usage() -> String {
    "usage: vc-experiments <table2|fig2c|fig3|fig4|fig5|fig678|sweep:<axis>|fig9|ablations|all> \
     [--scale smoke|quick|full] [--out DIR]"
        .to_string()
}

fn emit(table: &Table, out: &Option<PathBuf>, slug: &str) {
    table.print();
    if let Some(dir) = out {
        let path = dir.join(format!("{slug}.json"));
        match table.write_json(&path) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn run_experiment(name: &str, scale: &Scale, out: &Option<PathBuf>) -> Result<(), String> {
    let train_err = |e: drl_cews::trainer::TrainerError| format!("{name} failed: {e}");
    match name {
        "table2" => emit(&table2::run(scale).map_err(train_err)?, out, "table2"),
        "fig3" => emit(&fig3::run(scale).map_err(train_err)?, out, "fig3"),
        "fig4" => emit(&fig4::run(scale).map_err(train_err)?, out, "fig4"),
        "fig5" => emit(&fig5::run(scale).map_err(train_err)?, out, "fig5"),
        "fig2c" => {
            let (table, run) = fig2c::run(scale).map_err(train_err)?;
            emit(&table, out, "fig2c");
            for w in 0..run.env_cfg.num_workers {
                println!("worker {w} trajectory:");
                println!("{}\n", run.trajectory.ascii(&run.env_cfg, w));
            }
        }
        "fig9" => {
            let (table, snaps) = fig9::run(scale).map_err(train_err)?;
            emit(&table, out, "fig9");
            for (label, snap) in &snaps {
                println!("{label} @ episode {} (curiosity heat map):", snap.episode);
                println!("{}\n", snap.heatmap.ascii());
            }
        }
        "ablations" => {
            for (i, t) in ablations::run(scale).map_err(train_err)?.iter().enumerate() {
                emit(t, out, &format!("ablation_{i}"));
            }
        }
        "fig678" => {
            for axis in sweeps::Axis::ALL {
                let t = sweeps::run(scale, axis).map_err(train_err)?;
                emit(&t, out, &format!("fig678_{}", axis.label()));
            }
        }
        other => {
            if let Some(axis_name) = other.strip_prefix("sweep:") {
                let axis = sweeps::Axis::from_name(axis_name)
                    .ok_or_else(|| format!("unknown sweep axis '{axis_name}'"))?;
                let t = sweeps::run(scale, axis).map_err(train_err)?;
                emit(&t, out, &format!("fig678_{axis_name}"));
            } else {
                return Err(format!("unknown experiment '{other}'\n{}", usage()));
            }
        }
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let list: Vec<String> = if args.experiment == "all" {
        ["table2", "fig2c", "fig3", "fig4", "fig5", "fig678", "fig9", "ablations"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        vec![args.experiment.clone()]
    };
    for name in list {
        println!("### {name} (scale: {} episodes) ###\n", args.scale.train_episodes);
        if let Err(e) = run_experiment(&name, &args.scale, &args.out) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
