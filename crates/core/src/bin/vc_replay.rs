//! Replay a recorded episode (`vc-env` `Recording` JSON) and print its
//! audit: per-worker summary, final metrics, and ASCII trajectories.
//!
//! ```text
//! vc_replay <recording.json>
//! ```
//!
//! Recordings are produced by `vc_train --record <path>` or programmatically
//! via `vc_env::recording::Recorder`.

use vc_env::prelude::*;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: vc_replay <recording.json>");
            std::process::exit(2);
        }
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let recording = match Recording::from_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("invalid recording: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "replaying {} slots on a {}x{} map (W={}, P={})",
        recording.len(),
        recording.config.size_x,
        recording.config.size_y,
        recording.config.num_workers,
        recording.config.num_pois
    );

    let mut summary = EpisodeSummary::new(recording.config.num_workers);
    let mut trajectory = Trajectory::new(recording.config.num_workers);
    let env = recording.replay(|env, result| {
        if trajectory.is_empty() {
            // Seed tracks with the post-first-step positions; the recording
            // itself pins the start via the config seed.
            trajectory.record(env.workers().iter().map(|w| w.pos));
        } else {
            trajectory.record(env.workers().iter().map(|w| w.pos));
        }
        summary.record(result);
    });

    let m = env.metrics();
    println!(
        "metrics: kappa={:.3} xi={:.3} rho={:.3} (verified against the recording)",
        m.data_collection_ratio, m.remaining_data_ratio, m.energy_efficiency
    );
    println!("episode: {}", summary.digest());
    for w in 0..recording.config.num_workers {
        println!("\nworker {w} path:");
        println!("{}", trajectory.ascii(&recording.config, w));
    }
}
