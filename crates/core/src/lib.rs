//! # drl-cews — Curiosity-Driven Energy-Efficient Worker Scheduling
//!
//! The primary contribution of the ICDE 2020 paper, assembled from the
//! workspace substrates:
//!
//! * [`trainer::Trainer`] — the chief–employee training loop combining PPO
//!   ([`vc_rl`]), the spatial curiosity model ([`vc_curiosity`]) and the
//!   sparse extrinsic reward ([`vc_env::reward`]); the DPPO comparator is
//!   the same trainer with [`trainer::TrainerConfig::dppo`].
//! * [`eval`] — the testing process of Section VI-D plus a [`vc_baselines`]
//!   `Scheduler` adapter so learned and engineered policies share one
//!   evaluation harness.
//! * [`experiments`] — one module per table/figure of Section VII, each
//!   regenerating the corresponding rows; driven by the `vc-experiments`
//!   binary.
//!
//! ```
//! use drl_cews::prelude::*;
//! use vc_env::prelude::*;
//!
//! // Train DRL-CEWS briefly on a small scenario and evaluate the policy.
//! let mut env = EnvConfig::tiny();
//! env.horizon = 10;
//! let mut cfg = TrainerConfig::drl_cews(env.clone()).quick();
//! cfg.num_employees = 1;
//! let mut trainer = Trainer::new(cfg).unwrap();
//! let stats = trainer.train(2).unwrap();
//! assert_eq!(stats.len(), 2);
//!
//! let mut policy = PolicyScheduler::from_trainer(&trainer, "drl-cews");
//! let metrics = evaluate(&mut policy, &env, 1, 0);
//! assert!(metrics.data_collection_ratio >= 0.0);
//! ```

pub mod eval;
pub mod experiments;
pub mod report;
pub mod serving;
pub mod trainer;
pub mod training_log;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::eval::{evaluate, PolicyScheduler};
    pub use crate::serving::{ArtifactError, PolicyArtifact};
    pub use crate::trainer::{CuriosityChoice, FaultConfig, Trainer, TrainerConfig, TrainerError};
}
