//! Wire protocol: length-prefixed JSON frames over a byte stream.
//!
//! Every frame is a little-endian `u32` payload length followed by exactly
//! that many bytes of UTF-8 JSON. The length is capped at
//! [`MAX_FRAME_BYTES`]; an oversized or unparsable frame is a *client*
//! error answered with a typed [`WireError`], never a daemon crash. The
//! same codec serves both directions, so the load generator and tests
//! reuse it via [`crate::client`].

use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Hard cap on one frame's payload (1 MiB). Large enough for thousands of
/// workers per request, small enough that a hostile length prefix cannot
/// balloon allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Framing-layer failures (I/O and length violations; JSON errors are
/// handled one level up so the connection can answer them in-band).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed or timed out.
    Io(io::Error),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The claimed payload length.
        claimed: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::Closed => write!(f, "peer closed the stream"),
            FrameError::TooLarge { claimed } => {
                write!(f, "frame of {claimed} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Closed`] on clean EOF before a prefix, [`FrameError::Io`]
/// on stream errors (including read timeouts from a wedged peer), and
/// [`FrameError::TooLarge`] for hostile length prefixes — the payload is
/// not read in that case, so the connection must be dropped afterwards.
pub fn read_frame<S: Read>(stream: &mut S) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(FrameError::Closed),
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { claimed: len });
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes one length-prefixed frame as a single buffered write.
///
/// # Errors
///
/// Any I/O error from the underlying stream.
pub fn write_frame<S: Write>(stream: &mut S, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// One worker's reported state in a fleet snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerState {
    /// Position x.
    pub x: f32,
    /// Position y.
    pub y: f32,
    /// Remaining energy (clamped to the scenario's battery capacity).
    pub energy: f32,
}

/// A "schedule my fleet" request: the client reports observed fleet state
/// and the daemon projects it onto the policy's training scenario before
/// inference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// Client-chosen correlation id, echoed in every reply.
    pub id: u64,
    /// Per-request deadline in milliseconds from admission; `0` selects
    /// the daemon's default. Requests still queued past their deadline are
    /// shed with [`WireError::DeadlineExceeded`].
    pub deadline_ms: u64,
    /// Fleet snapshot; length must equal the policy's worker count.
    pub workers: Vec<WorkerState>,
    /// Remaining-data levels per PoI (extra entries ignored, missing ones
    /// keep scenario defaults).
    pub poi_data: Vec<f32>,
}

/// Client → daemon messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Schedule one fleet snapshot.
    Schedule(ScheduleRequest),
    /// Hot-reload weights from a checkpoint file on the daemon host.
    Reload {
        /// Path to the candidate v2 checkpoint.
        path: String,
    },
    /// Fetch daemon health/stats.
    Stats,
    /// Liveness probe.
    Ping,
}

/// One worker's decided action on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActionOut {
    /// Index into `Move::ALL` (0 = stay, then the 8 compass directions).
    pub move_index: u64,
    /// Whether the worker should charge this slot.
    pub charge: bool,
}

/// A successful scheduling decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReply {
    /// Echo of the request id.
    pub id: u64,
    /// `"policy"` for batched actor-critic inference, `"greedy"` when the
    /// shed ladder degraded this batch to the engineered baseline.
    pub mode: String,
    /// One action per worker.
    pub actions: Vec<ActionOut>,
    /// Milliseconds the request waited in the admission queue.
    pub queued_ms: f64,
}

/// Typed rejections — every admitted request that cannot be scheduled gets
/// exactly one of these instead of silence.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// The bounded admission queue is full; retry after the hint.
    QueueFull {
        /// Echo of the request id.
        id: u64,
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
    },
    /// The request sat in the queue past its deadline and was shed.
    DeadlineExceeded {
        /// Echo of the request id.
        id: u64,
        /// How long it actually waited before being shed.
        waited_ms: u64,
    },
    /// The request was structurally invalid for this daemon's scenario.
    BadRequest {
        /// Echo of the request id (0 when the frame never parsed).
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The daemon failed internally (e.g. both the policy batch and the
    /// greedy fallback panicked); the request was consumed.
    Internal {
        /// Echo of the request id.
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The daemon is draining for shutdown and no longer admits work.
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
}

impl WireError {
    /// The correlation id this rejection answers.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            WireError::QueueFull { id, .. }
            | WireError::DeadlineExceeded { id, .. }
            | WireError::BadRequest { id, .. }
            | WireError::Internal { id, .. }
            | WireError::ShuttingDown { id } => id,
        }
    }
}

/// Daemon health snapshot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Weight generation (increments on every successful hot-reload).
    pub generation: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Whether the shed ladder is currently degraded to greedy.
    pub degraded: bool,
    /// Requests admitted so far.
    pub admitted: u64,
    /// Requests shed (deadline + queue-full) so far.
    pub shed: u64,
}

/// Daemon → client messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A scheduling decision.
    Schedule(ScheduleReply),
    /// A typed rejection.
    Rejected(WireError),
    /// Hot-reload outcome: `ok == false` means the reload was rejected and
    /// the previous weights remain live (`detail` says why).
    Reloaded {
        /// Whether the swap happened.
        ok: bool,
        /// Generation now live / rejection reason.
        detail: String,
    },
    /// Health snapshot.
    Stats(StatsReply),
    /// Liveness answer.
    Pong,
}

/// Serializes a [`Response`] to JSON bytes.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    // The shim's serializer only fails on unrepresentable values, which
    // none of our wire types contain; an empty frame decodes to `None` on
    // the peer, which handles it as a bad response.
    serde_json::to_string(resp).map(String::into_bytes).unwrap_or_default()
}

/// Serializes a [`Request`] to JSON bytes.
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req).map(String::into_bytes).unwrap_or_default()
}

/// Parses a request frame; `None` when the payload is not valid
/// UTF-8/JSON for a [`Request`].
#[must_use]
pub fn decode_request(payload: &[u8]) -> Option<Request> {
    let text = std::str::from_utf8(payload).ok()?;
    serde_json::from_str(text).ok()
}

/// Parses a response frame; `None` on malformed payloads.
#[must_use]
pub fn decode_response(payload: &[u8]) -> Option<Response> {
    let text = std::str::from_utf8(payload).ok()?;
    serde_json::from_str(text).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn requests_and_responses_round_trip_json() {
        let req = Request::Schedule(ScheduleRequest {
            id: 7,
            deadline_ms: 50,
            workers: vec![WorkerState { x: 1.0, y: 2.0, energy: 0.5 }],
            poi_data: vec![0.25, 0.75],
        });
        let back = decode_request(&encode_request(&req)).unwrap();
        assert_eq!(back, req);

        let resp = Response::Rejected(WireError::DeadlineExceeded { id: 7, waited_ms: 81 });
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            match back {
                Response::Rejected(e) => e.id(),
                _ => 0,
            },
            7
        );
    }

    #[test]
    fn garbage_payloads_decode_to_none() {
        assert!(decode_request(b"\xFF\xFE").is_none());
        assert!(decode_request(b"{\"nope\":1}").is_none());
        assert!(decode_response(b"[1,2").is_none());
    }
}
