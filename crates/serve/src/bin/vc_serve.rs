//! `vc_serve` — the fleet-scheduling daemon.
//!
//! ```text
//! vc_serve --checkpoint ck.v2 [--tcp 127.0.0.1:7477] [--uds /run/vc.sock]
//!          [--telemetry-jsonl serve.jsonl] [--queue-cap 64] [--batch-max 16]
//!          [--slo-ms 50] [--deadline-ms 200]
//! ```
//!
//! The daemon runs until stdin reaches EOF (systemd-friendly: closing the
//! handle requests shutdown), then drains gracefully within the shutdown
//! deadline. Signal-based shutdown (SIGTERM) cannot be caught without
//! `unsafe` (denied workspace-wide), so process managers should close
//! stdin or let `Drop` run; the drain guarantee is identical.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::time::Duration;
use vc_serve::prelude::*;
use vc_telemetry::Telemetry;

struct Args {
    checkpoint: PathBuf,
    tcp: Option<String>,
    uds: Option<PathBuf>,
    telemetry_jsonl: Option<PathBuf>,
    cfg: ServeConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: vc_serve --checkpoint <file.v2> [--tcp ADDR] [--uds PATH] \
         [--telemetry-jsonl PATH] [--queue-cap N] [--batch-max N] [--slo-ms N] \
         [--deadline-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut checkpoint = None;
    let mut tcp = None;
    let mut uds = None;
    let mut telemetry_jsonl = None;
    let mut cfg = ServeConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint"))),
            "--tcp" => tcp = Some(value("--tcp")),
            "--uds" => uds = Some(PathBuf::from(value("--uds"))),
            "--telemetry-jsonl" => {
                telemetry_jsonl = Some(PathBuf::from(value("--telemetry-jsonl")));
            }
            "--queue-cap" => {
                cfg.queue_cap = value("--queue-cap").parse().unwrap_or_else(|_| usage());
            }
            "--batch-max" => {
                cfg.batch_max = value("--batch-max").parse().unwrap_or_else(|_| usage());
            }
            "--slo-ms" => {
                cfg.slo =
                    Duration::from_millis(value("--slo-ms").parse().unwrap_or_else(|_| usage()));
            }
            "--deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(
                    value("--deadline-ms").parse().unwrap_or_else(|_| usage()),
                );
            }
            _ => usage(),
        }
    }
    let Some(checkpoint) = checkpoint else { usage() };
    let mut args = Args { checkpoint, tcp, uds, telemetry_jsonl, cfg };
    if args.tcp.is_none() && args.uds.is_none() {
        args.tcp = Some("127.0.0.1:7477".to_owned());
    }
    args
}

fn main() {
    let args = parse_args();
    let telemetry = Telemetry::new();
    if let Some(path) = &args.telemetry_jsonl {
        if let Err(e) = telemetry.attach_jsonl(path) {
            eprintln!("vc_serve: cannot open telemetry sink {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    let artifact = match drl_cews::serving::PolicyArtifact::from_file(Path::new(&args.checkpoint)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("vc_serve: cannot load {}: {e}", args.checkpoint.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "vc_serve: loaded {:?} (grid {}, {} workers, {} episodes trained)",
        args.checkpoint, artifact.env.grid, artifact.env.num_workers, artifact.episodes
    );
    let server = match Server::start(
        artifact,
        args.cfg,
        telemetry,
        args.tcp.as_deref(),
        args.uds.as_deref(),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vc_serve: startup failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(addr) = server.tcp_addr() {
        eprintln!("vc_serve: listening on tcp {addr}");
    }
    if let Some(path) = server.uds_path() {
        eprintln!("vc_serve: listening on uds {}", path.display());
    }

    // Block until stdin closes (the shutdown request), then drain.
    let mut sink = String::new();
    while std::io::stdin().read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
        sink.clear();
    }
    let deadline = args.cfg.shutdown_deadline;
    eprintln!("vc_serve: stdin closed, draining (deadline {deadline:?})");
    let report = server.shutdown(deadline);
    eprintln!(
        "vc_serve: drained ({} rejected in drain, pool quiesced: {})",
        report.rejected_in_drain, report.pool_quiesced
    );
}
