//! `vc_serve`: the overload-safe fleet-scheduling daemon.
//!
//! The serving path turns the repo's evaluation stack into a
//! request/response product: a long-running daemon loads a v2 training
//! checkpoint (via [`drl_cews::serving::PolicyArtifact`]), listens on a
//! TCP and/or Unix-domain socket speaking a length-prefixed JSON protocol
//! ([`protocol`]), micro-batches "schedule my fleet" requests through
//! `sample_actions_batched`, and is engineered to *degrade instead of
//! die*:
//!
//! * **Bounded admission** ([`queue`]) — a full queue answers
//!   `QueueFull { retry_after_ms }` immediately; memory use is capped.
//! * **Deadlines** — requests queued past their deadline are shed with a
//!   typed `DeadlineExceeded`, never silently dropped.
//! * **Shed ladder** ([`shed`]) — sustained SLO breaches degrade batches
//!   from policy inference to the greedy baseline until latency recovers.
//! * **Panic containment** ([`batcher`], [`server`]) — per connection and
//!   per batch; a poisoned request costs only its own reply.
//! * **Hot-reload with rollback** ([`model`]) — new weights swap in only
//!   after full CRC/shape/metadata validation; any failure keeps the
//!   previous generation live.
//! * **Graceful shutdown** — [`server::Server::shutdown`] drains within a
//!   bounded deadline, answers leftovers with `ShuttingDown`, quiesces
//!   the kernel pool, and flushes telemetry sinks.
//!
//! See DESIGN.md §14 for the full overload policy and the hot-reload
//! state machine.

pub mod batcher;
pub mod client;
pub mod error;
pub mod model;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod shed;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::client::{ClientError, ServeClient};
    pub use crate::error::{ReloadError, ServeError};
    pub use crate::protocol::{
        ActionOut, Request, Response, ScheduleReply, ScheduleRequest, StatsReply, WireError,
        WorkerState,
    };
    pub use crate::server::{ServeConfig, Server, ShutdownReport};
}
