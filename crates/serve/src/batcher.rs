//! The micro-batch engine: deadline shedding, batched policy inference,
//! greedy fallback, and per-batch panic containment.
//!
//! Each cycle pops a batch from the admission queue, sheds anything past
//! its deadline with a typed error, feeds the worst observed queue wait to
//! the shed ladder, and serves the survivors either through one batched
//! actor-critic forward pass or — degraded — through the greedy baseline.
//! A panic inside the batched pass is caught and the batch retried
//! per-request through greedy, so one poisoned request can only take down
//! its own reply, never the loop.

use crate::model::PolicyBundle;
use crate::queue::Pending;
use crate::shed::{Mode, ShedLadder};
use rand::rngs::StdRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use vc_baselines::prelude::{GreedyScheduler, Scheduler};
use vc_env::prelude::*;
use vc_rl::prelude::*;
use vc_telemetry::{Counter, Gauge, Histogram, Telemetry};

use crate::protocol::{ActionOut, Response, ScheduleReply, ScheduleRequest, WireError};

/// Bucket bounds for request latency (seconds): 1ms .. 5s.
pub const REQUEST_SECONDS_BOUNDS: [f64; 8] = [0.001, 0.005, 0.02, 0.05, 0.1, 0.5, 1.0, 5.0];

/// Bucket bounds for batch occupancy (requests per batch).
pub const BATCH_OCCUPANCY_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// Cached metric handles for the serving hot path (registered once; see
/// the `vc_telemetry` overhead policy).
pub struct ServeMetrics {
    /// `serve_queue_depth` gauge.
    pub queue_depth: Arc<Gauge>,
    /// `serve_requests_total` counter (admitted requests).
    pub requests: Arc<Counter>,
    /// `serve_shed_total{reason="deadline"}`.
    pub shed_deadline: Arc<Counter>,
    /// `serve_shed_total{reason="queue_full"}`.
    pub shed_queue_full: Arc<Counter>,
    /// `serve_degraded_batches_total` (batches served by greedy).
    pub degraded_batches: Arc<Counter>,
    /// `serve_reload_total{outcome="ok"}`.
    pub reload_ok: Arc<Counter>,
    /// `serve_reload_total{outcome="rolled_back"}`.
    pub reload_rolled_back: Arc<Counter>,
    /// `serve_batch_panics_total` (batched passes that panicked and fell
    /// back to greedy).
    pub panics: Arc<Counter>,
    /// `serve_request_seconds` histogram (admission → reply).
    pub request_seconds: Arc<Histogram>,
    /// `serve_batch_occupancy` histogram.
    pub batch_occupancy: Arc<Histogram>,
}

impl ServeMetrics {
    /// Registers (or re-looks-up) every serve metric on `t`.
    #[must_use]
    pub fn new(t: &Telemetry) -> Self {
        ServeMetrics {
            queue_depth: t.gauge("serve_queue_depth"),
            requests: t.counter("serve_requests_total"),
            shed_deadline: t.counter_labeled("serve_shed_total", &[("reason", "deadline")]),
            shed_queue_full: t.counter_labeled("serve_shed_total", &[("reason", "queue_full")]),
            degraded_batches: t.counter("serve_degraded_batches_total"),
            reload_ok: t.counter_labeled("serve_reload_total", &[("outcome", "ok")]),
            reload_rolled_back: t
                .counter_labeled("serve_reload_total", &[("outcome", "rolled_back")]),
            panics: t.counter("serve_batch_panics_total"),
            request_seconds: t.histogram("serve_request_seconds", &REQUEST_SECONDS_BOUNDS),
            batch_occupancy: t.histogram("serve_batch_occupancy", &BATCH_OCCUPANCY_BOUNDS),
        }
    }
}

/// What one batch cycle did (drives stats and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests answered with a schedule.
    pub served: usize,
    /// Requests shed past their deadline.
    pub shed: usize,
    /// Whether the batch ran in degraded (greedy) mode.
    pub degraded: bool,
    /// Whether the batched policy pass panicked.
    pub panicked: bool,
}

/// Projects a reported fleet snapshot onto a fresh scenario environment.
/// Coordinates are clamped to the space (the snapshot is advisory — the
/// policy only needs a plausible state, not a bit-exact one); energies and
/// PoI levels are clamped by the env setters.
pub fn apply_snapshot(env: &mut CrowdsensingEnv, req: &ScheduleRequest) {
    let (sx, sy) = (env.config().size_x, env.config().size_y);
    for (i, w) in req.workers.iter().enumerate().take(env.workers().len()) {
        env.teleport_worker(i, Point::new(w.x.clamp(0.0, sx), w.y.clamp(0.0, sy)));
        env.set_worker_energy(i, w.energy);
    }
    let pois = env.pois().len();
    for (i, &d) in req.poi_data.iter().enumerate().take(pois) {
        env.set_poi_data(i, d);
    }
}

fn actions_to_wire(actions: &[WorkerAction]) -> Vec<ActionOut> {
    actions
        .iter()
        .map(|a| ActionOut { move_index: a.movement.index() as u64, charge: a.charge })
        .collect()
}

/// Answers one pending request through the greedy baseline (also the
/// per-request fallback after a batched-pass panic). Greedy itself runs
/// under `catch_unwind`, so even a request that breaks *both* schedulers
/// gets a typed internal error instead of killing the loop.
fn serve_one_greedy(pending: &Pending, env: &mut CrowdsensingEnv, rng: &mut StdRng) -> Response {
    apply_snapshot(env, &pending.req);
    let decided = catch_unwind(AssertUnwindSafe(|| {
        let mut greedy = GreedyScheduler;
        greedy.decide(env, rng)
    }));
    match decided {
        Ok(actions) => Response::Schedule(ScheduleReply {
            id: pending.req.id,
            mode: "greedy".to_owned(),
            actions: actions_to_wire(&actions),
            queued_ms: pending.waited(Instant::now()).as_secs_f64() * 1e3,
        }),
        Err(_) => Response::Rejected(WireError::Internal {
            id: pending.req.id,
            reason: "scheduler panicked".to_owned(),
        }),
    }
}

fn send_reply(pending: &Pending, resp: Response, metrics: &ServeMetrics) {
    metrics.request_seconds.observe(pending.enqueued.elapsed().as_secs_f64());
    // A dead connection (receiver dropped) is the client's loss, not ours.
    let _ = pending.reply.try_send(resp);
}

/// Runs one popped batch to completion: every request in `batch` receives
/// exactly one response (schedule, typed shed, or typed internal error).
pub fn process_batch(
    batch: Vec<Pending>,
    bundle: &PolicyBundle,
    ladder: &mut ShedLadder,
    rng: &mut StdRng,
    metrics: &ServeMetrics,
) -> BatchOutcome {
    let mut outcome = BatchOutcome::default();
    let now = Instant::now();
    metrics.batch_occupancy.observe(batch.len() as f64);

    // Deadline-aware shedding: expired requests are answered, not dropped.
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    let mut worst_wait = std::time::Duration::ZERO;
    for p in batch {
        let waited = p.waited(now);
        if p.expired(now) {
            metrics.shed_deadline.inc();
            outcome.shed += 1;
            let err =
                WireError::DeadlineExceeded { id: p.req.id, waited_ms: waited.as_millis() as u64 };
            send_reply(&p, Response::Rejected(err), metrics);
        } else {
            worst_wait = worst_wait.max(waited);
            live.push(p);
        }
    }
    if live.is_empty() {
        return outcome;
    }

    let mode = ladder.observe(worst_wait);
    outcome.degraded = mode == Mode::Degraded;

    let mut base = match bundle.artifact.make_env() {
        Ok(env) => env,
        Err(e) => {
            for p in &live {
                let err = WireError::Internal { id: p.req.id, reason: e.to_string() };
                send_reply(p, Response::Rejected(err), metrics);
            }
            return outcome;
        }
    };

    if mode == Mode::Degraded {
        metrics.degraded_batches.inc();
        for p in &live {
            let resp = serve_one_greedy(p, &mut base, rng);
            send_reply(p, resp, metrics);
            outcome.served += 1;
        }
        return outcome;
    }

    // One env per request, all sharing the artifact's scenario so the
    // batched forward pass sees a homogeneous worker count.
    let mut envs: Vec<CrowdsensingEnv> = Vec::with_capacity(live.len());
    for p in &live {
        let mut env = base.clone();
        apply_snapshot(&mut env, &p.req);
        envs.push(env);
    }
    let env_refs: Vec<&CrowdsensingEnv> = envs.iter().collect();
    let opts =
        PolicyOptions { mode: SampleMode::Greedy, mask_invalid: bundle.artifact.mask_invalid };
    let sampled = catch_unwind(AssertUnwindSafe(|| {
        sample_actions_batched(&bundle.artifact.net, &bundle.artifact.store, &env_refs, opts, rng)
    }));
    match sampled {
        Ok(joint) if joint.len() == live.len() => {
            for (p, s) in live.iter().zip(&joint) {
                let resp = Response::Schedule(ScheduleReply {
                    id: p.req.id,
                    mode: "policy".to_owned(),
                    actions: actions_to_wire(&s.actions),
                    queued_ms: p.waited(now).as_secs_f64() * 1e3,
                });
                send_reply(p, resp, metrics);
                outcome.served += 1;
            }
        }
        _ => {
            // Batched pass panicked (or returned a malformed batch):
            // contain it and retry each request alone through greedy, so a
            // single poisoned request costs only its own reply.
            metrics.panics.inc();
            outcome.panicked = true;
            for p in &live {
                let resp = serve_one_greedy(p, &mut base, rng);
                send_reply(p, resp, metrics);
                outcome.served += 1;
            }
        }
    }
    outcome
}
