//! Typed failure surface of the daemon.
//!
//! Overload is a *reply*, not an exception: [`crate::protocol::WireError`]
//! carries shed/deadline/backpressure outcomes back to the client, while
//! [`ServeError`] covers daemon-side failures (startup, reload, I/O).

use drl_cews::serving::ArtifactError;
use std::fmt;
use std::io;

/// Daemon-side errors (never sent on the wire; wire-visible rejections are
/// [`crate::protocol::WireError`]).
#[derive(Debug)]
pub enum ServeError {
    /// Startup or socket I/O failed.
    Io(io::Error),
    /// The initial checkpoint could not be loaded.
    Artifact(ArtifactError),
    /// A hot-reload was rejected; the previous weights remain live.
    Reload(ReloadError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O failed: {e}"),
            ServeError::Artifact(e) => write!(f, "cannot load checkpoint: {e}"),
            ServeError::Reload(e) => write!(f, "hot-reload rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Artifact(e) => Some(e),
            ServeError::Reload(e) => Some(e),
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ArtifactError> for ServeError {
    fn from(e: ArtifactError) -> Self {
        ServeError::Artifact(e)
    }
}

impl From<ReloadError> for ServeError {
    fn from(e: ReloadError) -> Self {
        ServeError::Reload(e)
    }
}

/// Why a hot-reload did not swap; in every case the daemon keeps serving
/// the previous weights (rollback is the *absence* of the swap — the old
/// `Arc` is never released until a fully validated replacement exists).
#[derive(Debug)]
pub enum ReloadError {
    /// The candidate file failed CRC/shape/metadata validation.
    Artifact(ArtifactError),
    /// The candidate is valid but serves a different scenario than the
    /// daemon was started for, so in-flight requests would misparse.
    Incompatible {
        /// Expected (grid, num_workers) from the live artifact.
        expected: (usize, usize),
        /// Candidate's (grid, num_workers).
        got: (usize, usize),
    },
}

impl fmt::Display for ReloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReloadError::Artifact(e) => write!(f, "candidate checkpoint invalid: {e}"),
            ReloadError::Incompatible { expected, got } => write!(
                f,
                "candidate scenario (grid {}, workers {}) != live (grid {}, workers {})",
                got.0, got.1, expected.0, expected.1
            ),
        }
    }
}

impl std::error::Error for ReloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReloadError::Artifact(e) => Some(e),
            ReloadError::Incompatible { .. } => None,
        }
    }
}

impl From<ArtifactError> for ReloadError {
    fn from(e: ArtifactError) -> Self {
        ReloadError::Artifact(e)
    }
}
