//! A minimal blocking client for the daemon's frame protocol, shared by
//! the integration tests and the `serve_load` generator.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, Response,
    ScheduleRequest,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing I/O failed.
    Frame(FrameError),
    /// The daemon sent a frame that does not decode to a [`Response`].
    BadResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "client framing failed: {e}"),
            ClientError::BadResponse => write!(f, "daemon sent an undecodable response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// One connection to the daemon (TCP or Unix socket).
pub struct ServeClient {
    stream: Stream,
}

enum Stream {
    /// TCP transport.
    Tcp(TcpStream),
    /// Unix-socket transport.
    Uds(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

impl ServeClient {
    /// Connects over TCP with a read timeout (so a dead daemon cannot
    /// wedge the client).
    ///
    /// # Errors
    ///
    /// Connection or socket-option I/O errors.
    pub fn connect_tcp(addr: &str, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(ServeClient { stream: Stream::Tcp(stream) })
    }

    /// Connects over a Unix socket with a read timeout.
    ///
    /// # Errors
    ///
    /// Connection or socket-option I/O errors.
    pub fn connect_uds(path: &Path, timeout: Duration) -> Result<Self, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(ServeClient { stream: Stream::Uds(stream) })
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// Framing I/O (including read timeout) or an undecodable response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req)).map_err(FrameError::Io)?;
        let payload = read_frame(&mut self.stream)?;
        decode_response(&payload).ok_or(ClientError::BadResponse)
    }

    /// Convenience wrapper for a schedule request.
    ///
    /// # Errors
    ///
    /// Same as [`Self::request`].
    pub fn schedule(&mut self, req: ScheduleRequest) -> Result<Response, ClientError> {
        self.request(&Request::Schedule(req))
    }

    /// Sends raw bytes as one frame (fault injection: malformed payloads).
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload).map_err(FrameError::Io)?;
        Ok(())
    }

    /// Reads one response frame without sending anything first.
    ///
    /// # Errors
    ///
    /// Same as [`Self::request`].
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream)?;
        decode_response(&payload).ok_or(ClientError::BadResponse)
    }

    /// Writes a partial (truncated) frame and stalls — fault injection for
    /// the wedged-client path. The daemon's read timeout must eventually
    /// drop this connection without affecting others.
    ///
    /// # Errors
    ///
    /// Underlying I/O errors.
    pub fn wedge(&mut self) -> Result<(), ClientError> {
        // Claim 64 bytes, send only 3.
        let prefix = 64u32.to_le_bytes();
        match &mut self.stream {
            Stream::Tcp(s) => {
                s.write_all(&prefix)?;
                s.write_all(&[1, 2, 3])?;
                s.flush()?;
            }
            Stream::Uds(s) => {
                s.write_all(&prefix)?;
                s.write_all(&[1, 2, 3])?;
                s.flush()?;
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.stream {
            Stream::Tcp(_) => "tcp",
            Stream::Uds(_) => "uds",
        };
        f.debug_struct("ServeClient").field("transport", &kind).finish()
    }
}
