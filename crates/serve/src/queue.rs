//! The bounded admission queue: explicit backpressure instead of
//! unbounded growth.
//!
//! Admission is `try_push` — when the queue is at capacity the request is
//! handed back to the connection so it can answer
//! [`crate::protocol::WireError::QueueFull`] immediately; nothing is ever
//! silently dropped. The batch loop pops with a predicate-looped
//! `wait_timeout_while`, so an idle daemon parks instead of spinning.

use crate::protocol::{Response, ScheduleRequest};
use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// One admitted request waiting for the batch loop.
pub struct Pending {
    /// The request as received.
    pub req: ScheduleRequest,
    /// When admission happened (queue-wait clock).
    pub enqueued: Instant,
    /// Effective deadline (request's own, or the daemon default).
    pub deadline: Duration,
    /// Where the single response for this request must go. The channel is
    /// rendezvous-free (capacity 1) and the connection side waits with a
    /// timeout, so a reply can never block the batch loop.
    pub reply: SyncSender<Response>,
}

impl Pending {
    /// How long this request has waited so far.
    #[must_use]
    pub fn waited(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.enqueued)
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self, now: Instant) -> bool {
        self.waited(now) > self.deadline
    }
}

/// A bounded FIFO of [`Pending`] requests.
pub struct AdmissionQueue {
    inner: Mutex<VecDeque<Pending>>,
    ready: Condvar,
    cap: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `cap` requests (`cap >= 1` enforced).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a request, or hands it back when the queue is full so the
    /// caller can reply with backpressure.
    ///
    /// # Errors
    ///
    /// Returns `Err(pending)` (the unchanged request) at capacity.
    pub fn try_push(&self, pending: Pending) -> Result<(), Pending> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.cap {
            return Err(pending);
        }
        q.push_back(pending);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops up to `max` requests, waiting at most `wait` for the first
    /// one. Returns an empty vector on timeout.
    #[must_use]
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<Pending> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut guard, _timeout) = self
            .ready
            .wait_timeout_while(guard, wait, |q| q.is_empty())
            .unwrap_or_else(PoisonError::into_inner);
        let take = guard.len().min(max.max(1));
        guard.drain(..take).collect()
    }

    /// Empties the queue immediately (shutdown path: the caller answers
    /// every drained request with a typed shutdown rejection).
    #[must_use]
    pub fn drain_all(&self) -> Vec<Pending> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        q.drain(..).collect()
    }

    /// Wakes every batch-loop waiter (shutdown path).
    pub fn wake_all(&self) {
        self.ready.notify_all();
    }
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionQueue").field("len", &self.len()).field("cap", &self.cap).finish()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn pending(id: u64) -> Pending {
        let (tx, _rx) = sync_channel(1);
        Pending {
            req: ScheduleRequest { id, deadline_ms: 10, workers: vec![], poi_data: vec![] },
            enqueued: Instant::now(),
            deadline: Duration::from_millis(10),
            reply: tx,
        }
    }

    #[test]
    fn bounded_push_hands_back_overflow() {
        let q = AdmissionQueue::new(2);
        assert!(q.try_push(pending(1)).is_ok());
        assert!(q.try_push(pending(2)).is_ok());
        let back = q.try_push(pending(3)).unwrap_err();
        assert_eq!(back.req.id, 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_respects_max_and_timeout() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            assert!(q.try_push(pending(i)).is_ok());
        }
        let batch = q.pop_batch(3, Duration::from_millis(1));
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].req.id, 0);
        assert_eq!(q.len(), 2);
        let rest = q.pop_batch(8, Duration::from_millis(1));
        assert_eq!(rest.len(), 2);
        // Empty queue: the wait times out and returns nothing.
        let none = q.pop_batch(8, Duration::from_millis(5));
        assert!(none.is_empty());
    }

    #[test]
    fn expiry_clock_works() {
        let p = pending(1);
        assert!(!p.expired(p.enqueued + Duration::from_millis(5)));
        assert!(p.expired(p.enqueued + Duration::from_millis(15)));
    }
}
