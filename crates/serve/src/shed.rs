//! The load-shed ladder: batched policy inference → greedy baseline.
//!
//! The ladder watches the worst queue wait of each batch against the
//! latency SLO. A run of consecutive breaches trips it into degraded mode,
//! where batches are answered by the engineered greedy scheduler (orders
//! of magnitude cheaper than a network forward pass); a run of consecutive
//! healthy batches steps back up. Hysteresis on both edges keeps one
//! outlier batch from flapping the mode.

use std::time::Duration;

/// Which scheduler answers the current batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Batched actor-critic inference (normal operation).
    Policy,
    /// Greedy-baseline fallback (overload).
    Degraded,
}

/// Hysteretic two-level shed ladder.
#[derive(Debug)]
pub struct ShedLadder {
    slo: Duration,
    trip_after: u32,
    recover_after: u32,
    breaches: u32,
    healthy: u32,
    mode: Mode,
    degradations: u64,
}

impl ShedLadder {
    /// A ladder tripping after `trip_after` consecutive batches whose
    /// worst queue wait breaches `slo`, recovering after `recover_after`
    /// consecutive healthy batches.
    #[must_use]
    pub fn new(slo: Duration, trip_after: u32, recover_after: u32) -> Self {
        ShedLadder {
            slo,
            trip_after: trip_after.max(1),
            recover_after: recover_after.max(1),
            breaches: 0,
            healthy: 0,
            mode: Mode::Policy,
            degradations: 0,
        }
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Times the ladder has stepped down into degraded mode.
    #[must_use]
    pub fn degradations(&self) -> u64 {
        self.degradations
    }

    /// Feeds one batch's worst queue wait and returns the mode the batch
    /// should be served in (the post-update mode, so the batch that trips
    /// the ladder is already served degraded).
    pub fn observe(&mut self, worst_wait: Duration) -> Mode {
        if worst_wait > self.slo {
            self.breaches += 1;
            self.healthy = 0;
            if self.mode == Mode::Policy && self.breaches >= self.trip_after {
                self.mode = Mode::Degraded;
                self.degradations += 1;
            }
        } else {
            self.healthy += 1;
            self.breaches = 0;
            if self.mode == Mode::Degraded && self.healthy >= self.recover_after {
                self.mode = Mode::Policy;
            }
        }
        self.mode
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn trips_after_consecutive_breaches_only() {
        let mut l = ShedLadder::new(10 * MS, 3, 2);
        assert_eq!(l.observe(20 * MS), Mode::Policy);
        assert_eq!(l.observe(20 * MS), Mode::Policy);
        // One healthy batch resets the breach run.
        assert_eq!(l.observe(MS), Mode::Policy);
        assert_eq!(l.observe(20 * MS), Mode::Policy);
        assert_eq!(l.observe(20 * MS), Mode::Policy);
        assert_eq!(l.observe(20 * MS), Mode::Degraded);
        assert_eq!(l.degradations(), 1);
    }

    #[test]
    fn recovers_with_hysteresis() {
        let mut l = ShedLadder::new(10 * MS, 1, 3);
        assert_eq!(l.observe(20 * MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Policy);
        // A breach mid-recovery restarts the healthy run.
        assert_eq!(l.observe(20 * MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Degraded);
        assert_eq!(l.observe(20 * MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Degraded);
        assert_eq!(l.observe(MS), Mode::Policy);
    }
}
