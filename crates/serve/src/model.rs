//! Hot-reloadable weights: validate-then-swap with implicit rollback.
//!
//! The live policy lives behind an `Arc` inside a [`ModelSlot`]. A reload
//! fully loads and validates the *candidate* checkpoint (CRC32 footer,
//! metadata parse, env validation, parameter-shape cross-check — all in
//! [`drl_cews::serving::PolicyArtifact::from_bytes`]) plus a scenario
//! compatibility check against the live weights, and only then swaps the
//! `Arc` under a short lock. Any failure leaves the previous `Arc`
//! untouched: rollback is the absence of the swap, so there is no window
//! in which requests can observe half-loaded weights.

use crate::error::ReloadError;
use drl_cews::serving::PolicyArtifact;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// An immutable generation of servable weights.
pub struct PolicyBundle {
    /// The validated inference artifact.
    pub artifact: PolicyArtifact,
    /// Monotone generation number (0 = the startup checkpoint).
    pub generation: u64,
}

/// The atomically swappable slot holding the live [`PolicyBundle`].
pub struct ModelSlot {
    current: Mutex<Arc<PolicyBundle>>,
    generation: AtomicU64,
    rollbacks: AtomicU64,
}

impl ModelSlot {
    /// Wraps the startup artifact as generation 0.
    #[must_use]
    pub fn new(artifact: PolicyArtifact) -> Self {
        ModelSlot {
            current: Mutex::new(Arc::new(PolicyBundle { artifact, generation: 0 })),
            generation: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        }
    }

    /// The live bundle. The lock is held only long enough to clone the
    /// `Arc`; batches keep their clone for their whole lifetime, so a
    /// reload mid-batch never changes weights under a running inference.
    #[must_use]
    pub fn bundle(&self) -> Arc<PolicyBundle> {
        Arc::clone(&self.current.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Generation currently live.
    #[must_use]
    pub fn generation(&self) -> u64 {
        // ordering: freshness counter for stats only; the bundle itself
        // travels through the mutex above.
        self.generation.load(Ordering::Relaxed)
    }

    /// Reloads rejected so far (each one kept the previous weights).
    #[must_use]
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed) // ordering: stats only (see generation)
    }

    /// Validates `path` as a candidate checkpoint and swaps it in,
    /// returning the new generation.
    ///
    /// # Errors
    ///
    /// [`ReloadError`] when the candidate fails any validation stage or
    /// serves a different scenario; the previous weights stay live and the
    /// rollback counter increments.
    pub fn try_swap(&self, path: &Path) -> Result<u64, ReloadError> {
        let result = self.validate_and_swap(path);
        if result.is_err() {
            // ordering: stats only (see generation)
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn validate_and_swap(&self, path: &Path) -> Result<u64, ReloadError> {
        let candidate = PolicyArtifact::from_file(path)?;
        let live = self.bundle();
        let expected = (live.artifact.env.grid, live.artifact.env.num_workers);
        let got = (candidate.env.grid, candidate.env.num_workers);
        if expected != got {
            return Err(ReloadError::Incompatible { expected, got });
        }
        let generation = live.generation + 1;
        let fresh = Arc::new(PolicyBundle { artifact: candidate, generation });
        *self.current.lock().unwrap_or_else(PoisonError::into_inner) = fresh;
        // ordering: stats only (see generation); publication of the new
        // bundle happens through the mutex.
        self.generation.store(generation, Ordering::Relaxed);
        Ok(generation)
    }
}

impl std::fmt::Debug for ModelSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSlot")
            .field("generation", &self.generation())
            .field("rollbacks", &self.rollbacks())
            .finish()
    }
}
