//! The daemon: socket accept loops, per-connection handlers, the batch
//! thread, hot-reload, and deadline-bounded graceful shutdown.
//!
//! Failure containment is layered: the framing layer answers malformed
//! frames in-band and drops only the offending connection; each
//! connection handler runs under `catch_unwind`; the batch loop contains
//! panics per batch (see [`crate::batcher`]); and shutdown drains the
//! admission queue within a bounded deadline, answering anything left
//! with a typed [`WireError::ShuttingDown`] so no admitted request is
//! ever silently lost.

use crate::batcher::{process_batch, ServeMetrics};
use crate::error::ServeError;
use crate::model::ModelSlot;
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, Response,
    ScheduleRequest, StatsReply, WireError,
};
use crate::queue::{AdmissionQueue, Pending};
use crate::shed::ShedLadder;
use drl_cews::serving::PolicyArtifact;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{Builder, JoinHandle};
use std::time::{Duration, Instant};
use vc_telemetry::{Field, Telemetry};

/// Tunables for the daemon; the defaults suit an interactive deployment
/// and the integration tests shrink them aggressively.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
    /// Max requests folded into one batched forward pass.
    pub batch_max: usize,
    /// Deadline applied when a request asks for `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Queue-wait SLO feeding the shed ladder.
    pub slo: Duration,
    /// Consecutive SLO breaches before degrading to greedy.
    pub trip_after: u32,
    /// Consecutive healthy batches before recovering to policy mode.
    pub recover_after: u32,
    /// Socket read timeout — bounds how long a wedged client can pin a
    /// connection thread.
    pub read_timeout: Duration,
    /// How long the batch loop parks waiting for work per cycle.
    pub pop_wait: Duration,
    /// Drain budget applied by [`Server::shutdown`] and `Drop`.
    pub shutdown_deadline: Duration,
    /// Seed of the serving RNG (greedy tie-breaks, sampling).
    pub seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_cap: 64,
            batch_max: 16,
            default_deadline: Duration::from_millis(200),
            slo: Duration::from_millis(50),
            trip_after: 3,
            recover_after: 5,
            read_timeout: Duration::from_secs(2),
            pop_wait: Duration::from_millis(20),
            shutdown_deadline: Duration::from_secs(2),
            seed: 0x5EED_5EED,
        }
    }
}

/// Shared daemon state (one per [`Server`], behind an `Arc`).
struct Inner {
    cfg: ServeConfig,
    slot: ModelSlot,
    queue: AdmissionQueue,
    /// Set once at shutdown: stop admitting, drain, exit loops.
    stop: AtomicBool,
    /// Wall-clock bound for the drain, set by shutdown.
    drain_deadline: Mutex<Option<Instant>>,
    metrics: ServeMetrics,
    telemetry: Telemetry,
    admitted: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicBool,
    expected_workers: usize,
}

impl Inner {
    fn stopping(&self) -> bool {
        // ordering: shutdown flag is a plain latch; loops that miss one
        // update observe it next cycle, and the drain itself synchronizes
        // through the queue mutex.
        self.stop.load(Ordering::Relaxed)
    }
}

/// What shutdown managed to do within its deadline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Requests still queued at shutdown that were answered with a
    /// typed `ShuttingDown` rejection instead of a schedule.
    pub rejected_in_drain: usize,
    /// Whether the kernel pool quiesced within the remaining budget.
    pub pool_quiesced: bool,
}

/// A running daemon. Dropping it performs a graceful, deadline-bounded
/// shutdown (see [`Server::shutdown`] for the explicit form).
pub struct Server {
    inner: Arc<Inner>,
    batch_thread: Option<JoinHandle<usize>>,
    accept_threads: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    uds_path: Option<PathBuf>,
}

impl Server {
    /// Starts the daemon: loads nothing itself (the caller provides a
    /// validated [`PolicyArtifact`]), binds the requested sockets, spawns
    /// the accept loops and the batch thread.
    ///
    /// Pass `tcp` as a bind address (`"127.0.0.1:0"` picks a free port;
    /// see [`Server::tcp_addr`]) and/or `uds` as a socket path. At least
    /// one must be given.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when binding or thread spawning fails, or when
    /// neither listener is requested.
    pub fn start(
        artifact: PolicyArtifact,
        cfg: ServeConfig,
        telemetry: Telemetry,
        tcp: Option<&str>,
        uds: Option<&Path>,
    ) -> Result<Server, ServeError> {
        if tcp.is_none() && uds.is_none() {
            return Err(ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "no listener requested",
            )));
        }
        let expected_workers = artifact.env.num_workers;
        let inner = Arc::new(Inner {
            queue: AdmissionQueue::new(cfg.queue_cap),
            slot: ModelSlot::new(artifact),
            stop: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
            metrics: ServeMetrics::new(&telemetry),
            telemetry,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            expected_workers,
            cfg,
        });

        let mut accept_threads = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let inner2 = Arc::clone(&inner);
            accept_threads.push(
                Builder::new()
                    .name("serve-accept-tcp".into())
                    .spawn(move || accept_loop_tcp(&listener, &inner2))?,
            );
        }
        let mut uds_path = None;
        if let Some(path) = uds {
            // A stale socket file from a crashed predecessor would fail the
            // bind; it is ours to claim.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            uds_path = Some(path.to_path_buf());
            let inner2 = Arc::clone(&inner);
            accept_threads.push(
                Builder::new()
                    .name("serve-accept-uds".into())
                    .spawn(move || accept_loop_uds(&listener, &inner2))?,
            );
        }

        inner.telemetry.event(
            "serve_start",
            &[
                ("workers", Field::U64(expected_workers as u64)),
                ("queue_cap", Field::U64(cfg.queue_cap as u64)),
            ],
        );
        let inner2 = Arc::clone(&inner);
        let batch_thread =
            Some(Builder::new().name("serve-batch".into()).spawn(move || batch_loop(&inner2))?);
        Ok(Server { inner, batch_thread, accept_threads, tcp_addr, uds_path })
    }

    /// The bound TCP address (useful with a `:0` bind).
    #[must_use]
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path, if any.
    #[must_use]
    pub fn uds_path(&self) -> Option<&Path> {
        self.uds_path.as_deref()
    }

    /// Live weight generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.inner.slot.generation()
    }

    /// Rejected reloads so far (each kept the previous weights).
    #[must_use]
    pub fn rollbacks(&self) -> u64 {
        self.inner.slot.rollbacks()
    }

    /// Hot-reloads weights from `path` (same validation as the `Reload`
    /// wire request).
    ///
    /// # Errors
    ///
    /// [`ServeError::Reload`]; the previous weights remain live.
    pub fn reload(&self, path: &Path) -> Result<u64, ServeError> {
        match self.inner.slot.try_swap(path) {
            Ok(generation) => {
                self.inner.metrics.reload_ok.inc();
                Ok(generation)
            }
            Err(e) => {
                self.inner.metrics.reload_rolled_back.inc();
                Err(ServeError::Reload(e))
            }
        }
    }

    /// Gracefully shuts down within `deadline`: stops admitting, drains
    /// queued requests through the batch loop, answers anything still
    /// queued at the deadline with `ShuttingDown`, joins the daemon
    /// threads, quiesces the kernel pool, and flushes telemetry sinks.
    #[must_use]
    pub fn shutdown(mut self, deadline: Duration) -> ShutdownReport {
        self.shutdown_inner(deadline)
    }

    fn shutdown_inner(&mut self, deadline: Duration) -> ShutdownReport {
        let start = Instant::now();
        *self.inner.drain_deadline.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(start + deadline);
        // ordering: latch (see Inner::stopping)
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.queue.wake_all();
        for handle in self.accept_threads.drain(..) {
            let _ = handle.join();
        }
        let rejected_in_drain =
            self.batch_thread.take().map_or(0, |h| h.join().unwrap_or_default());
        let remaining = deadline.saturating_sub(start.elapsed());
        let pool_quiesced = vc_nn::ops::pool::quiesce(remaining);
        // One summary event so the JSONL sink always carries the lifecycle
        // tail, then flush it to the OS before the handle goes away.
        self.inner.telemetry.event(
            "serve_shutdown",
            &[
                ("rejected_in_drain", Field::U64(rejected_in_drain as u64)),
                ("pool_quiesced", Field::Bool(pool_quiesced)),
                // ordering: stats tallies, see Inner
                ("admitted", Field::U64(self.inner.admitted.load(Ordering::Relaxed))),
                ("shed", Field::U64(self.inner.shed.load(Ordering::Relaxed))), // ordering: as above
                ("generation", Field::U64(self.inner.slot.generation())),
            ],
        );
        let _ = self.inner.telemetry.flush();
        if let Some(path) = &self.uds_path {
            let _ = std::fs::remove_file(path);
        }
        ShutdownReport { rejected_in_drain, pool_quiesced }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.batch_thread.is_some() {
            let deadline = self.inner.cfg.shutdown_deadline;
            let _ = self.shutdown_inner(deadline);
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("tcp", &self.tcp_addr)
            .field("uds", &self.uds_path)
            .field("generation", &self.generation())
            .finish()
    }
}

fn accept_loop_tcp(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn_tcp(stream, inner),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if inner.stopping() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if inner.stopping() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn accept_loop_uds(listener: &UnixListener, inner: &Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn_uds(stream, inner),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if inner.stopping() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if inner.stopping() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn spawn_conn_tcp(stream: TcpStream, inner: &Arc<Inner>) {
    let inner2 = Arc::clone(inner);
    let spawned = Builder::new().name("serve-conn".into()).spawn(move || {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(inner2.cfg.read_timeout));
        let mut stream = stream;
        // Panic containment per connection: a handler bug poisons only
        // this connection, never the daemon.
        let _ = catch_unwind(AssertUnwindSafe(|| handle_conn(&mut stream, &inner2)));
    });
    // Spawn failure (fd/thread exhaustion): drop the connection — the
    // client sees a reset, which is backpressure too.
    drop(spawned);
}

fn spawn_conn_uds(stream: UnixStream, inner: &Arc<Inner>) {
    let inner2 = Arc::clone(inner);
    let spawned = Builder::new().name("serve-conn".into()).spawn(move || {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(inner2.cfg.read_timeout));
        let mut stream = stream;
        let _ = catch_unwind(AssertUnwindSafe(|| handle_conn(&mut stream, &inner2)));
    });
    drop(spawned);
}

fn write_response<S: Read + Write>(stream: &mut S, resp: &Response) -> bool {
    write_frame(stream, &encode_response(resp)).is_ok()
}

/// Per-connection request loop, shared by TCP and Unix sockets.
fn handle_conn<S: Read + Write>(stream: &mut S, inner: &Arc<Inner>) {
    loop {
        let payload = match read_frame(stream) {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge { claimed }) => {
                // The payload was never read, so framing is lost: answer
                // once, then drop the connection.
                let err = WireError::BadRequest {
                    id: 0,
                    reason: format!("frame of {claimed} bytes exceeds cap"),
                };
                let _ = write_response(stream, &Response::Rejected(err));
                return;
            }
            // Read timeout (wedged client) or hard I/O error: drop.
            Err(FrameError::Io(_)) => return,
        };
        let Some(request) = decode_request(&payload) else {
            let err =
                WireError::BadRequest { id: 0, reason: "unparsable request frame".to_owned() };
            if !write_response(stream, &Response::Rejected(err)) {
                return;
            }
            continue;
        };
        let resp = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(stats(inner)),
            Request::Reload { path } => match inner.slot.try_swap(Path::new(&path)) {
                Ok(generation) => {
                    inner.metrics.reload_ok.inc();
                    Response::Reloaded { ok: true, detail: format!("generation {generation}") }
                }
                Err(e) => {
                    inner.metrics.reload_rolled_back.inc();
                    Response::Reloaded { ok: false, detail: e.to_string() }
                }
            },
            Request::Schedule(req) => schedule(inner, req),
        };
        if !write_response(stream, &resp) {
            return;
        }
    }
}

fn stats(inner: &Arc<Inner>) -> StatsReply {
    StatsReply {
        generation: inner.slot.generation(),
        queue_depth: inner.queue.len() as u64,
        // ordering: stats snapshot; each counter is independent.
        degraded: inner.degraded.load(Ordering::Relaxed),
        admitted: inner.admitted.load(Ordering::Relaxed), // ordering: see above
        shed: inner.shed.load(Ordering::Relaxed),         // ordering: see above
    }
}

/// Admission: validate, enqueue with backpressure, then wait for the
/// batch loop's single response.
fn schedule(inner: &Arc<Inner>, req: ScheduleRequest) -> Response {
    let id = req.id;
    if inner.stopping() {
        return Response::Rejected(WireError::ShuttingDown { id });
    }
    if let Some(reason) = validate(inner, &req) {
        return Response::Rejected(WireError::BadRequest { id, reason });
    }
    let deadline = if req.deadline_ms == 0 {
        inner.cfg.default_deadline
    } else {
        Duration::from_millis(req.deadline_ms)
    };
    let (tx, rx) = sync_channel::<Response>(1);
    let pending = Pending { req, enqueued: Instant::now(), deadline, reply: tx };
    match inner.queue.try_push(pending) {
        Ok(()) => {
            // ordering: stats tally only
            inner.admitted.fetch_add(1, Ordering::Relaxed);
            inner.metrics.requests.inc();
            inner.metrics.queue_depth.set(inner.queue.len() as f64);
            // The batch loop always sends exactly one response (schedule,
            // shed, or drain rejection). The slack covers one worst-case
            // batch on top of the deadline; hitting the timeout means a
            // daemon bug, surfaced as a typed internal error.
            let slack = deadline + inner.cfg.slo * 4 + Duration::from_secs(2);
            match rx.recv_timeout(slack) {
                Ok(resp) => resp,
                Err(_) => Response::Rejected(WireError::Internal {
                    id,
                    reason: "response lost".to_owned(),
                }),
            }
        }
        Err(_rejected) => {
            // ordering: stats tally only
            inner.shed.fetch_add(1, Ordering::Relaxed);
            inner.metrics.shed_queue_full.inc();
            let retry_after_ms = (inner.cfg.slo.as_millis() as u64).max(1);
            Response::Rejected(WireError::QueueFull { id, retry_after_ms })
        }
    }
}

fn validate(inner: &Arc<Inner>, req: &ScheduleRequest) -> Option<String> {
    if req.workers.len() != inner.expected_workers {
        return Some(format!(
            "snapshot has {} workers, scenario expects {}",
            req.workers.len(),
            inner.expected_workers
        ));
    }
    let finite =
        req.workers.iter().all(|w| w.x.is_finite() && w.y.is_finite() && w.energy.is_finite())
            && req.poi_data.iter().all(|d| d.is_finite());
    if !finite {
        return Some("snapshot contains non-finite values".to_owned());
    }
    None
}

/// The batch loop: pop → shed → infer (or degrade) → reply, until stopped
/// and drained. Returns how many requests the drain answered with
/// `ShuttingDown` (for the shutdown report).
fn batch_loop(inner: &Arc<Inner>) -> usize {
    let mut ladder = ShedLadder::new(inner.cfg.slo, inner.cfg.trip_after, inner.cfg.recover_after);
    let mut rng = StdRng::seed_from_u64(inner.cfg.seed);
    loop {
        let stopping = inner.stopping();
        let past_drain_deadline = stopping
            && inner
                .drain_deadline
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_some_and(|dl| Instant::now() >= dl);
        if past_drain_deadline || (stopping && inner.queue.is_empty()) {
            break;
        }
        let batch = inner.queue.pop_batch(inner.cfg.batch_max, inner.cfg.pop_wait);
        inner.metrics.queue_depth.set(inner.queue.len() as f64);
        if batch.is_empty() {
            continue;
        }
        let bundle = inner.slot.bundle();
        let outcome = process_batch(batch, &bundle, &mut ladder, &mut rng, &inner.metrics);
        // ordering: stats flag only
        inner.degraded.store(outcome.degraded, Ordering::Relaxed);
        if outcome.shed > 0 {
            // ordering: stats tally only
            inner.shed.fetch_add(outcome.shed as u64, Ordering::Relaxed);
        }
    }
    // Whatever is still queued gets a typed shutdown rejection — answered,
    // never dropped.
    let leftovers = inner.queue.drain_all();
    let rejected = leftovers.len();
    for p in leftovers {
        let err = WireError::ShuttingDown { id: p.req.id };
        let _ = p.reply.try_send(Response::Rejected(err));
    }
    inner.metrics.queue_depth.set(0.0);
    rejected
}
