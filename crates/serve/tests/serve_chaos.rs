//! Chaos integration test for the daemon: sustained overload plus injected
//! faults (malformed frames, oversized frames, wedged clients, corrupt
//! hot-reloads). The acceptance bar: the daemon never crashes, every
//! admitted request gets exactly one response or typed rejection, corrupt
//! reloads roll back, and degraded batches still produce valid greedy
//! assignments.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;
use vc_env::prelude::*;
use vc_serve::prelude::*;
use vc_telemetry::Telemetry;

/// One tiny trained-for-zero-episodes checkpoint shared by every test
/// (building the trainer dominates test time).
fn checkpoint_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut env = EnvConfig::tiny();
        env.horizon = 8;
        let mut cfg = TrainerConfig::drl_cews(env).quick();
        cfg.num_employees = 1;
        let mut trainer = Trainer::new(cfg).unwrap();
        trainer.checkpoint_v2().unwrap().to_vec()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vc_serve_chaos_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_checkpoint(dir: &std::path::Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, checkpoint_bytes()).unwrap();
    path
}

fn artifact() -> drl_cews::serving::PolicyArtifact {
    drl_cews::serving::PolicyArtifact::from_bytes(checkpoint_bytes()).unwrap()
}

fn start(cfg: ServeConfig) -> (Server, String) {
    let server =
        Server::start(artifact(), cfg, Telemetry::new(), Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();
    (server, addr)
}

/// A snapshot matching the tiny scenario (1 worker).
fn snapshot(id: u64, deadline_ms: u64) -> ScheduleRequest {
    ScheduleRequest {
        id,
        deadline_ms,
        workers: vec![WorkerState { x: 1.0, y: 1.0, energy: 10.0 }],
        poi_data: vec![0.5; 4],
    }
}

fn fast_cfg() -> ServeConfig {
    ServeConfig {
        read_timeout: Duration::from_millis(300),
        pop_wait: Duration::from_millis(5),
        shutdown_deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    }
}

#[test]
fn malformed_and_oversized_frames_get_typed_errors_not_crashes() {
    let (server, addr) = start(fast_cfg());
    let timeout = Duration::from_secs(5);

    // Garbage JSON is answered in-band and the connection stays usable.
    let mut c = ServeClient::connect_tcp(&addr, timeout).unwrap();
    c.send_raw(b"{\"nope\":1}").unwrap();
    match c.read_response().unwrap() {
        Response::Rejected(WireError::BadRequest { id: 0, .. }) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    c.send_raw(b"\xFF\xFE\x00garbage").unwrap();
    assert!(matches!(c.read_response().unwrap(), Response::Rejected(WireError::BadRequest { .. })));
    assert!(matches!(c.request(&Request::Ping).unwrap(), Response::Pong));

    // An oversized frame gets one BadRequest, then the connection drops
    // (framing is unrecoverable), and the daemon keeps serving others.
    let mut big = ServeClient::connect_tcp(&addr, timeout).unwrap();
    big.send_raw(&vec![b'x'; vc_serve::protocol::MAX_FRAME_BYTES + 1]).unwrap();
    assert!(matches!(
        big.read_response().unwrap(),
        Response::Rejected(WireError::BadRequest { .. })
    ));
    assert!(big.read_response().is_err());
    let mut after = ServeClient::connect_tcp(&addr, timeout).unwrap();
    assert!(matches!(after.request(&Request::Ping).unwrap(), Response::Pong));

    let report = server.shutdown(Duration::from_secs(2));
    assert!(report.pool_quiesced);
}

#[test]
fn wedged_client_is_bounded_and_does_not_block_others() {
    let (server, addr) = start(fast_cfg());
    let timeout = Duration::from_secs(5);

    // Client A claims a 64-byte frame, sends 3 bytes, and stalls.
    let mut wedged = ServeClient::connect_tcp(&addr, timeout).unwrap();
    wedged.wedge().unwrap();

    // Client B is served normally while A is wedged.
    let mut ok = ServeClient::connect_tcp(&addr, timeout).unwrap();
    match ok.schedule(snapshot(1, 0)).unwrap() {
        Response::Schedule(reply) => {
            assert_eq!(reply.id, 1);
            assert_eq!(reply.actions.len(), 1);
        }
        other => panic!("expected a schedule, got {other:?}"),
    }

    // A's connection dies once the daemon's read timeout fires; it never
    // gets a response, and never wedges the daemon. (The same timeout also
    // reclaims B's now-idle connection, so the health check reconnects.)
    std::thread::sleep(Duration::from_millis(400));
    assert!(wedged.read_response().is_err());
    let mut fresh = ServeClient::connect_tcp(&addr, timeout).unwrap();
    assert!(matches!(fresh.request(&Request::Ping).unwrap(), Response::Pong));
    drop(server);
}

#[test]
fn burst_overload_sheds_typed_and_answers_every_request() {
    let cfg = ServeConfig {
        queue_cap: 2,
        batch_max: 2,
        default_deadline: Duration::from_millis(100),
        slo: Duration::from_millis(5),
        trip_after: 2,
        recover_after: 3,
        ..fast_cfg()
    };
    let (server, addr) = start(cfg);

    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 5;
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("chaos-client-{c}"))
                .spawn(move || {
                    let mut client =
                        ServeClient::connect_tcp(&addr, Duration::from_secs(10)).unwrap();
                    let mut outcomes = Vec::new();
                    for i in 0..PER_CLIENT {
                        let id = (c * PER_CLIENT + i) as u64;
                        outcomes.push(client.schedule(snapshot(id, 0)).unwrap());
                    }
                    outcomes
                })
                .unwrap(),
        );
    }

    let mut served = 0usize;
    let mut shed = 0usize;
    for handle in handles {
        for resp in handle.join().unwrap() {
            match resp {
                Response::Schedule(reply) => {
                    assert_eq!(reply.actions.len(), 1);
                    assert!(reply.actions[0].move_index < 9);
                    served += 1;
                }
                Response::Rejected(WireError::QueueFull { retry_after_ms, .. }) => {
                    assert!(retry_after_ms >= 1);
                    shed += 1;
                }
                Response::Rejected(WireError::DeadlineExceeded { waited_ms: _, .. }) => {
                    shed += 1;
                }
                other => panic!("unexpected outcome under overload: {other:?}"),
            }
        }
    }
    // Every single request was answered, one way or the other.
    assert_eq!(served + shed, CLIENTS * PER_CLIENT);
    assert!(served > 0, "nothing was served under overload");

    // The daemon is still healthy afterwards.
    let mut c = ServeClient::connect_tcp(&addr, Duration::from_secs(5)).unwrap();
    assert!(matches!(c.request(&Request::Ping).unwrap(), Response::Pong));
    drop(server);
}

#[test]
fn corrupt_reload_rolls_back_and_valid_reload_swaps() {
    let dir = temp_dir("reload");
    let good = write_checkpoint(&dir, "good.v2");
    let truncated_path = dir.join("truncated.v2");
    let bytes = checkpoint_bytes();
    std::fs::write(&truncated_path, &bytes[..bytes.len() / 2]).unwrap();

    let (server, addr) = start(fast_cfg());
    let mut c = ServeClient::connect_tcp(&addr, Duration::from_secs(5)).unwrap();

    // Corrupt candidate: rejected, generation unchanged, daemon healthy.
    let resp = c.request(&Request::Reload { path: truncated_path.display().to_string() }).unwrap();
    match resp {
        Response::Reloaded { ok, detail } => {
            assert!(!ok, "truncated checkpoint must not swap in");
            assert!(!detail.is_empty());
        }
        other => panic!("expected Reloaded, got {other:?}"),
    }
    assert_eq!(server.generation(), 0);
    assert_eq!(server.rollbacks(), 1);

    // Missing file: same rollback path.
    let resp =
        c.request(&Request::Reload { path: dir.join("nope.v2").display().to_string() }).unwrap();
    assert!(matches!(resp, Response::Reloaded { ok: false, .. }));
    assert_eq!(server.rollbacks(), 2);

    // Valid candidate: swaps, generation bumps, scheduling still works.
    let resp = c.request(&Request::Reload { path: good.display().to_string() }).unwrap();
    assert!(matches!(resp, Response::Reloaded { ok: true, .. }));
    assert_eq!(server.generation(), 1);
    match c.request(&Request::Stats).unwrap() {
        Response::Stats(stats) => assert_eq!(stats.generation, 1),
        other => panic!("expected Stats, got {other:?}"),
    }
    assert!(matches!(c.schedule(snapshot(9, 0)).unwrap(), Response::Schedule(_)));

    let _ = std::fs::remove_dir_all(&dir);
    drop(server);
}

#[test]
fn degraded_mode_serves_valid_greedy_assignments() {
    // A zero SLO means every batch breaches it, so the ladder trips on the
    // very first batch and (with a huge recover_after) stays degraded.
    let cfg =
        ServeConfig { slo: Duration::ZERO, trip_after: 1, recover_after: 1_000_000, ..fast_cfg() };
    let (server, addr) = start(cfg);
    let mut c = ServeClient::connect_tcp(&addr, Duration::from_secs(5)).unwrap();

    let mut saw_greedy = false;
    for id in 0..5 {
        match c.schedule(snapshot(id, 0)).unwrap() {
            Response::Schedule(reply) => {
                assert_eq!(reply.actions.len(), 1);
                assert!(reply.actions[0].move_index < Move::ALL.len() as u64);
                if reply.mode == "greedy" {
                    saw_greedy = true;
                }
            }
            other => panic!("expected a schedule, got {other:?}"),
        }
    }
    assert!(saw_greedy, "shed ladder never degraded to the greedy baseline");
    match c.request(&Request::Stats).unwrap() {
        Response::Stats(stats) => assert!(stats.degraded),
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(server);
}

#[test]
fn bad_requests_are_rejected_before_admission() {
    let (server, addr) = start(fast_cfg());
    let mut c = ServeClient::connect_tcp(&addr, Duration::from_secs(5)).unwrap();

    // Wrong worker count.
    let mut wrong = snapshot(3, 0);
    wrong.workers.push(WorkerState { x: 0.0, y: 0.0, energy: 1.0 });
    assert!(matches!(
        c.schedule(wrong).unwrap(),
        Response::Rejected(WireError::BadRequest { id: 3, .. })
    ));

    // Non-finite coordinates. The client-side encoder writes non-finite
    // floats as `null`, so inject the overflow on the wire: `1e999` parses
    // to infinity and must be caught by server-side validation.
    let mut inf = snapshot(4, 0);
    inf.workers[0].x = 12345.5;
    let payload = String::from_utf8(vc_serve::protocol::encode_request(&Request::Schedule(inf)))
        .unwrap()
        .replace("12345.5", "1e999");
    c.send_raw(payload.as_bytes()).unwrap();
    assert!(matches!(
        c.read_response().unwrap(),
        Response::Rejected(WireError::BadRequest { id: 4, .. })
    ));
    drop(server);
}
