//! Graceful-shutdown integration test: with clients mid-flight, shutdown
//! must answer every request (a schedule or a typed `ShuttingDown`
//! rejection — never silence), finish within its deadline, quiesce the
//! kernel pool, and flush the telemetry JSONL sink.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use drl_cews::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_serve::prelude::*;
use vc_telemetry::Telemetry;

fn checkpoint_artifact() -> drl_cews::serving::PolicyArtifact {
    let mut env = vc_env::prelude::EnvConfig::tiny();
    env.horizon = 8;
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    let bytes = trainer.checkpoint_v2().unwrap().to_vec();
    drl_cews::serving::PolicyArtifact::from_bytes(&bytes).unwrap()
}

fn snapshot(id: u64) -> ScheduleRequest {
    ScheduleRequest {
        id,
        deadline_ms: 1_000,
        workers: vec![WorkerState { x: 1.0, y: 1.0, energy: 10.0 }],
        poi_data: vec![0.5; 4],
    }
}

#[test]
fn shutdown_answers_every_inflight_request_and_flushes_telemetry() {
    let dir = std::env::temp_dir().join(format!("vc_serve_shutdown_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("serve.jsonl");

    let telemetry = Telemetry::new();
    telemetry.attach_jsonl(&jsonl).unwrap();

    let cfg = ServeConfig {
        queue_cap: 64,
        batch_max: 4,
        default_deadline: Duration::from_secs(1),
        pop_wait: Duration::from_millis(5),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    let server =
        Server::start(checkpoint_artifact(), cfg, telemetry, Some("127.0.0.1:0"), None).unwrap();
    let addr = server.tcp_addr().unwrap().to_string();

    // Connect every client BEFORE shutdown so each has a live handler
    // thread; then hammer schedules until the daemon starts refusing.
    const CLIENTS: usize = 4;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let mut client = ServeClient::connect_tcp(&addr, Duration::from_secs(10)).unwrap();
        let stop = Arc::clone(&stop);
        handles.push(
            std::thread::Builder::new()
                .name(format!("shutdown-client-{c}"))
                .spawn(move || {
                    let mut sent = 0usize;
                    let mut answered = 0usize;
                    let mut refused = 0usize;
                    for i in 0..200u64 {
                        // ordering: plain test latch
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let id = c as u64 * 1_000 + i;
                        sent += 1;
                        match client.schedule(snapshot(id)) {
                            Ok(Response::Schedule(reply)) => {
                                assert_eq!(reply.id, id);
                                assert_eq!(reply.actions.len(), 1);
                                answered += 1;
                            }
                            Ok(Response::Rejected(err)) => {
                                assert_eq!(err.id(), id);
                                if matches!(err, WireError::ShuttingDown { .. }) {
                                    refused += 1;
                                    break;
                                }
                                answered += 1;
                            }
                            Ok(other) => panic!("unexpected response {other:?}"),
                            Err(_) => {
                                // The connection died without an answer —
                                // only legal if the request was never
                                // admitted (write raced the teardown), and
                                // that can only happen after shutdown began.
                                assert!(
                                    stop.load(Ordering::Relaxed), // ordering: test latch
                                    "connection failed before shutdown began"
                                );
                                sent -= 1;
                                break;
                            }
                        }
                    }
                    (sent, answered, refused)
                })
                .unwrap(),
        );
    }

    // Let traffic flow, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed); // ordering: test latch
    let began = Instant::now();
    let report = server.shutdown(Duration::from_secs(3));
    let took = began.elapsed();
    assert!(took < Duration::from_secs(10), "shutdown exceeded its deadline wildly: {took:?}");
    assert!(report.pool_quiesced, "kernel pool failed to quiesce in the drain budget");

    let mut total_sent = 0;
    let mut total_answered = 0;
    let mut total_refused = 0;
    for handle in handles {
        let (sent, answered, refused) = handle.join().unwrap();
        total_sent += sent;
        total_answered += answered;
        total_refused += refused;
    }
    // The core guarantee: every request that reached the daemon got a
    // response — a schedule, a typed shed, or a typed ShuttingDown.
    assert_eq!(total_answered + total_refused, total_sent, "requests were silently lost");
    assert!(total_answered > 0, "no request was ever served before shutdown");

    // The JSONL sink was flushed on shutdown: the lifecycle events are on
    // disk, including the final shutdown summary.
    let telemetry_log = std::fs::read_to_string(&jsonl).unwrap();
    assert!(
        telemetry_log.lines().any(|l| l.contains("serve_start")),
        "missing serve_start event: {telemetry_log:?}"
    );
    assert!(
        telemetry_log.lines().any(|l| l.contains("serve_shutdown")),
        "telemetry JSONL was not flushed with the shutdown summary: {telemetry_log:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_shuts_down_cleanly_and_removes_uds_socket() {
    let dir = std::env::temp_dir().join(format!("vc_serve_drop_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("vc.sock");

    let cfg = ServeConfig {
        pop_wait: Duration::from_millis(5),
        shutdown_deadline: Duration::from_secs(2),
        ..ServeConfig::default()
    };
    let server =
        Server::start(checkpoint_artifact(), cfg, Telemetry::new(), None, Some(&sock)).unwrap();
    assert!(sock.exists());

    // One request over the Unix socket proves the transport.
    let mut client = ServeClient::connect_uds(&sock, Duration::from_secs(5)).unwrap();
    assert!(matches!(client.schedule(snapshot(1)).unwrap(), Response::Schedule(_)));

    // Drop = graceful shutdown: the socket file is reclaimed.
    drop(server);
    assert!(!sock.exists(), "uds socket file leaked after Drop");

    let _ = std::fs::remove_dir_all(&dir);
}
