//! Non-finite propagation through the SIMD micro-kernel.
//!
//! The blocked GEMM must treat NaN and ±∞ exactly like the naive reference:
//! `f32::mul_add` and per-lane AVX2 FMA follow the same IEEE-754 rules
//! (`0·NaN = NaN`, `0·∞ = NaN`, `∞ + -∞ = NaN`), so every poisoned input
//! must surface in the same output elements with the same bits under both
//! kernel flavors. The trickiest cases live in the padding: the packed B
//! panel zero-fills lanes `n..NR` of a ragged last panel, and those zeros
//! are multiplied by real A values inside the vector unit — a non-finite A
//! operand must *not* leak NaN through a padded lane into a neighboring
//! output, and the padded lanes themselves are never written back.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::ops::gemm::{gemm, matmul_naive, set_force_scalar};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `gemm` under both kernel flavors and asserts both match naive
/// bitwise (NaN payloads included).
fn check_against_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let mut want = vec![0.0f32; m * n];
    matmul_naive(a, b, &mut want, m, k, n);
    for scalar in [false, true] {
        set_force_scalar(scalar);
        for threads in [1usize, 4] {
            let mut got = vec![0.0f32; m * n];
            gemm(a, b, &mut got, m, k, n, threads);
            assert_eq!(
                bits(&got),
                bits(&want),
                "{m}x{k}x{n} threads={threads} force_scalar={scalar}"
            );
        }
    }
    set_force_scalar(false);
}

#[test]
fn nan_in_a_poisons_exactly_one_output_row() {
    // 23×37×41: ragged in every blocking dimension (MR, NR, vector width).
    let (m, k, n) = (23usize, 37, 41);
    let mut a = vec![0.5f32; m * k];
    let b = vec![0.25f32; k * n];
    a[5 * k + 17] = f32::NAN; // row 5, reduction index 17
    check_against_naive(&a, &b, m, k, n);

    let mut out = vec![0.0f32; m * n];
    gemm(&a, &b, &mut out, m, k, n, 1);
    for (i, row) in out.chunks(n).enumerate() {
        let poisoned = row.iter().filter(|v| v.is_nan()).count();
        assert_eq!(poisoned, if i == 5 { n } else { 0 }, "row {i}");
    }
}

#[test]
fn nan_in_b_poisons_exactly_one_output_column() {
    let (m, k, n) = (9usize, 20, 33);
    let a = vec![1.0f32; m * k];
    let mut b = vec![0.125f32; k * n];
    // Column n-1 is the last real lane of a ragged NR panel (33 = 2·16+1):
    // the NaN rides in lane 0 of the tail panel, right next to the zeroed
    // padding lanes.
    b[7 * n + (n - 1)] = f32::NAN;
    check_against_naive(&a, &b, m, k, n);

    let mut out = vec![0.0f32; m * n];
    gemm(&a, &b, &mut out, m, k, n, 1);
    for (i, v) in out.iter().enumerate() {
        assert_eq!(v.is_nan(), i % n == n - 1, "element {i}");
    }
}

#[test]
fn infinities_propagate_and_cancel_like_naive() {
    let (m, k, n) = (8usize, 16, 17);
    let mut a = vec![0.5f32; m * k];
    let mut b = vec![1.0f32; k * n];
    a[3] = f32::INFINITY; // row 0 picks up +∞ …
    a[k + 4] = f32::NEG_INFINITY; // … row 1 picks up -∞ …
    a[2 * k + 5] = f32::INFINITY;
    b[5 * n + 2] = f32::NEG_INFINITY; // … and row 2, column 2 gets ∞·-∞.
    check_against_naive(&a, &b, m, k, n);

    let mut out = vec![0.0f32; m * n];
    gemm(&a, &b, &mut out, m, k, n, 1);
    assert_eq!(out[0], f32::INFINITY);
    assert_eq!(out[n], f32::NEG_INFINITY);
    assert_eq!(out[2 * n + 2], f32::NEG_INFINITY, "∞·-∞ must stay -∞ through the tile");
}

#[test]
fn zero_a_column_times_nonfinite_b_row_is_nan() {
    // A zero in A multiplying a non-finite in B must produce NaN, not 0:
    // the kernel must never skip "zero" work.
    let (m, k, n) = (4usize, 8, 16);
    let mut a = vec![1.0f32; m * k];
    let mut b = vec![2.0f32; k * n];
    a[2 * k + 6] = 0.0;
    b[6 * n + 9] = f32::INFINITY;
    check_against_naive(&a, &b, m, k, n);

    let mut out = vec![0.0f32; m * n];
    gemm(&a, &b, &mut out, m, k, n, 1);
    assert!(out[2 * n + 9].is_nan(), "0·∞ must poison, got {}", out[2 * n + 9]);
    assert_eq!(out[9], f32::INFINITY, "other rows still see the ∞ column");
}

#[test]
fn nonfinite_a_never_leaks_through_padded_tail_lanes() {
    // n=1: fifteen of the sixteen B-panel lanes are zero padding, and every
    // A value is non-finite. Inside the vector unit each step computes
    // `NaN/∞ · 0.0` in the padded lanes — the masked write-back must drop
    // those lanes, and the single real column must match naive bitwise.
    let (m, k, n) = (5usize, 300, 1); // k crosses the KC=256 reload boundary
    let mut a = vec![f32::INFINITY; m * k];
    for (i, v) in a.iter_mut().enumerate() {
        if i % 3 == 0 {
            *v = f32::NAN;
        }
    }
    let b = vec![1.0f32; k * n];
    check_against_naive(&a, &b, m, k, n);
}

#[test]
fn nan_past_the_kc_boundary_survives_accumulator_reload() {
    // The micro-kernel reloads its accumulators from C at every KC=256
    // k-block boundary. A NaN introduced only in the second block must
    // still poison the final value (reload must read back the partial sum,
    // not restart from zero — and a NaN partial must survive the reload).
    let (m, k, n) = (4usize, 300, 20);
    let mut a = vec![0.25f32; m * k];
    let b = vec![0.5f32; k * n];
    a[270] = f32::NAN; // row 0, k-index 270 — inside the second k-block
    check_against_naive(&a, &b, m, k, n);

    let mut out = vec![0.0f32; m * n];
    gemm(&a, &b, &mut out, m, k, n, 1);
    assert!(out[..n].iter().all(|v| v.is_nan()), "row 0 must be fully poisoned");
    assert!(out[n..].iter().all(|v| !v.is_nan()), "other rows must stay finite");
}
