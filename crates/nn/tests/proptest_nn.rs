//! Randomized property tests for the tensor algebra, autograd and
//! serialization invariants of `vc-nn`.
//!
//! The original proptest harness is unavailable offline, so each property
//! runs over a fixed number of seeded random cases instead — same
//! assertions, deterministic inputs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_nn::ops::softmax::{log_softmax_rows, softmax_rows};
use vc_nn::prelude::*;

const CASES: usize = 64;

/// A rank-2 tensor with bounded entries.
fn tensor2(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
    Tensor::from_vec(&[rows, cols], data)
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn matmul_is_right_distributive() {
    let mut rng = StdRng::seed_from_u64(51);
    for _ in 0..CASES {
        let a = tensor2(&mut rng, 3, 4);
        let b = tensor2(&mut rng, 4, 2);
        let c = tensor2(&mut rng, 4, 2);
        let bc = b.zip(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for i in 0..lhs.numel() {
            assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }
}

#[test]
fn matmul_scalar_commutes() {
    let mut rng = StdRng::seed_from_u64(52);
    for _ in 0..CASES {
        let a = tensor2(&mut rng, 2, 3);
        let b = tensor2(&mut rng, 3, 3);
        let k = rng.gen_range(-2.0f32..2.0);
        let lhs = a.map(|x| k * x).matmul(&b);
        let rhs = a.matmul(&b).map(|x| k * x);
        for i in 0..lhs.numel() {
            assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }
}

#[test]
fn transpose_reverses_matmul() {
    let mut rng = StdRng::seed_from_u64(53);
    for _ in 0..CASES {
        let a = tensor2(&mut rng, 3, 2);
        let b = tensor2(&mut rng, 2, 4);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        assert_eq!(lhs.shape(), rhs.shape());
        for i in 0..lhs.numel() {
            assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }
}

#[test]
fn softmax_rows_are_distributions() {
    let mut rng = StdRng::seed_from_u64(54);
    for _ in 0..CASES {
        let x = tensor2(&mut rng, 4, 6);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let row: Vec<f32> = (0..6).map(|c| y.at2(r, c)).collect();
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn log_softmax_is_log_of_softmax() {
    let mut rng = StdRng::seed_from_u64(55);
    for _ in 0..CASES {
        let x = tensor2(&mut rng, 3, 5);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for i in 0..x.numel() {
            assert!(close(ls.data()[i], s.data()[i].max(1e-20).ln(), 1e-3));
        }
    }
}

#[test]
fn softmax_invariant_under_row_shift() {
    let mut rng = StdRng::seed_from_u64(56);
    for _ in 0..CASES {
        let x = tensor2(&mut rng, 2, 4);
        let shift = rng.gen_range(-5.0f32..5.0);
        let y1 = softmax_rows(&x);
        let y2 = softmax_rows(&x.map(|v| v + shift));
        for i in 0..x.numel() {
            assert!(close(y1.data()[i], y2.data()[i], 1e-4));
        }
    }
}

#[test]
fn autograd_product_rule() {
    // d/dx sum(x ⊙ y) = y.
    let mut rng = StdRng::seed_from_u64(57);
    for _ in 0..CASES {
        let x = tensor2(&mut rng, 1, 5);
        let y = tensor2(&mut rng, 1, 5);
        let mut g = Graph::new();
        let xn = g.leaf(x.clone());
        let yn = g.leaf(y.clone());
        let m = g.mul(xn, yn);
        let loss = g.sum_all(m);
        let grad = g.grad_of(loss, xn).unwrap();
        for i in 0..5 {
            assert!(close(grad.data()[i], y.data()[i], 1e-5));
        }
    }
}

#[test]
fn autograd_chain_rule_scale() {
    // d/dx sum((k·x)²) = 2k²x.
    let mut rng = StdRng::seed_from_u64(58);
    for _ in 0..CASES {
        let x = tensor2(&mut rng, 1, 4);
        let k = rng.gen_range(-3.0f32..3.0);
        let mut g = Graph::new();
        let xn = g.leaf(x.clone());
        let s = g.scale(xn, k);
        let sq = g.square(s);
        let loss = g.sum_all(sq);
        let grad = g.grad_of(loss, xn).unwrap();
        for i in 0..4 {
            assert!(close(grad.data()[i], 2.0 * k * k * x.data()[i], 1e-3));
        }
    }
}

#[test]
fn grad_clip_bounds_norm() {
    let mut rng = StdRng::seed_from_u64(59);
    for _ in 0..CASES {
        let data: Vec<f32> = (0..16).map(|_| rng.gen_range(-10.0f32..10.0)).collect();
        let max_norm = rng.gen_range(0.1f32..5.0);
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(&[16]));
        store.accumulate_grad(id, &Tensor::from_vec(&[16], data));
        store.clip_grad_norm(max_norm);
        assert!(store.grad_global_norm() <= max_norm + 1e-4);
    }
}

#[test]
fn checkpoint_roundtrip() {
    let mut rng = StdRng::seed_from_u64(60);
    for _ in 0..CASES {
        let data: Vec<f32> = (0..12).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let mut store = ParamStore::new();
        store.add("a", Tensor::from_vec(&[3, 4], data.clone()));
        store.add_frozen("b", Tensor::from_vec(&[12], data));
        let restored = load_checkpoint(&save_checkpoint(&store)).unwrap();
        assert_eq!(restored.flat_values(), store.flat_values());
    }
}

#[test]
fn flat_grads_linear_in_accumulation() {
    let mut rng = StdRng::seed_from_u64(61);
    for _ in 0..CASES {
        let data: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(&[8]));
        let g = Tensor::from_vec(&[8], data);
        store.accumulate_grad(id, &g);
        let once = store.flat_grads();
        store.accumulate_grad(id, &g);
        let twice = store.flat_grads();
        for i in 0..8 {
            assert!(close(twice[i], 2.0 * once[i], 1e-5));
        }
    }
}

#[test]
fn adam_moves_against_gradient() {
    use vc_nn::optim::{Adam, Optimizer};
    // One Adam step on f(w) = w²/2 (grad = w) must move toward 0 unless
    // already there.
    let mut rng = StdRng::seed_from_u64(62);
    for _ in 0..CASES {
        let start = rng.gen_range(-3.0f32..3.0);
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(&[1], vec![start]));
        let mut opt = Adam::new(0.01);
        store.accumulate_grad(id, &Tensor::from_vec(&[1], vec![start]));
        opt.step(&mut store);
        let after = store.value(id).data()[0];
        // Adam's bias-corrected first step is ≈ lr regardless of gradient
        // size, so tiny starts can overshoot zero; only assert when the
        // distance to the optimum exceeds the step size.
        if start.abs() > 0.05 {
            assert!(after.abs() < start.abs());
        }
    }
}
