//! Property-based tests for the tensor algebra, autograd and serialization
//! invariants of `vc-nn`.

use proptest::prelude::*;
use vc_nn::ops::softmax::{log_softmax_rows, softmax_rows};
use vc_nn::prelude::*;

/// Strategy: a rank-2 tensor with bounded entries.
fn tensor2(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(&[rows, cols], data))
}

fn close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_right_distributive(a in tensor2(3, 4), b in tensor2(4, 2), c in tensor2(4, 2)) {
        let bc = b.zip(&c, |x, y| x + y);
        let lhs = a.matmul(&bc);
        let rhs = a.matmul(&b).zip(&a.matmul(&c), |x, y| x + y);
        for i in 0..lhs.numel() {
            prop_assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }

    #[test]
    fn matmul_scalar_commutes(a in tensor2(2, 3), b in tensor2(3, 3), k in -2.0f32..2.0) {
        let lhs = a.map(|x| k * x).matmul(&b);
        let rhs = a.matmul(&b).map(|x| k * x);
        for i in 0..lhs.numel() {
            prop_assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in tensor2(3, 2), b in tensor2(2, 4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert_eq!(lhs.shape(), rhs.shape());
        for i in 0..lhs.numel() {
            prop_assert!(close(lhs.data()[i], rhs.data()[i], 1e-4));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(x in tensor2(4, 6)) {
        let y = softmax_rows(&x);
        for r in 0..4 {
            let row: Vec<f32> = (0..6).map(|c| y.at2(r, c)).collect();
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax(x in tensor2(3, 5)) {
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for i in 0..x.numel() {
            prop_assert!(close(ls.data()[i], s.data()[i].max(1e-20).ln(), 1e-3));
        }
    }

    #[test]
    fn softmax_invariant_under_row_shift(x in tensor2(2, 4), shift in -5.0f32..5.0) {
        let y1 = softmax_rows(&x);
        let y2 = softmax_rows(&x.map(|v| v + shift));
        for i in 0..x.numel() {
            prop_assert!(close(y1.data()[i], y2.data()[i], 1e-4));
        }
    }

    #[test]
    fn autograd_product_rule(x in tensor2(1, 5), y in tensor2(1, 5)) {
        // d/dx sum(x ⊙ y) = y.
        let mut g = Graph::new();
        let xn = g.leaf(x.clone());
        let yn = g.leaf(y.clone());
        let m = g.mul(xn, yn);
        let loss = g.sum_all(m);
        let grad = g.grad_of(loss, xn).unwrap();
        for i in 0..5 {
            prop_assert!(close(grad.data()[i], y.data()[i], 1e-5));
        }
    }

    #[test]
    fn autograd_chain_rule_scale(x in tensor2(1, 4), k in -3.0f32..3.0) {
        // d/dx sum((k·x)²) = 2k²x.
        let mut g = Graph::new();
        let xn = g.leaf(x.clone());
        let s = g.scale(xn, k);
        let sq = g.square(s);
        let loss = g.sum_all(sq);
        let grad = g.grad_of(loss, xn).unwrap();
        for i in 0..4 {
            prop_assert!(close(grad.data()[i], 2.0 * k * k * x.data()[i], 1e-3));
        }
    }

    #[test]
    fn grad_clip_bounds_norm(data in proptest::collection::vec(-10.0f32..10.0, 16),
                             max_norm in 0.1f32..5.0) {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(&[16]));
        store.accumulate_grad(id, &Tensor::from_vec(&[16], data));
        store.clip_grad_norm(max_norm);
        prop_assert!(store.grad_global_norm() <= max_norm + 1e-4);
    }

    #[test]
    fn checkpoint_roundtrip(data in proptest::collection::vec(-5.0f32..5.0, 12)) {
        let mut store = ParamStore::new();
        store.add("a", Tensor::from_vec(&[3, 4], data.clone()));
        store.add_frozen("b", Tensor::from_vec(&[12], data));
        let restored = load_checkpoint(&save_checkpoint(&store)).unwrap();
        prop_assert_eq!(restored.flat_values(), store.flat_values());
    }

    #[test]
    fn flat_grads_linear_in_accumulation(data in proptest::collection::vec(-1.0f32..1.0, 8)) {
        let mut store = ParamStore::new();
        let id = store.add("p", Tensor::zeros(&[8]));
        let g = Tensor::from_vec(&[8], data);
        store.accumulate_grad(id, &g);
        let once = store.flat_grads();
        store.accumulate_grad(id, &g);
        let twice = store.flat_grads();
        for i in 0..8 {
            prop_assert!(close(twice[i], 2.0 * once[i], 1e-5));
        }
    }

    #[test]
    fn adam_moves_against_gradient(start in -3.0f32..3.0) {
        use vc_nn::optim::{Adam, Optimizer};
        // One Adam step on f(w) = w²/2 (grad = w) must move toward 0 unless
        // already there.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(&[1], vec![start]));
        let mut opt = Adam::new(0.01);
        store.accumulate_grad(id, &Tensor::from_vec(&[1], vec![start]));
        opt.step(&mut store);
        let after = store.value(id).data()[0];
        // Adam's bias-corrected first step is ≈ lr regardless of gradient
        // size, so tiny starts can overshoot zero; only assert when the
        // distance to the optimum exceeds the step size.
        if start.abs() > 0.05 {
            prop_assert!(after.abs() < start.abs());
        }
    }
}
