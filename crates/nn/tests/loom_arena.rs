//! Loom model checking for the tensor arena's global counters
//! (`crates/nn/src/arena.rs`).
//!
//! The freelists themselves are thread-local (no interleaving to check);
//! what concurrency can break is the *global* HITS/MISSES/HELD_BYTES
//! accounting shared by every thread's shelf. Under `--cfg loom` the caps
//! shrink (`MAX_BUFFERS = 2`, `MAX_HELD_BYTES = 64`) so the over-cap drop
//! path is reached with tiny buffers.
//!
//! Run via `cargo xtask analyze --loom`; empty without `--cfg loom`.

#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::arena;

/// Two threads churning their thread-local shelves concurrently: in every
/// interleaving each take ticks exactly one of hits/misses, and once all
/// model threads have exited (their shelves dropped), held bytes return to
/// the pre-model baseline.
///
/// One test function on purpose: the counters are process-wide, so a
/// single model keeps executions independent (the suite also runs with
/// `--test-threads=1` for the same reason).
#[test]
fn concurrent_churn_keeps_counters_consistent() {
    let baseline_held = arena::arena_stats().held_bytes;
    loom::model(|| {
        let s0 = arena::arena_stats();
        let churn = || {
            // Three puts against MAX_BUFFERS = 2 / MAX_HELD_BYTES = 64
            // drive both the park path and the over-cap drop path.
            let mut a = arena::take_f32(4);
            a.resize(4, 1.0);
            let mut b = arena::take_f32(4);
            b.resize(4, 2.0);
            let mut c = arena::take_f32(4);
            c.resize(4, 3.0);
            arena::put_f32(a);
            arena::put_f32(b);
            arena::put_f32(c);
            let hit = arena::take_f32(4); // served from this thread's shelf
            arena::put_f32(hit);
        };
        let t1 = loom::thread::spawn(churn);
        let t2 = loom::thread::spawn(churn);
        t1.join().unwrap();
        t2.join().unwrap();
        let s1 = arena::arena_stats();
        // 4 takes per thread, each exactly one hit or one miss — no tick
        // may be lost or double-counted in any interleaving.
        assert_eq!(
            (s1.hits - s0.hits) + (s1.misses - s0.misses),
            8,
            "hits+misses must equal the number of takes"
        );
    });
    // Every explored execution joined its threads before returning, so all
    // thread-local shelves have been dropped and returned their holdings.
    assert_eq!(
        arena::arena_stats().held_bytes,
        baseline_held,
        "held bytes must return to baseline once all model threads exit"
    );
}
