//! Regression and equivalence tests for the blocked GEMM/conv kernel layer.
//!
//! Three families:
//!
//! 1. **NaN propagation** — the seed kernel's `if a == 0.0 { continue }`
//!    shortcut silently converted `0 · NaN` and `0 · ∞` into `0`, hiding
//!    corrupted activations from the training chief's gradient quarantine.
//!    These tests fail against that kernel and pin the IEEE-faithful
//!    behavior through every public entry point (matmul, conv, a
//!    linear-layer computation).
//! 2. **Blocked vs naive equivalence** — seeded randomized comparison of
//!    the blocked kernel against the unblocked reference across awkward
//!    shapes (primes, non-multiples of the tile, degenerate dims), exact to
//!    the bit.
//! 3. **Determinism** — same inputs produce bit-identical outputs across
//!    repeated runs and across kernel thread settings, the property
//!    checkpoint-resume relies on.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_nn::ops::conv::conv2d_forward;
use vc_nn::ops::gemm;
use vc_nn::prelude::*;

fn tensor2(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    Tensor::from_vec(&[rows, cols], data)
}

// ------------------------------------------------------- NaN propagation

#[test]
fn matmul_zero_times_nan_poisons_output() {
    // Row of zeros times a column containing NaN: the zero-skip kernel
    // returned 0 here; IEEE 754 demands NaN.
    let a = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
    let b = Tensor::from_vec(&[3, 2], vec![f32::NAN, 1.0, 2.0, 3.0, 4.0, 5.0]);
    let c = a.matmul(&b);
    assert!(c.data()[0].is_nan(), "0·NaN must stay NaN, got {}", c.data()[0]);
    assert_eq!(c.data()[1], 0.0, "column without the NaN is unaffected");
}

#[test]
fn matmul_zero_times_inf_poisons_output() {
    let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
    let b = Tensor::from_vec(&[2, 2], vec![f32::INFINITY, 0.0, 5.0, 6.0]);
    let c = a.matmul(&b);
    assert!(c.data()[0].is_nan(), "0·∞ must produce NaN, got {}", c.data()[0]);
    assert_eq!(c.data()[1], 6.0, "finite lanes are unaffected");
}

#[test]
fn conv_zero_weight_times_nan_input_poisons_output() {
    // A poisoned activation map convolved with all-zero weights: the old
    // per-item matmul silently produced a clean zero output.
    let cfg = ConvCfg { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
    let mut x = vec![0.5f32; 2 * 16];
    x[5] = f32::NAN;
    let x = Tensor::from_vec(&[2, 1, 4, 4], x);
    let w = Tensor::from_vec(&[1, 1, 3, 3], vec![0.0; 9]);
    let b = Tensor::from_vec(&[1], vec![0.0]);
    let out = conv2d_forward(&x, &w, &b, &cfg).output;
    assert!(
        out.data().iter().any(|v| v.is_nan()),
        "NaN input through zero weights must surface in the conv output"
    );
    // The second batch item never touches the NaN and stays finite.
    assert!(out.data()[16..].iter().all(|v| v.is_finite()), "clean item must stay clean");
}

#[test]
fn linear_layer_zero_weight_times_nan_input_poisons_output() {
    // x · W + b with NaN in x and W = 0 — the shape every Linear layer
    // computes. A NaN activation must reach the output even through dead
    // (all-zero) weights, or the chief's NaN quarantine never fires.
    let x = Tensor::from_vec(&[1, 3], vec![1.0, f32::NAN, 2.0]);
    let w = Tensor::from_vec(&[3, 2], vec![0.0; 6]);
    let y = x.matmul(&w);
    assert!(y.data().iter().all(|v| v.is_nan()), "NaN·0 must poison the linear output: {y:?}");
}

// ------------------------------------------- blocked vs naive equivalence

#[test]
fn randomized_blocked_matches_naive_bitwise() {
    // Awkward shapes: primes, tile-size non-multiples, degenerate dims.
    let shapes: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 1),
        (5, 7, 11),
        (13, 17, 19),
        (31, 37, 41),
        (1, 97, 1),
        (64, 1, 64),
        (3, 300, 5),
        (47, 53, 8),
        (16, 16, 16),
    ];
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for &(m, k, n) in shapes {
        let a = tensor2(&mut rng, m, k);
        let b = tensor2(&mut rng, k, n);
        let mut want = vec![0.0f32; m * n];
        gemm::matmul_naive(a.data(), b.data(), &mut want, m, k, n);
        for threads in [1usize, 2, 4] {
            let mut got = vec![0.0f32; m * n];
            gemm::gemm(a.data(), b.data(), &mut got, m, k, n, threads);
            let same = got.iter().zip(&want).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "blocked != naive for m={m} k={k} n={n} threads={threads}");
        }
    }
}

#[test]
fn transposed_variants_match_naive_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut scratch = Vec::new();
    for &(m, k, n) in &[(3, 5, 7), (13, 8, 21), (1, 19, 4)] {
        let a = tensor2(&mut rng, m, k);
        let bt = tensor2(&mut rng, n, k);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_nt(a.data(), bt.data(), &mut got, m, k, n, &mut scratch, 1);
        let mut b_mat = Vec::new();
        gemm::transpose_into(bt.data(), n, k, &mut b_mat);
        let mut want = vec![0.0f32; m * n];
        gemm::matmul_naive(a.data(), &b_mat, &mut want, m, k, n);
        assert_eq!(got, want, "gemm_nt m={m} k={k} n={n}");
    }
}

// ---------------------------------------------------------- determinism

#[test]
fn same_seed_same_threads_is_bit_identical() {
    let run = |threads: usize| -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(7);
        let a = tensor2(&mut rng, 37, 113);
        let b = tensor2(&mut rng, 113, 29);
        let mut out = vec![0.0f32; 37 * 29];
        gemm::gemm(a.data(), b.data(), &mut out, 37, 113, 29, threads);
        out.iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(run(1), run(1), "repeated single-thread runs must match bitwise");
    assert_eq!(run(1), run(3), "thread count must not change a single bit");
}

#[test]
fn matmul_into_reuses_buffer_and_matches_matmul() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = tensor2(&mut rng, 9, 14);
    let b = tensor2(&mut rng, 14, 6);
    let want = a.matmul(&b);
    let mut out = Tensor::from_vec(&[1], vec![0.0]);
    a.matmul_into(&b, &mut out);
    assert_eq!(out.shape(), &[9, 6]);
    assert_eq!(out.data(), want.data());
    // Second call reuses the now-correctly-sized buffer.
    a.matmul_into(&b, &mut out);
    assert_eq!(out.data(), want.data());
}
