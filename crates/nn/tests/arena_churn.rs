//! Multi-thread stress test for the tensor arena (`vc_nn::arena`).
//!
//! Eight threads churn take/put cycles over a spread of buffer sizes and
//! the process-wide counters must stay exact: every take is either a hit
//! or a miss, parked bytes never exceed the documented per-thread cap, and
//! once every thread has exited (running its freelist TLS destructor) the
//! arena holds exactly what it held before the churn.
//!
//! The loom suite (`tests/loom_arena.rs`) proves the same invariants
//! exhaustively over a tiny schedule space; this test covers real parallel
//! timing at scale on actual OS threads.

use vc_nn::arena::{arena_stats, put_f32, put_usize, take_f32, take_f32_zeroed, take_usize};

const THREADS: u64 = 8;
const ROUNDS: u64 = 200;
/// Takes per round per thread: 3 f32 takes + 1 usize take.
const TAKES_PER_ROUND: u64 = 4;
/// Documented per-thread, per-class parked-bytes cap (see `arena.rs`).
const MAX_HELD_BYTES_PER_CLASS: u64 = 256 << 20;
/// Element classes exercised here: `f32` and `usize`.
const CLASSES: u64 = 2;

#[test]
fn eight_thread_churn_keeps_counters_exact() {
    let before = arena_stats();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Vary capacities per thread and round so freelists see
                    // both exact-fit reuse and first-fit-larger reuse.
                    let cap = 16 + ((t * 37 + round * 11) % 240) as usize;
                    let a = take_f32(cap);
                    assert!(a.capacity() >= cap && a.is_empty());
                    let z = take_f32_zeroed(cap / 2);
                    assert_eq!(z.len(), cap / 2);
                    assert!(z.iter().all(|&x| x == 0.0), "recycled buffer not zeroed");
                    let mut shape = take_usize(4);
                    shape.extend_from_slice(&[2, 3, cap, 1]);
                    let b = take_f32(cap * 2);
                    put_f32(a);
                    put_f32(b);
                    put_f32(z);
                    put_usize(shape);
                    let held = arena_stats().held_bytes;
                    assert!(
                        held <= THREADS * CLASSES * MAX_HELD_BYTES_PER_CLASS,
                        "parked bytes {held} exceed the documented cap"
                    );
                }
            });
        }
    });
    let after = arena_stats();
    let takes = THREADS * ROUNDS * TAKES_PER_ROUND;
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    assert_eq!(hits + misses, takes, "every take must be counted as a hit or a miss");
    assert!(hits > 0, "churn over repeated sizes must produce recycling hits");
    // `join` may return before the exiting thread's TLS destructors have
    // finished, so parked bytes can lag briefly; they must converge back to
    // the pre-churn level once every freelist destructor has run.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let held = arena_stats().held_bytes;
        if held == before.held_bytes {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread exit must return every parked byte to the allocator (still {held} parked)"
        );
        std::thread::yield_now();
    }
}
