//! Pins the tensor arena's central guarantee: after a short warmup, a full
//! forward + backward training step through the graph performs **zero** heap
//! allocations. Every activation, gradient, scratch buffer, tape node and
//! shape vector must come out of (and return to) the per-thread freelists.
//!
//! The test installs a counting `GlobalAlloc` wrapper, warms the arena with a
//! few steps, then asserts the allocation counter does not move across
//! subsequent steps. Any new `Vec` sneaking into the hot path shows up as a
//! nonzero delta with the step index that regressed.
#![allow(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vc_nn::arena;
use vc_nn::graph::Graph;
use vc_nn::ops::conv::ConvCfg;
use vc_nn::ops::gemm::set_kernel_threads;
use vc_nn::param::{ParamId, ParamStore};
use vc_nn::tensor::Tensor;

/// Counts every `alloc`/`realloc` hitting the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Model {
    store: ParamStore,
    conv_w: ParamId,
    conv_b: ParamId,
    gamma: ParamId,
    beta: ParamId,
    lin_w: ParamId,
    lin_b: ParamId,
    cfg: ConvCfg,
}

const BATCH: usize = 2;
const CH: usize = 3;
const HW: usize = 8;
const FEAT: usize = 8 * HW * HW; // conv keeps spatial dims (stride 1, pad 1)
const ACTIONS: usize = 9;

fn build_model() -> Model {
    let mut store = ParamStore::new();
    let cfg = ConvCfg { in_channels: CH, out_channels: 8, kernel: 3, stride: 1, padding: 1 };
    let kw: Vec<f32> = (0..8 * CH * 9).map(|i| ((i as f32 * 0.37).sin()) * 0.1).collect();
    let conv_w = store.add("conv.w", Tensor::from_vec(&[8, CH, 3, 3], kw));
    let conv_b = store.add("conv.b", Tensor::zeros(&[8]));
    let gamma = store.add("ln.gamma", Tensor::ones(&[FEAT]));
    let beta = store.add("ln.beta", Tensor::zeros(&[FEAT]));
    let lw: Vec<f32> = (0..FEAT * ACTIONS).map(|i| ((i as f32 * 0.13).cos()) * 0.05).collect();
    let lin_w = store.add("lin.w", Tensor::from_vec(&[FEAT, ACTIONS], lw));
    let lin_b = store.add("lin.b", Tensor::zeros(&[ACTIONS]));
    Model { store, conv_w, conv_b, gamma, beta, lin_w, lin_b, cfg }
}

/// One full training step: conv → layer-norm → relu → linear →
/// log-softmax → pick → mean loss, then backward + grad reset.
fn train_step(m: &mut Model, input: &[f32]) -> f32 {
    let mut g = Graph::new();
    let x = g.leaf(Tensor::from_slice(&[BATCH, CH, HW, HW], input));
    let w = g.param(&m.store, m.conv_w);
    let b = g.param(&m.store, m.conv_b);
    let y = g.conv2d(x, w, b, m.cfg);
    let yf = g.reshape(y, &[BATCH, FEAT]);
    let gamma = g.param(&m.store, m.gamma);
    let beta = g.param(&m.store, m.beta);
    let ln = g.layer_norm(yf, gamma, beta, 1e-5);
    let h = g.relu(ln);
    let lw = g.param(&m.store, m.lin_w);
    let lb = g.param(&m.store, m.lin_b);
    let logits = g.matmul(h, lw);
    let logits = g.add_row_broadcast(logits, lb);
    let lp = g.log_softmax(logits);
    // Action indices must also come from the arena — a `vec![..]` here
    // would be a per-step allocation of exactly the kind this test bans.
    let mut idx = arena::take_usize(BATCH);
    idx.extend_from_slice(&[1, 4]);
    let picked = g.pick_column(lp, idx);
    let mean = g.mean_all(picked);
    let loss = g.neg(mean);
    let l = g.backward(loss, &mut m.store);
    m.store.zero_grads();
    l
}

#[test]
fn steady_state_training_step_performs_zero_heap_allocations() {
    set_kernel_threads(1);
    let mut m = build_model();
    let input: Vec<f32> =
        (0..BATCH * CH * HW * HW).map(|i| ((i as f32 * 0.21).sin()) * 0.5).collect();

    // Warm the freelists: the first steps populate every buffer size class
    // the graph will ever request.
    let mut loss = 0.0;
    for _ in 0..5 {
        loss = train_step(&mut m, &input);
    }
    assert!(loss.is_finite(), "warmup produced non-finite loss {loss}");

    for step in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let l = train_step(&mut m, &input);
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert!(l.is_finite(), "step {step} produced non-finite loss {l}");
        assert_eq!(
            delta, 0,
            "steady-state step {step} hit the global allocator {delta} time(s); \
             some graph/kernel buffer is bypassing the arena"
        );
    }
}
