//! Checkpoint-footer edge cases the random-corruption fuzz suite misses:
//! truncation *exactly* at the CRC32 footer boundary, files whose CRC is
//! valid but whose shape header is internally inconsistent, and zero-length
//! files. Every case must come back as a typed [`CheckpointError`] — the
//! loader must never panic on hostile bytes.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::param::ParamStore;
use vc_nn::serialize::{
    load_checkpoint_v2, save_checkpoint_v2, AdamState, CheckpointError, TrainCheckpoint,
};
use vc_nn::tensor::Tensor;

/// Local copy of the codec's CRC32 (IEEE 802.3, reflected 0xEDB88320) so
/// tests can forge *valid* footers over deliberately inconsistent bodies.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A small but structurally complete checkpoint: one 2x3 parameter,
/// matching Adam moments, two RNG streams, and a meta string.
fn sample_checkpoint() -> TrainCheckpoint {
    let mut policy = ParamStore::new();
    policy.add("w", Tensor::from_vec(&[2, 3], vec![0.5; 6]));
    TrainCheckpoint {
        policy,
        curiosity: None,
        ppo_opt: AdamState { t: 3, m: vec![0.1; 6], v: vec![0.2; 6] },
        curiosity_opt: None,
        rng_states: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
        episodes: 11,
        rounds: 7,
        meta: "{\"k\":1}".to_owned(),
    }
}

#[test]
fn zero_length_and_tiny_files_are_typed_errors() {
    assert_eq!(load_checkpoint_v2(&[]).unwrap_err(), CheckpointError::Truncated);
    // Every prefix shorter than magic+version is truncation, not a panic.
    let good = save_checkpoint_v2(&sample_checkpoint());
    for n in 1..8 {
        assert_eq!(
            load_checkpoint_v2(&good[..n]).unwrap_err(),
            CheckpointError::Truncated,
            "prefix of {n} bytes"
        );
    }
    // Magic+version alone (8 bytes): past the header check but with no
    // room for body or footer.
    assert_eq!(load_checkpoint_v2(&good[..8]).unwrap_err(), CheckpointError::Truncated);
}

#[test]
fn truncation_exactly_at_footer_boundary() {
    let good = save_checkpoint_v2(&sample_checkpoint());
    let n = good.len();
    // The file ends where the footer should begin: the loader reinterprets
    // the last 4 body bytes as a footer, which cannot match a CRC computed
    // over a body that no longer contains them.
    let at_boundary = &good[..n - 4];
    assert!(
        matches!(
            load_checkpoint_v2(at_boundary).unwrap_err(),
            CheckpointError::BadCrc { .. } | CheckpointError::Truncated
        ),
        "truncation at footer boundary must be typed"
    );
    // Partial footers (1–3 bytes survive) and one byte short of the
    // boundary behave the same way.
    for cut in [n - 1, n - 2, n - 3, n - 5] {
        assert!(
            matches!(
                load_checkpoint_v2(&good[..cut]).unwrap_err(),
                CheckpointError::BadCrc { .. } | CheckpointError::Truncated
            ),
            "cut at {cut}/{n}"
        );
    }
}

#[test]
fn every_truncation_point_is_an_error_never_a_panic() {
    let good = save_checkpoint_v2(&sample_checkpoint());
    for cut in 0..good.len() {
        assert!(load_checkpoint_v2(&good[..cut]).is_err(), "cut at {cut} parsed");
    }
    // The untruncated file still round-trips.
    let back = load_checkpoint_v2(&good).unwrap();
    assert_eq!(back.rounds, 7);
    assert_eq!(back.policy.num_scalars(), 6);
}

#[test]
fn valid_crc_with_inconsistent_adam_shape_is_rejected() {
    // Moments of the wrong (non-empty) length serialize fine — the CRC is
    // honest about the bytes — but the loader must cross-check them
    // against the policy's scalar count.
    let mut ck = sample_checkpoint();
    ck.ppo_opt = AdamState { t: 1, m: vec![0.0; 5], v: vec![0.0; 5] };
    let bytes = save_checkpoint_v2(&ck);
    assert_eq!(
        load_checkpoint_v2(&bytes).unwrap_err(),
        CheckpointError::Inconsistent("ppo Adam moments don't cover the policy")
    );
}

#[test]
fn valid_crc_with_forged_shape_header_is_rejected() {
    let good = save_checkpoint_v2(&sample_checkpoint());
    let mut forged = good.to_vec();
    // Body layout after magic(4)+version(4)+curiosity flag(1): store count
    // u32, then name_len u32 ("w" = 1), name, frozen u8, ndim u32 at
    // offset 4+4+1+4+4+1+1 = 19. Bump ndim from 2 to 200 so the declared
    // shape no longer fits the data that follows.
    let ndim_off = 19;
    assert_eq!(u32::from_le_bytes(forged[ndim_off..ndim_off + 4].try_into().unwrap()), 2);
    forged[ndim_off..ndim_off + 4].copy_from_slice(&200u32.to_le_bytes());
    // Re-seal with a *correct* footer so only the shape header is wrong.
    let body_len = forged.len() - 4;
    let crc = crc32(&forged[..body_len]);
    forged[body_len..].copy_from_slice(&crc.to_le_bytes());
    assert!(
        matches!(
            load_checkpoint_v2(&forged).unwrap_err(),
            CheckpointError::Truncated | CheckpointError::Inconsistent(_)
        ),
        "forged shape header with valid CRC must be typed"
    );
}

#[test]
fn forged_footer_over_garbage_tail_is_rejected() {
    // A file with extra trailing garbage re-sealed under a valid CRC: the
    // body parses but leaves unconsumed bytes, which must not be ignored.
    let good = save_checkpoint_v2(&sample_checkpoint());
    let mut padded = good[..good.len() - 4].to_vec();
    padded.extend_from_slice(&[0xAB; 16]);
    let crc = crc32(&padded);
    padded.extend_from_slice(&crc.to_le_bytes());
    assert!(load_checkpoint_v2(&padded).is_err(), "trailing garbage accepted");
}
