//! Loom model checking for the kernel pool's dispatch protocol
//! (`crates/nn/src/ops/pool.rs`), driven through the real `Shared` code
//! via `pool::model::ModelPool`.
//!
//! Run with:
//! `RUSTFLAGS="--cfg loom" cargo test -p vc-nn --release --test loom_pool -- --test-threads=1`
//! (or just `cargo xtask analyze --loom`). Compiles to an empty test
//! binary without `--cfg loom`.

#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;
use vc_nn::ops::pool::model::ModelPool;
use vc_nn::ops::pool::Job;

fn counting_job(hits: &Arc<AtomicUsize>) -> Job {
    let hits = Arc::clone(hits);
    Box::new(move || {
        hits.fetch_add(1, Ordering::SeqCst);
    })
}

/// A dispatcher helping inline and a racing helper thread must complete
/// every submitted job exactly once, in every interleaving: the queue
/// mutex + `queued` mirror may never double-pop or drop a job.
#[test]
fn helping_completes_each_job_exactly_once() {
    loom::model(|| {
        let pool = Arc::new(ModelPool::new());
        let hits = Arc::new(AtomicUsize::new(0));
        pool.submit(vec![counting_job(&hits), counting_job(&hits)]);
        let helper = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || while pool.try_run_one() {})
        };
        while pool.try_run_one() {}
        helper.join().unwrap();
        // Both jobs ran exactly once: the counter is exact, and the queue
        // and its lock-free mirror agree that nothing is left.
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(pool.queued(), 0);
    });
}

/// The spin-then-park protocol may never lose a submission: whether the
/// worker is spinning, between its last queue check and the park, or
/// already parked, `submit`'s notify must reach it. A lost wakeup
/// surfaces as a loom deadlock.
#[test]
fn parked_worker_never_misses_a_submit() {
    loom::model(|| {
        let pool = Arc::new(ModelPool::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let worker = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || {
                // One worker round at a time until a job actually runs;
                // rounds that park must be woken by the submit below.
                while !pool.worker_step() {}
            })
        };
        pool.submit(vec![counting_job(&hits)]);
        worker.join().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(pool.queued(), 0);
    });
}

/// A panicking job is contained by the worker's `catch_unwind`: the queue
/// stays consistent and subsequent jobs still run, in every interleaving
/// of the panic with a racing submit.
#[test]
fn panicking_job_is_contained() {
    loom::model(|| {
        let pool = Arc::new(ModelPool::new());
        let hits = Arc::new(AtomicUsize::new(0));
        pool.submit(vec![
            Box::new(|| panic!("[loom-contained] deliberate job panic")) as Job,
            counting_job(&hits),
        ]);
        let worker = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || {
                let mut ran = 0;
                while ran < 2 {
                    if pool.worker_step() {
                        ran += 1;
                    }
                }
            })
        };
        worker.join().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 1, "job after the panicking one must still run");
        assert_eq!(pool.queued(), 0);
    });
}
