//! Bit-exact equivalence of every GEMM execution strategy.
//!
//! The pooled dispatcher ([`gemm`]), the scoped-thread baseline
//! ([`gemm_scoped`]) and the sequential reference ([`matmul_naive`]) must
//! agree **bitwise** for every thread count, because the deterministic
//! replay/golden-trace machinery depends on runs being reproducible across
//! machines with different core counts. The pooled path partitions the
//! output into MR-aligned row chunks × L2-sized column panels and runs the
//! packed micro-kernel per cell; the micro-kernel reloads its accumulators
//! from `C` at every KC boundary, so each output element is one strictly
//! ascending-k FMA chain regardless of how the grid was carved. Any
//! divergence here means the partitioning, the packing layout, or the
//! accumulation order changed.
//!
//! The sweep also runs with the SIMD micro-kernel force-disabled
//! ([`set_force_scalar`]): per-lane AVX2 FMA is bit-identical to scalar
//! `f32::mul_add`, so the scalar fallback (non-x86 / Miri / loom builds)
//! must produce the same bits as the vectorized path.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::ops::gemm::{gemm, gemm_scoped, matmul_naive, set_force_scalar, PAR_THRESHOLD};

fn lcg_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1 << 24) as f32) - 0.5;
    }
}

fn check_shape(m: usize, k: usize, n: usize) {
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    lcg_fill(&mut a, 0x9E3779B97F4A7C15 ^ (m * k * n) as u64);
    lcg_fill(&mut b, 0xD1B54A32D192ED03 ^ (m + k + n) as u64);

    let mut reference = vec![0.0f32; m * n];
    matmul_naive(&a, &b, &mut reference, m, k, n);
    let want: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();

    // Both kernel flavors must agree with the reference. The force flag is
    // process-global and tests in this binary run concurrently, but that
    // cannot skew an assertion: whichever kernel actually runs, the bits
    // must match `matmul_naive`.
    for scalar in [false, true] {
        set_force_scalar(scalar);
        for threads in [1usize, 2, 4, 8] {
            let mut pooled = vec![0.0f32; m * n];
            gemm(&a, &b, &mut pooled, m, k, n, threads);
            assert_eq!(
                pooled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want,
                "pooled gemm diverged from naive at {m}x{k}x{n}, \
                 threads={threads}, force_scalar={scalar}"
            );

            let mut scoped = vec![0.0f32; m * n];
            gemm_scoped(&a, &b, &mut scoped, m, k, n, threads);
            assert_eq!(
                scoped.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want,
                "scoped gemm diverged from naive at {m}x{k}x{n}, \
                 threads={threads}, force_scalar={scalar}"
            );
        }
    }
    set_force_scalar(false);
}

#[test]
fn above_threshold_square_shape_is_bitwise_identical() {
    // 160³ = 4.1 M flop-volume, comfortably above the dispatch threshold.
    const { assert!(160 * 160 * 160 >= PAR_THRESHOLD) }
    check_shape(160, 160, 160);
}

#[test]
fn above_threshold_ragged_shape_is_bitwise_identical() {
    // Ragged dims exercise MR/NR tail tiles and a ragged final row chunk.
    let (m, k, n) = (131, 173, 97);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}

#[test]
fn above_threshold_prime_shape_is_bitwise_identical() {
    // All-prime dims: k crosses the KC=256 boundary (accumulator reload),
    // n crosses the NC=128 panel boundary with a ragged last panel, and m
    // leaves a 3-row tail tile below MR.
    let (m, k, n) = (131, 257, 251);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}

#[test]
fn below_threshold_shape_is_bitwise_identical() {
    // 64³ stays sequential in `gemm` for every thread count; `gemm_scoped`
    // still fans out (it has no threshold). Both must match naive exactly.
    const { assert!(64 * 64 * 64 < PAR_THRESHOLD) }
    check_shape(64, 64, 64);
}

#[test]
fn bench_ragged_shape_is_bitwise_identical() {
    // The bench matrix's ragged shape; below threshold, so this pins the
    // sequential packed path (and the scalar fallback) bitwise.
    const { assert!(33 * 65 * 127 < PAR_THRESHOLD) }
    check_shape(33, 65, 127);
}

#[test]
fn more_threads_than_rows_is_bitwise_identical() {
    // threads > m: the row partitioner rounds chunks to MR, leaving fewer
    // row chunks than workers.
    let (m, k, n) = (6, 640, 640);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}

#[test]
fn more_threads_than_panels_is_bitwise_identical() {
    // A single NC column panel (n ≤ 128) and an 8-row output: the whole
    // grid is 2 jobs, so at threads=8 most workers sit idle. Idle workers
    // must not perturb the result or deadlock the drain loop.
    let (m, k, n) = (8, 4096, 64);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}
