//! Bit-exact equivalence of the three GEMM execution strategies.
//!
//! The pooled dispatcher ([`gemm`]), the scoped-thread baseline
//! ([`gemm_scoped`]) and the sequential reference ([`matmul_naive`]) must
//! agree **bitwise** for every thread count, because the deterministic
//! replay/golden-trace machinery depends on runs being reproducible across
//! machines with different core counts. Both parallel paths partition the
//! output into whole-row chunks and run the identical blocked row kernel per
//! chunk, so any divergence here means the partitioning or the micro-kernel
//! accumulation order changed.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::ops::gemm::{gemm, gemm_scoped, matmul_naive, PAR_THRESHOLD};

fn lcg_fill(buf: &mut [f32], mut state: u64) {
    for v in buf.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *v = ((state >> 40) as f32 / (1 << 24) as f32) - 0.5;
    }
}

fn check_shape(m: usize, k: usize, n: usize) {
    let mut a = vec![0.0f32; m * k];
    let mut b = vec![0.0f32; k * n];
    lcg_fill(&mut a, 0x9E3779B97F4A7C15 ^ (m * k * n) as u64);
    lcg_fill(&mut b, 0xD1B54A32D192ED03 ^ (m + k + n) as u64);

    let mut reference = vec![0.0f32; m * n];
    matmul_naive(&a, &b, &mut reference, m, k, n);

    for threads in [1usize, 2, 4, 8] {
        let mut pooled = vec![0.0f32; m * n];
        gemm(&a, &b, &mut pooled, m, k, n, threads);
        assert_eq!(
            pooled.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "pooled gemm diverged from naive at {m}x{k}x{n}, threads={threads}"
        );

        let mut scoped = vec![0.0f32; m * n];
        gemm_scoped(&a, &b, &mut scoped, m, k, n, threads);
        assert_eq!(
            scoped.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "scoped gemm diverged from naive at {m}x{k}x{n}, threads={threads}"
        );
    }
}

#[test]
fn above_threshold_square_shape_is_bitwise_identical() {
    // 160³ = 4.1 M flop-volume, comfortably above the dispatch threshold.
    const { assert!(160 * 160 * 160 >= PAR_THRESHOLD) }
    check_shape(160, 160, 160);
}

#[test]
fn above_threshold_ragged_shape_is_bitwise_identical() {
    // Ragged dims exercise the tail chunk (m not divisible by threads).
    let (m, k, n) = (131, 173, 97);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}

#[test]
fn below_threshold_shape_is_bitwise_identical() {
    // 64³ stays sequential in `gemm` for every thread count; `gemm_scoped`
    // still fans out (it has no threshold). Both must match naive exactly.
    const { assert!(64 * 64 * 64 < PAR_THRESHOLD) }
    check_shape(64, 64, 64);
}

#[test]
fn more_threads_than_rows_is_bitwise_identical() {
    // threads > m forces empty tail chunks in the partitioner.
    let (m, k, n) = (6, 640, 640);
    assert!(m * k * n >= PAR_THRESHOLD, "shape fell below PAR_THRESHOLD");
    check_shape(m, k, n);
}
