//! Pins the parallel-dispatch threshold calibration.
//!
//! `PAR_THRESHOLD` exists because fanning a small GEMM out to the pool costs
//! more than the multiply itself: the committed bench trajectory shows 64³
//! at 46 GFLOP/s single-threaded collapsing to ~3 GFLOP/s when the old
//! `1 << 18` threshold let it spawn threads.
//!
//! Re-measured for the SIMD micro-kernel + packed-panel dispatcher
//! (2026-08): a pooled dispatch costs ~5 µs end to end (pack handoff, job
//! send, drain/copy-back), while the 64³ shape now finishes sequentially in
//! ~9 µs — fan-out would still roughly double its latency, so the floor
//! cannot drop below 64³. The first shape where the overhead amortizes is
//! ~128³ (2.1 M flop-volume, ~73 µs sequential), which is exactly the
//! `1 << 21` boundary; the threshold therefore stays at `1 << 21` for the
//! SIMD path. This test asserts the dispatch decision directly via the
//! pool's dispatch counter: sub-threshold shapes must never reach the pool
//! no matter the configured thread count, and above-threshold shapes must.
//!
//! The whole file is a single `#[test]` because integration-test binaries
//! run tests concurrently and the dispatch counter is process-global; one
//! test keeps the readings race-free.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_nn::ops::gemm::{gemm, PAR_THRESHOLD};
use vc_nn::ops::pool::pool_stats;

#[test]
fn small_gemms_never_dispatch_and_large_gemms_do() {
    // 64³ (the policy-head shape class) sits below the threshold…
    const {
        assert!(
            64 * 64 * 64 < PAR_THRESHOLD,
            "64x64x64 must stay below PAR_THRESHOLD; recalibrate before lowering it"
        );
        // …and the bench's ragged shape does too (it lost 3.6x to fan-out
        // under the old 1 << 18 threshold).
        assert!(33 * 65 * 127 < PAR_THRESHOLD);
    }

    let a = vec![0.25f32; 64 * 64];
    let b = vec![0.5f32; 64 * 64];
    let mut out = vec![0.0f32; 64 * 64];
    for threads in [2usize, 4, 8] {
        let before = pool_stats().dispatches;
        gemm(&a, &b, &mut out, 64, 64, 64, threads);
        let after = pool_stats().dispatches;
        assert_eq!(after - before, 0, "64x64x64 with threads={threads} must not reach the pool");
    }

    // An above-threshold shape with threads >= 2 must route through the pool.
    let (m, k, n) = (160usize, 160, 160);
    assert!(m * k * n >= PAR_THRESHOLD);
    let a = vec![0.25f32; m * k];
    let b = vec![0.5f32; k * n];
    let mut out = vec![0.0f32; m * n];
    let before = pool_stats().dispatches;
    gemm(&a, &b, &mut out, m, k, n, 2);
    let after = pool_stats().dispatches;
    assert!(after > before, "160x160x160 with threads=2 must dispatch to the pool");
}
