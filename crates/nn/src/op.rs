//! The operation vocabulary of the autograd graph.
//!
//! Each [`Op`] variant carries exactly the forward-pass context its backward
//! rule needs (saved im2col columns, layer-norm statistics, picked indices,
//! …). The backward rules themselves live in [`crate::graph`], dispatching
//! on this enum.

use crate::ops::conv::ConvCfg;
use crate::ops::norm::LayerNormCtx;
use crate::tensor::Tensor;

/// One differentiable operation in the graph.
#[derive(Debug)]
pub enum Op {
    /// Constant input (no backward). Parameters are `Leaf`s whose node also
    /// carries a `ParamId`.
    Leaf,
    /// Elementwise `a + b`, same shape.
    Add,
    /// Elementwise `a - b`, same shape.
    Sub,
    /// Elementwise `a * b`, same shape.
    Mul,
    /// Elementwise `-a`.
    Neg,
    /// `x[rows, cols] + b[cols]`, broadcasting `b` over rows.
    AddRowBroadcast,
    /// `c * a` for a compile-time-known scalar.
    Scale(f32),
    /// `a + c` for a compile-time-known scalar.
    AddScalar(f32),
    /// Rank-2 matrix multiply.
    MatMul,
    /// Elementwise max(x, 0).
    Relu,
    /// Elementwise tanh.
    Tanh,
    /// Elementwise logistic sigmoid.
    Sigmoid,
    /// Elementwise exp.
    Exp,
    /// Elementwise ln(max(x, eps)); the clamp keeps log-of-probability
    /// pipelines finite.
    Ln {
        /// Floor applied before the logarithm.
        eps: f32,
    },
    /// Elementwise x².
    Square,
    /// Elementwise clamp to `[lo, hi]`; gradient passes only strictly inside.
    Clamp {
        /// Lower bound.
        lo: f32,
        /// Upper bound.
        hi: f32,
    },
    /// Elementwise min(a, b); gradient follows the selected side.
    MinElem,
    /// Elementwise max(a, b); gradient follows the selected side.
    MaxElem,
    /// Sum over all elements, producing shape `[1]`.
    SumAll,
    /// Mean over all elements, producing shape `[1]`.
    MeanAll,
    /// Per-row mean of a `[rows, cols]` tensor, producing `[rows, 1]`.
    MeanRows,
    /// Shape reinterpretation (same buffer length).
    Reshape,
    /// Column-wise concatenation of two rank-2 tensors.
    ConcatCols {
        /// Width of the first (left) parent.
        left_cols: usize,
    },
    /// Row-wise softmax of a rank-2 tensor.
    Softmax,
    /// Row-wise log-softmax of a rank-2 tensor.
    LogSoftmax,
    /// `out[r, 0] = x[r, indices[r]]` — the per-row action pick used for
    /// log π(a|s).
    PickColumn {
        /// Column picked per row.
        indices: Vec<usize>,
    },
    /// Row gather from a table `[vocab, dim]`: `out[r, :] = table[indices[r], :]`.
    GatherRows {
        /// Table row picked per output row.
        indices: Vec<usize>,
    },
    /// 2-D convolution; saves the whole-batch im2col matrix for backward.
    Conv2d {
        /// Shape/stride/padding of the convolution.
        cfg: ConvCfg,
        /// Saved whole-batch column matrix `[C_in*K*K, B*HO*WO]` for the
        /// backward pass.
        cols: Tensor,
    },
    /// Layer norm over the trailing dimension; saves per-row statistics.
    LayerNorm {
        /// Saved per-row statistics for the backward pass.
        ctx: LayerNormCtx,
    },
}

impl Op {
    /// Human-readable operation name (used in graph debugging).
    pub fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Neg => "neg",
            Op::AddRowBroadcast => "add_row_broadcast",
            Op::Scale(_) => "scale",
            Op::AddScalar(_) => "add_scalar",
            Op::MatMul => "matmul",
            Op::Relu => "relu",
            Op::Tanh => "tanh",
            Op::Sigmoid => "sigmoid",
            Op::Exp => "exp",
            Op::Ln { .. } => "ln",
            Op::Square => "square",
            Op::Clamp { .. } => "clamp",
            Op::MinElem => "min_elem",
            Op::MaxElem => "max_elem",
            Op::SumAll => "sum_all",
            Op::MeanAll => "mean_all",
            Op::MeanRows => "mean_rows",
            Op::Reshape => "reshape",
            Op::ConcatCols { .. } => "concat_cols",
            Op::Softmax => "softmax",
            Op::LogSoftmax => "log_softmax",
            Op::PickColumn { .. } => "pick_column",
            Op::GatherRows { .. } => "gather_rows",
            Op::Conv2d { .. } => "conv2d",
            Op::LayerNorm { .. } => "layer_norm",
        }
    }
}
