//! Thread-local tensor arena: a freelist buffer pool behind every
//! [`Tensor`](crate::tensor::Tensor) and kernel scratch allocation.
//!
//! Training builds and drops one autograd tape per minibatch, so the same
//! buffer sizes recur every step. Instead of round-tripping each activation
//! and gradient through the global allocator, freed buffers park in a
//! per-thread freelist and are handed back out by best-fit capacity: after
//! the first step warms the lists, steady-state forward/backward performs
//! zero heap allocation inside the graph (pinned by the counting-allocator
//! test in `crates/nn/tests/arena_alloc.rs`).
//!
//! ## Ownership rules
//!
//! * Buffers are *owned* by whoever took them; returning them via
//!   [`put_f32`] / [`put_usize`] is optional. A buffer that is never
//!   returned is simply freed by the allocator — the arena is a cache, not
//!   a lifetime system.
//! * [`Tensor`](crate::tensor::Tensor) returns its buffers automatically on
//!   drop, so graph code never calls the arena directly.
//! * Arenas are strictly thread-local: a buffer taken on thread A and
//!   returned on thread B parks in B's freelist. That migration is safe and
//!   only costs cache warmth, so cross-thread flows (the kernel pool's
//!   result cells, and the packed GEMM operand panels shared with workers
//!   behind `Arc`) deliberately route buffers back to the dispatching
//!   thread — over the result channel or via `Arc::try_unwrap` — before
//!   returning them.
//! * Returned buffers are cleared (`len == 0`); takers receive an empty
//!   `Vec` with at least the requested capacity and must fill it
//!   themselves. [`take_f32_zeroed`] packages the common resize-to-zero
//!   pattern.
//!
//! Per-thread growth is bounded (`MAX_BUFFERS` buffers, `MAX_HELD_BYTES`
//! bytes per element class); anything beyond the cap is dropped to the
//! allocator. Global hit/miss/held counters feed the trainer's telemetry
//! gauges (`nn_arena_*`).

use crate::sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;

/// Per-thread, per-class cap on parked buffers.
#[cfg(not(loom))]
const MAX_BUFFERS: usize = 512;
/// Per-thread, per-class cap on parked bytes (256 MiB).
#[cfg(not(loom))]
const MAX_HELD_BYTES: usize = 256 << 20;

/// Model-checking caps, shrunk so `tests/loom_arena.rs` reaches the
/// over-cap drop path with a handful of small buffers.
#[cfg(loom)]
const MAX_BUFFERS: usize = 2;
#[cfg(loom)]
const MAX_HELD_BYTES: usize = 64;

// ordering: HITS/MISSES are monotonic telemetry counters; HELD_BYTES is a
// sum of per-thread deltas where each thread only ever undoes its own
// additions (freelists are thread-local), so no load of any of these gates
// other memory — Relaxed throughout.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static HELD_BYTES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide arena counters (summed over threads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes served from a parked buffer.
    pub hits: u64,
    /// Takes that fell through to the global allocator.
    pub misses: u64,
    /// Bytes currently parked across all thread freelists.
    pub held_bytes: u64,
}

/// Reads the process-wide arena counters.
pub fn arena_stats() -> ArenaStats {
    ArenaStats {
        hits: HITS.load(Ordering::Relaxed), // ordering: telemetry (see statics)
        misses: MISSES.load(Ordering::Relaxed), // ordering: telemetry (see statics)
        held_bytes: HELD_BYTES.load(Ordering::Relaxed), // ordering: telemetry (see statics)
    }
}

/// Zeroes the hit/miss counters (held bytes track live state and are not
/// reset).
pub fn reset_arena_stats() {
    HITS.store(0, Ordering::Relaxed); // ordering: telemetry (see statics)
    MISSES.store(0, Ordering::Relaxed); // ordering: telemetry (see statics)
}

/// One element class of the freelist: buffers sorted ascending by capacity.
struct Shelf<T> {
    free: Vec<Vec<T>>,
    held_bytes: usize,
}

impl<T> Shelf<T> {
    const fn new() -> Self {
        Self { free: Vec::new(), held_bytes: 0 }
    }

    /// Best-fit take: the smallest parked buffer with capacity ≥ `min_cap`,
    /// or a fresh allocation on miss.
    fn take(&mut self, min_cap: usize) -> Vec<T> {
        if min_cap == 0 {
            // Don't burn a parked buffer (or a counter tick) on an empty
            // request; `Vec::new` doesn't allocate.
            return Vec::new();
        }
        let idx = self.free.partition_point(|v| v.capacity() < min_cap);
        if idx < self.free.len() {
            let v = self.free.remove(idx);
            self.held_bytes -= v.capacity() * size_of::<T>();
            // ordering: telemetry counters (see statics); each thread only
            // subtracts bytes it previously added.
            HELD_BYTES.fetch_sub((v.capacity() * size_of::<T>()) as u64, Ordering::Relaxed);
            HITS.fetch_add(1, Ordering::Relaxed); // ordering: telemetry (see statics)
            v
        } else {
            MISSES.fetch_add(1, Ordering::Relaxed); // ordering: telemetry (see statics)
            Vec::with_capacity(min_cap)
        }
    }

    /// Parks a cleared buffer, dropping it instead when over the caps.
    fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        let bytes = v.capacity() * size_of::<T>();
        if bytes == 0 || self.free.len() >= MAX_BUFFERS || self.held_bytes + bytes > MAX_HELD_BYTES
        {
            return; // dropped to the allocator
        }
        let idx = self.free.partition_point(|p| p.capacity() < v.capacity());
        self.free.insert(idx, v);
        self.held_bytes += bytes;
        HELD_BYTES.fetch_add(bytes as u64, Ordering::Relaxed); // ordering: telemetry (see statics)
    }
}

impl<T> Drop for Shelf<T> {
    fn drop(&mut self) {
        // ordering: telemetry (see statics); returns this thread's own
        // contribution on thread exit.
        HELD_BYTES.fetch_sub(self.held_bytes as u64, Ordering::Relaxed);
    }
}

struct ArenaInner {
    f32s: Shelf<f32>,
    usizes: Shelf<usize>,
}

thread_local! {
    static ARENA: RefCell<ArenaInner> =
        const { RefCell::new(ArenaInner { f32s: Shelf::new(), usizes: Shelf::new() }) };
}

/// An empty `Vec<f32>` with capacity ≥ `min_cap`, recycled when possible.
pub fn take_f32(min_cap: usize) -> Vec<f32> {
    ARENA
        .try_with(|a| a.borrow_mut().f32s.take(min_cap))
        .unwrap_or_else(|_| Vec::with_capacity(min_cap))
}

/// A zero-filled `Vec<f32>` of exactly `len` elements, recycled when
/// possible.
pub fn take_f32_zeroed(len: usize) -> Vec<f32> {
    let mut v = take_f32(len);
    v.resize(len, 0.0);
    v
}

/// Returns an `f32` buffer to the current thread's freelist. The buffer is
/// cleared; callers must not rely on its contents surviving.
pub fn put_f32(v: Vec<f32>) {
    let _ = ARENA.try_with(|a| a.borrow_mut().f32s.put(v));
}

/// An empty `Vec<usize>` with capacity ≥ `min_cap`, recycled when possible.
pub fn take_usize(min_cap: usize) -> Vec<usize> {
    ARENA
        .try_with(|a| a.borrow_mut().usizes.take(min_cap))
        .unwrap_or_else(|_| Vec::with_capacity(min_cap))
}

/// A recycled copy of `src` (the tensor-shape pattern).
pub fn take_usize_copy(src: &[usize]) -> Vec<usize> {
    let mut v = take_usize(src.len());
    v.extend_from_slice(src);
    v
}

/// Returns a `usize` buffer to the current thread's freelist.
pub fn put_usize(v: Vec<usize>) {
    let _ = ARENA.try_with(|a| a.borrow_mut().usizes.put(v));
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_reuses_capacity() {
        let mut v = take_f32(100);
        v.resize(100, 1.5);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        put_f32(v);
        let v2 = take_f32(64);
        // Best fit must hand back the same cleared buffer.
        assert_eq!(v2.len(), 0);
        assert!(v2.capacity() >= 64);
        if v2.capacity() == cap {
            assert_eq!(v2.as_ptr(), ptr, "expected the parked buffer back");
        }
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        // Park two buffers; a small request must not consume the big one.
        let mut small = take_f32(10);
        small.resize(10, 0.0);
        let mut big = take_f32(10_000);
        big.resize(10_000, 0.0);
        let big_cap = big.capacity();
        put_f32(big);
        put_f32(small);
        let got = take_f32(5);
        assert!(got.capacity() < big_cap, "best-fit must skip the large buffer");
        let got_big = take_f32(9_000);
        assert!(got_big.capacity() >= 9_000);
    }

    #[test]
    fn zeroed_take_is_fully_zero_after_recycling_dirty_buffer() {
        let mut v = take_f32(32);
        v.resize(32, f32::NAN);
        put_f32(v);
        let z = take_f32_zeroed(32);
        assert_eq!(z.len(), 32);
        assert!(z.iter().all(|&x| x == 0.0), "recycled buffer leaked stale data");
    }

    #[test]
    fn stats_move_on_take_and_put() {
        let before = arena_stats();
        let mut v = take_f32(1 << 12);
        v.resize(1 << 12, 0.0);
        put_f32(v);
        let _hit = take_f32(1 << 12);
        let after = arena_stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
    }

    #[test]
    fn usize_shelf_roundtrip() {
        let shape = take_usize_copy(&[3, 4, 5]);
        assert_eq!(shape, vec![3, 4, 5]);
        put_usize(shape);
        let v = take_usize(2);
        assert!(v.is_empty());
        assert!(v.capacity() >= 2);
    }
}
