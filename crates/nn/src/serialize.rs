//! Binary checkpointing of a [`ParamStore`].
//!
//! The paper's training process "periodically saves DNN parameters for
//! testing" (Sec VI-D); this module is that mechanism. The format is a
//! simple self-describing little-endian layout:
//!
//! ```text
//! magic "VCNN" | u32 version | u32 param-count |
//!   per param: u32 name-len | name bytes | u8 frozen |
//!              u32 ndim | u32 dims... | f32 data...
//! ```

use crate::param::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"VCNN";
const VERSION: u32 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A string field was not valid UTF-8.
    BadName,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "checkpoint contains non-UTF-8 name"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every parameter (values only; gradients are transient).
pub fn save_checkpoint(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + store.num_scalars() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u8(store.is_frozen(id) as u8);
        let value = store.value(id);
        buf.put_u32_le(value.ndim() as u32);
        for &d in value.shape() {
            buf.put_u32_le(d as u32);
        }
        for &x in value.data() {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Reconstructs a [`ParamStore`] from [`save_checkpoint`] output. Parameter
/// ids are assigned in the original registration order, so layers built
/// against the original store remain valid against the restored one.
pub fn load_checkpoint(mut buf: &[u8]) -> Result<ParamStore, CheckpointError> {
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len + 1 + 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| CheckpointError::BadName)?;
        let frozen = buf.get_u8() != 0;
        let ndim = buf.get_u32_le() as usize;
        if buf.remaining() < ndim * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u32_le() as usize);
        }
        let numel: usize = shape.iter().product();
        if buf.remaining() < numel * 4 {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        let tensor = Tensor::from_vec(&shape, data);
        if frozen {
            store.add_frozen(name, tensor);
        } else {
            store.add(name, tensor);
        }
    }
    Ok(store)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = ParamStore::new();
        s.add("layer.w", init::randn(&[4, 3], 1.0, &mut rng));
        s.add("layer.b", Tensor::zeros(&[3]));
        s.add_frozen("emb.table", init::randn(&[10, 8], 1.0, &mut rng));
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = save_checkpoint(&store);
        let restored = load_checkpoint(&bytes).unwrap();
        assert_eq!(restored.len(), store.len());
        for (a, b) in store.ids().zip(restored.ids()) {
            assert_eq!(store.name(a), restored.name(b));
            assert_eq!(store.is_frozen(a), restored.is_frozen(b));
            assert_eq!(store.value(a), restored.value(b));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = save_checkpoint(&sample_store()).to_vec();
        bytes[0] = b'X';
        assert_eq!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = save_checkpoint(&sample_store());
        for cut in [0, 5, 13, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                load_checkpoint(&bytes[..cut]).unwrap_err(),
                CheckpointError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = save_checkpoint(&sample_store()).to_vec();
        bytes[4] = 99;
        assert!(matches!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::BadVersion(_)));
    }

    #[test]
    fn wire_format_is_stable() {
        // Golden prefix: magic + version + count. Changing the format must
        // bump VERSION, not silently alter these bytes.
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(&[1], vec![1.0]));
        let bytes = save_checkpoint(&s);
        assert_eq!(&bytes[..4], b"VCNN");
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes());
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
        // name-len(1) + "w" + frozen(0) + ndim(1) + dim(1) + f32(1.0)
        assert_eq!(bytes[12..16], 1u32.to_le_bytes());
        assert_eq!(bytes[16], b'w');
        assert_eq!(bytes[17], 0);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ParamStore::new();
        let restored = load_checkpoint(&save_checkpoint(&store)).unwrap();
        assert!(restored.is_empty());
    }
}
