//! Binary checkpointing of model parameters and full training state.
//!
//! The paper's training process "periodically saves DNN parameters for
//! testing" (Sec VI-D); this module is that mechanism. Two formats share
//! the `VCNN` magic:
//!
//! **v1** — a bare [`ParamStore`] (weights only), kept for evaluation
//! artifacts and backward compatibility:
//!
//! ```text
//! magic "VCNN" | u32 version=1 | u32 param-count |
//!   per param: u32 name-len | name bytes | u8 frozen |
//!              u32 ndim | u32 dims... | f32 data...
//! ```
//!
//! **v2** — a durable [`TrainCheckpoint`] capturing everything a run needs
//! to resume *bit-exactly*: both parameter stores, Adam moment vectors and
//! step counters, per-employee RNG streams, the episode/round counters, an
//! opaque UTF-8 metadata blob (the trainer embeds its JSON config), and a
//! CRC32 footer so torn or corrupted files are detected before any of it
//! is trusted:
//!
//! ```text
//! magic "VCNN" | u32 version=2 | u8 has-curiosity |
//!   policy params (v1 param-count + per-param layout) |
//!   [curiosity params] |
//!   ppo adam: u64 t | u32 n | n×f32 m | n×f32 v |
//!   [curiosity adam] |
//!   u32 rng-count | per stream: 4×u64 |
//!   u64 episodes | u64 rounds |
//!   u32 meta-len | meta bytes |
//!   u32 crc32 (IEEE, over every preceding byte)
//! ```
//!
//! All loaders are total: malformed input of any shape yields a typed
//! [`CheckpointError`], never a panic — length and size arithmetic is
//! checked so hostile headers can't wrap offsets. [`write_checkpoint_file`]
//! writes durably (tmp file, fsync, atomic rename) so a crash mid-write
//! can never truncate an existing checkpoint.

use crate::param::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 4] = b"VCNN";
const VERSION: u32 = 1;
const VERSION_V2: u32 = 2;

/// Errors from checkpoint decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the expected magic bytes.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The buffer ended before the declared content (or declared sizes
    /// overflow — either way the declared content can't exist).
    Truncated,
    /// A string field was not valid UTF-8.
    BadName,
    /// The CRC32 footer does not match the body: bit rot or a torn write.
    BadCrc {
        /// CRC computed over the body actually read.
        computed: u32,
        /// CRC the footer claims.
        stored: u32,
    },
    /// A v2 section is internally inconsistent (e.g. Adam moments that
    /// don't cover the parameter store they accompany).
    Inconsistent(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "checkpoint magic mismatch"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadName => write!(f, "checkpoint contains non-UTF-8 name"),
            CheckpointError::BadCrc { computed, stored } => {
                write!(
                    f,
                    "checkpoint CRC mismatch: computed {computed:#010x}, stored {stored:#010x}"
                )
            }
            CheckpointError::Inconsistent(what) => {
                write!(f, "checkpoint internally inconsistent: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same checksum
/// gzip and PNG use. Bitwise implementation; checkpoint files are small
/// enough that a lookup table isn't worth the code.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ------------------------------------------------------------ v1 sections

fn put_store(buf: &mut BytesMut, store: &ParamStore) {
    buf.put_u32_le(store.len() as u32);
    for id in store.ids() {
        let name = store.name(id).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u8(store.is_frozen(id) as u8);
        let value = store.value(id);
        buf.put_u32_le(value.ndim() as u32);
        for &d in value.shape() {
            buf.put_u32_le(d as u32);
        }
        for &x in value.data() {
            buf.put_f32_le(x);
        }
    }
}

fn get_store(buf: &mut &[u8]) -> Result<ParamStore, CheckpointError> {
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let count = buf.get_u32_le() as usize;
    let mut store = ParamStore::new();
    for _ in 0..count {
        if buf.remaining() < 4 {
            return Err(CheckpointError::Truncated);
        }
        let name_len = buf.get_u32_le() as usize;
        // name + frozen byte + ndim word, with overflow-checked sizing so a
        // hostile name_len can't wrap past the bounds check.
        let need = name_len.checked_add(1 + 4).ok_or(CheckpointError::Truncated)?;
        if buf.remaining() < need {
            return Err(CheckpointError::Truncated);
        }
        let mut name_bytes = vec![0u8; name_len];
        buf.copy_to_slice(&mut name_bytes);
        let name = String::from_utf8(name_bytes).map_err(|_| CheckpointError::BadName)?;
        let frozen = buf.get_u8() != 0;
        let ndim = buf.get_u32_le() as usize;
        let dims_bytes = ndim.checked_mul(4).ok_or(CheckpointError::Truncated)?;
        if buf.remaining() < dims_bytes {
            return Err(CheckpointError::Truncated);
        }
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(buf.get_u32_le() as usize);
        }
        let numel = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(CheckpointError::Truncated)?;
        let data_bytes = numel.checked_mul(4).ok_or(CheckpointError::Truncated)?;
        if buf.remaining() < data_bytes {
            return Err(CheckpointError::Truncated);
        }
        let mut data = Vec::with_capacity(numel);
        for _ in 0..numel {
            data.push(buf.get_f32_le());
        }
        let tensor = Tensor::from_vec(&shape, data);
        if frozen {
            store.add_frozen(name, tensor);
        } else {
            store.add(name, tensor);
        }
    }
    Ok(store)
}

/// Serializes every parameter (values only; gradients are transient).
pub fn save_checkpoint(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + store.num_scalars() * 4);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    put_store(&mut buf, store);
    buf.freeze()
}

/// Reconstructs a [`ParamStore`] from [`save_checkpoint`] output. Parameter
/// ids are assigned in the original registration order, so layers built
/// against the original store remain valid against the restored one.
pub fn load_checkpoint(mut buf: &[u8]) -> Result<ParamStore, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    get_store(&mut buf)
}

// ------------------------------------------------------------ v2 sections

/// Snapshot of one Adam optimizer's state: step counter plus flattened
/// first/second moments (both empty before the optimizer's first step).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdamState {
    /// Update steps taken (`Adam::steps`).
    pub t: u64,
    /// Flattened first-moment estimates in parameter-registration order.
    pub m: Vec<f32>,
    /// Flattened second-moment estimates in parameter-registration order.
    pub v: Vec<f32>,
}

/// Everything a chief–employee training run needs to resume bit-exactly
/// (see the v2 wire layout in the module docs).
#[derive(Clone, Debug, Default)]
pub struct TrainCheckpoint {
    /// Global actor-critic parameters.
    pub policy: ParamStore,
    /// Global curiosity parameters, when a curiosity model is trained.
    pub curiosity: Option<ParamStore>,
    /// Chief-side PPO Adam optimizer state.
    pub ppo_opt: AdamState,
    /// Chief-side curiosity Adam optimizer state (when curiosity is on).
    pub curiosity_opt: Option<AdamState>,
    /// Per-employee RNG stream states, indexed by employee.
    pub rng_states: Vec<[u64; 4]>,
    /// Episodes completed so far.
    pub episodes: u64,
    /// Global gradient gather rounds completed so far.
    pub rounds: u64,
    /// Opaque caller metadata (the trainer stores its JSON config here so
    /// `--resume` can rebuild an identical trainer).
    pub meta: String,
}

fn put_adam(buf: &mut BytesMut, state: &AdamState) {
    buf.put_u64_le(state.t);
    buf.put_u32_le(state.m.len() as u32);
    for &x in &state.m {
        buf.put_f32_le(x);
    }
    for &x in &state.v {
        buf.put_f32_le(x);
    }
}

fn get_adam(buf: &mut &[u8]) -> Result<AdamState, CheckpointError> {
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let t = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    let bytes = n.checked_mul(8).ok_or(CheckpointError::Truncated)?;
    if buf.remaining() < bytes {
        return Err(CheckpointError::Truncated);
    }
    let mut m = Vec::with_capacity(n);
    for _ in 0..n {
        m.push(buf.get_f32_le());
    }
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(buf.get_f32_le());
    }
    Ok(AdamState { t, m, v })
}

/// Serializes a full training checkpoint in the v2 format (with CRC32
/// footer).
pub fn save_checkpoint_v2(ck: &TrainCheckpoint) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + (ck.policy.num_scalars() + ck.ppo_opt.m.len() + ck.ppo_opt.v.len()) * 4
            + ck.rng_states.len() * 32
            + ck.meta.len(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V2);
    buf.put_u8(ck.curiosity.is_some() as u8);
    put_store(&mut buf, &ck.policy);
    if let Some(cur) = &ck.curiosity {
        put_store(&mut buf, cur);
    }
    put_adam(&mut buf, &ck.ppo_opt);
    if ck.curiosity.is_some() {
        let default = AdamState::default();
        put_adam(&mut buf, ck.curiosity_opt.as_ref().unwrap_or(&default));
    }
    buf.put_u32_le(ck.rng_states.len() as u32);
    for s in &ck.rng_states {
        for &w in s {
            buf.put_u64_le(w);
        }
    }
    buf.put_u64_le(ck.episodes);
    buf.put_u64_le(ck.rounds);
    buf.put_u32_le(ck.meta.len() as u32);
    buf.put_slice(ck.meta.as_bytes());
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Reconstructs a [`TrainCheckpoint`] from [`save_checkpoint_v2`] output,
/// verifying the CRC32 footer before trusting any content.
///
/// # Errors
///
/// Every malformed-buffer shape maps to a typed [`CheckpointError`]; this
/// function never panics on hostile input.
pub fn load_checkpoint_v2(full: &[u8]) -> Result<TrainCheckpoint, CheckpointError> {
    if full.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let mut head: &[u8] = full;
    let mut magic = [0u8; 4];
    head.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = head.get_u32_le();
    if version != VERSION_V2 {
        return Err(CheckpointError::BadVersion(version));
    }
    if full.len() < 13 {
        return Err(CheckpointError::Truncated);
    }
    let (body, footer) = full.split_at(full.len() - 4);
    let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let computed = crc32(body);
    if computed != stored {
        return Err(CheckpointError::BadCrc { computed, stored });
    }
    // Parse past magic + version (already validated above).
    let mut buf = &body[8..];
    let has_curiosity = buf.get_u8() != 0;
    let policy = get_store(&mut buf)?;
    let curiosity = if has_curiosity { Some(get_store(&mut buf)?) } else { None };
    let ppo_opt = get_adam(&mut buf)?;
    let curiosity_opt = if has_curiosity { Some(get_adam(&mut buf)?) } else { None };
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let rng_count = buf.get_u32_le() as usize;
    let rng_bytes = rng_count.checked_mul(32).ok_or(CheckpointError::Truncated)?;
    if buf.remaining() < rng_bytes {
        return Err(CheckpointError::Truncated);
    }
    let mut rng_states = Vec::with_capacity(rng_count);
    for _ in 0..rng_count {
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = buf.get_u64_le();
        }
        rng_states.push(s);
    }
    if buf.remaining() < 20 {
        return Err(CheckpointError::Truncated);
    }
    let episodes = buf.get_u64_le();
    let rounds = buf.get_u64_le();
    let meta_len = buf.get_u32_le() as usize;
    if buf.remaining() != meta_len {
        return Err(CheckpointError::Truncated);
    }
    let mut meta_bytes = vec![0u8; meta_len];
    buf.copy_to_slice(&mut meta_bytes);
    let meta = String::from_utf8(meta_bytes).map_err(|_| CheckpointError::BadName)?;
    if !ppo_opt.m.is_empty() && ppo_opt.m.len() != policy.num_scalars() {
        return Err(CheckpointError::Inconsistent("ppo Adam moments don't cover the policy"));
    }
    Ok(TrainCheckpoint {
        policy,
        curiosity,
        ppo_opt,
        curiosity_opt,
        rng_states,
        episodes,
        rounds,
        meta,
    })
}

/// Writes checkpoint bytes durably: the content goes to `<path>.tmp`, is
/// fsynced, then atomically renamed over `path`. A crash at any point
/// leaves either the previous checkpoint or the complete new one — never a
/// truncated hybrid.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the file.
pub fn write_checkpoint_file(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        std::path::PathBuf::from(os)
    };
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(12);
        let mut s = ParamStore::new();
        s.add("layer.w", init::randn(&[4, 3], 1.0, &mut rng));
        s.add("layer.b", Tensor::zeros(&[3]));
        s.add_frozen("emb.table", init::randn(&[10, 8], 1.0, &mut rng));
        s
    }

    fn sample_v2() -> TrainCheckpoint {
        let policy = sample_store();
        let n = policy.num_scalars();
        let mut rng = StdRng::seed_from_u64(5);
        let mut cur = ParamStore::new();
        cur.add("icm.w", init::randn(&[2, 2], 0.5, &mut rng));
        TrainCheckpoint {
            ppo_opt: AdamState {
                t: 7,
                m: (0..n).map(|i| i as f32 * 0.01).collect(),
                v: (0..n).map(|i| i as f32 * 0.02).collect(),
            },
            curiosity_opt: Some(AdamState { t: 7, m: vec![0.1; 4], v: vec![0.2; 4] }),
            curiosity: Some(cur),
            policy,
            rng_states: vec![[1, 2, 3, 4], [5, 6, 7, 8]],
            episodes: 42,
            rounds: 168,
            meta: "{\"seed\":7}".to_owned(),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = save_checkpoint(&store);
        let restored = load_checkpoint(&bytes).unwrap();
        assert_eq!(restored.len(), store.len());
        for (a, b) in store.ids().zip(restored.ids()) {
            assert_eq!(store.name(a), restored.name(b));
            assert_eq!(store.is_frozen(a), restored.is_frozen(b));
            assert_eq!(store.value(a), restored.value(b));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = save_checkpoint(&sample_store()).to_vec();
        bytes[0] = b'X';
        assert_eq!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let bytes = save_checkpoint(&sample_store());
        for cut in [0, 5, 13, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(
                load_checkpoint(&bytes[..cut]).unwrap_err(),
                CheckpointError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = save_checkpoint(&sample_store()).to_vec();
        bytes[4] = 99;
        assert!(matches!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::BadVersion(_)));
    }

    #[test]
    fn v1_loader_rejects_v2_and_vice_versa() {
        let v2 = save_checkpoint_v2(&sample_v2());
        assert_eq!(load_checkpoint(&v2).unwrap_err(), CheckpointError::BadVersion(2));
        let v1 = save_checkpoint(&sample_store());
        assert_eq!(load_checkpoint_v2(&v1).unwrap_err(), CheckpointError::BadVersion(1));
    }

    #[test]
    fn wire_format_is_stable() {
        // Golden prefix: magic + version + count. Changing the format must
        // bump VERSION, not silently alter these bytes.
        let mut s = ParamStore::new();
        s.add("w", Tensor::from_vec(&[1], vec![1.0]));
        let bytes = save_checkpoint(&s);
        assert_eq!(&bytes[..4], b"VCNN");
        assert_eq!(&bytes[4..8], &1u32.to_le_bytes());
        assert_eq!(&bytes[8..12], &1u32.to_le_bytes());
        // name-len(1) + "w" + frozen(0) + ndim(1) + dim(1) + f32(1.0)
        assert_eq!(bytes[12..16], 1u32.to_le_bytes());
        assert_eq!(bytes[16], b'w');
        assert_eq!(bytes[17], 0);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ParamStore::new();
        let restored = load_checkpoint(&save_checkpoint(&store)).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn hostile_headers_with_huge_sizes_are_truncated_not_panics() {
        // A v1 header declaring one param whose name_len is u32::MAX: the
        // unchecked `name_len + 5` would wrap to 4 and pass the bounds
        // check in release builds. Must be a typed error instead.
        let mut bytes: Vec<u8> = Vec::new();
        bytes.put_slice(b"VCNN");
        bytes.put_u32_le(1); // version
        bytes.put_u32_le(1); // one param
        bytes.put_u32_le(u32::MAX); // hostile name_len
        assert_eq!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::Truncated);

        // Hostile shape whose element product overflows usize.
        let mut bytes: Vec<u8> = Vec::new();
        bytes.put_slice(b"VCNN");
        bytes.put_u32_le(1);
        bytes.put_u32_le(1); // one param
        bytes.put_u32_le(1); // name_len
        bytes.put_u8(b'w');
        bytes.put_u8(0); // not frozen
        bytes.put_u32_le(4); // ndim = 4
        for _ in 0..4 {
            bytes.put_u32_le(u32::MAX); // dims whose product wraps
        }
        assert_eq!(load_checkpoint(&bytes).unwrap_err(), CheckpointError::Truncated);
    }

    #[test]
    fn v2_roundtrip_preserves_everything() {
        let ck = sample_v2();
        let bytes = save_checkpoint_v2(&ck);
        let back = load_checkpoint_v2(&bytes).unwrap();
        assert_eq!(back.policy.flat_values(), ck.policy.flat_values());
        assert_eq!(
            back.curiosity.as_ref().unwrap().flat_values(),
            ck.curiosity.as_ref().unwrap().flat_values()
        );
        assert_eq!(back.ppo_opt, ck.ppo_opt);
        assert_eq!(back.curiosity_opt, ck.curiosity_opt);
        assert_eq!(back.rng_states, ck.rng_states);
        assert_eq!((back.episodes, back.rounds), (42, 168));
        assert_eq!(back.meta, ck.meta);
    }

    #[test]
    fn v2_without_curiosity_roundtrips() {
        let ck = TrainCheckpoint {
            policy: sample_store(),
            meta: String::new(),
            ..TrainCheckpoint::default()
        };
        let back = load_checkpoint_v2(&save_checkpoint_v2(&ck)).unwrap();
        assert!(back.curiosity.is_none() && back.curiosity_opt.is_none());
        assert_eq!(back.policy.flat_values(), ck.policy.flat_values());
        assert_eq!(back.ppo_opt, AdamState::default());
    }

    #[test]
    fn v2_flipped_bit_anywhere_is_detected() {
        // The CRC footer must catch a single flipped bit at any offset
        // (flips inside the footer itself surface as BadCrc too; flips in
        // the magic/version words surface as those typed errors).
        let bytes = save_checkpoint_v2(&sample_v2()).to_vec();
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..200 {
            let mut corrupted = bytes.clone();
            let byte = rng.gen_range(0..corrupted.len());
            let bit = rng.gen_range(0..8usize);
            corrupted[byte] ^= 1 << bit;
            assert!(
                load_checkpoint_v2(&corrupted).is_err(),
                "flip at byte {byte} bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn v2_every_truncation_is_a_typed_error() {
        let bytes = save_checkpoint_v2(&sample_v2()).to_vec();
        for cut in 0..bytes.len() {
            match load_checkpoint_v2(&bytes[..cut]) {
                Err(_) => {}
                Ok(_) => panic!("truncation to {cut} bytes parsed successfully"),
            }
        }
    }

    #[test]
    fn fuzz_random_mutations_never_panic() {
        // Seeded chaos: random multi-byte mutations, random truncations,
        // and random garbage must always produce Ok or a typed error —
        // any panic fails the test harness.
        let v1 = save_checkpoint(&sample_store()).to_vec();
        let v2 = save_checkpoint_v2(&sample_v2()).to_vec();
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..500 {
            let base = if round % 2 == 0 { &v1 } else { &v2 };
            let mut buf = base.clone();
            for _ in 0..rng.gen_range(1..8usize) {
                let i = rng.gen_range(0..buf.len());
                buf[i] = (rng.gen::<u32>() & 0xFF) as u8;
            }
            if rng.gen_bool(0.5) {
                buf.truncate(rng.gen_range(0..buf.len() + 1));
            }
            let _ = load_checkpoint(&buf);
            let _ = load_checkpoint_v2(&buf);
        }
        // Pure garbage of assorted lengths.
        for len in [0usize, 1, 3, 7, 8, 12, 13, 64, 1024] {
            let garbage: Vec<u8> = (0..len).map(|_| (rng.gen::<u32>() & 0xFF) as u8).collect();
            let _ = load_checkpoint(&garbage);
            let _ = load_checkpoint_v2(&garbage);
        }
    }

    #[test]
    fn v2_inconsistent_adam_coverage_rejected() {
        let mut ck = sample_v2();
        ck.ppo_opt.m = vec![0.0; 3]; // doesn't cover the policy
        ck.ppo_opt.v = vec![0.0; 3];
        let bytes = save_checkpoint_v2(&ck);
        assert!(matches!(
            load_checkpoint_v2(&bytes).unwrap_err(),
            CheckpointError::Inconsistent(_)
        ));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("vcnn-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.bin");
        write_checkpoint_file(&path, b"old").unwrap();
        let bytes = save_checkpoint_v2(&sample_v2());
        write_checkpoint_file(&path, &bytes).unwrap();
        let read = std::fs::read(&path).unwrap();
        assert_eq!(read, bytes.as_ref());
        assert!(!dir.join("ck.bin.tmp").exists(), "tmp file left behind");
        load_checkpoint_v2(&read).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
