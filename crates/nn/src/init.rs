//! Weight initializers.
//!
//! All initializers take an explicit RNG so that every network in the
//! workspace is reproducible from a seed.

use crate::tensor::Tensor;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Standard normal sample via Box-Muller (avoids a rand_distr dependency).
fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor with i.i.d. N(0, std^2) entries.
pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| sample_standard_normal(rng) * std).collect();
    Tensor::from_vec(shape, data)
}

/// Tensor with i.i.d. U(lo, hi) entries.
pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo <= hi, "uniform bounds inverted: {lo} > {hi}");
    let dist = Uniform::new_inclusive(lo, hi);
    let numel: usize = shape.iter().product();
    let data = (0..numel).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(shape, data)
}

/// Kaiming/He-normal initialization for layers followed by ReLU:
/// std = sqrt(2 / fan_in).
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    randn(shape, (2.0 / fan_in as f32).sqrt(), rng)
}

/// Xavier/Glorot-uniform initialization:
/// U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -a, a, rng)
}

/// Orthogonal-ish initialization used for policy output heads: small-scale
/// normal, which keeps initial action distributions near uniform.
pub fn policy_head(shape: &[usize], rng: &mut impl Rng) -> Tensor {
    randn(shape, 0.01, rng)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = uniform(&[1000], -0.5, 0.25, &mut rng);
        assert!(t.min() >= -0.5);
        assert!(t.max() <= 0.25);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = randn(&[32], 1.0, &mut StdRng::seed_from_u64(42));
        let b = randn(&[32], 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = kaiming_normal(&[4096], 2048, &mut rng);
        let narrow = kaiming_normal(&[4096], 8, &mut rng);
        assert!(wide.l2_norm() < narrow.l2_norm());
    }

    #[test]
    fn xavier_bound_is_finite_and_tight() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = xavier_uniform(&[512], 16, 16, &mut rng);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }
}
