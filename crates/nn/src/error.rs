//! Typed errors for tensor and graph invariants.
//!
//! [`NnError`] is what the [`crate::check`] invariant checker reports when a
//! tensor crossing a graph boundary is malformed, and what shape-dependent
//! configuration (e.g. a convolution that does not fit its input) surfaces
//! instead of an anonymous panic message.

use std::fmt;

/// Invariant violations detected on tensors and graph configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NnError {
    /// A tensor holds NaN or ±Inf where only finite values are allowed.
    NonFinite {
        /// Where the tensor was observed (e.g. `"graph leaf"`).
        context: &'static str,
        /// Flat index of the first offending element.
        index: usize,
    },
    /// A tensor's element count disagrees with its shape.
    ShapeDataMismatch {
        /// Where the tensor was observed.
        context: &'static str,
        /// The claimed shape.
        shape: Vec<usize>,
        /// The actual number of stored elements.
        data_len: usize,
    },
    /// A convolution kernel does not fit its (padded) input extent.
    KernelTooLarge {
        /// Input spatial extent.
        input: usize,
        /// Kernel extent.
        kernel: usize,
        /// Padding per side.
        padding: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::NonFinite { context, index } => {
                write!(f, "non-finite value (NaN/Inf) at flat index {index} in {context}")
            }
            NnError::ShapeDataMismatch { context, shape, data_len } => {
                write!(f, "shape {shape:?} disagrees with {data_len} stored elements in {context}")
            }
            NnError::KernelTooLarge { input, kernel, padding } => {
                write!(f, "conv kernel {kernel} larger than input {input} with padding {padding}")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_violation() {
        let e = NnError::NonFinite { context: "graph leaf", index: 3 };
        assert!(e.to_string().contains("graph leaf"));
        let e = NnError::KernelTooLarge { input: 2, kernel: 5, padding: 0 };
        assert!(e.to_string().contains("kernel 5"));
        let boxed: Box<dyn std::error::Error> =
            Box::new(NnError::ShapeDataMismatch { context: "x", shape: vec![2, 2], data_len: 3 });
        assert!(boxed.to_string().contains("[2, 2]"));
    }
}
