//! Trainable-parameter storage.
//!
//! A [`ParamStore`] owns every trainable tensor of a model together with a
//! same-shaped gradient accumulator. Layers hold [`ParamId`]s into the store;
//! the autograd graph accumulates into the gradient slots during
//! [`crate::graph::Graph::backward`]; optimizers consume them.
//!
//! Keeping parameters out of the graph lets one store be shared across the
//! many short-lived graphs a PPO epoch builds, and makes the chief–employee
//! gradient exchange a plain flat-buffer copy.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to one parameter inside a [`ParamStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of the parameter within its store.
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct Param {
    name: String,
    value: Tensor,
    grad: Tensor,
    /// Frozen parameters receive no gradient and are skipped by optimizers
    /// (used for the static embedding of the spatial curiosity model).
    frozen: bool,
}

/// Owns parameter values and their gradient accumulators.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trainable parameter, returning its handle.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.push(name.into(), value, false)
    }

    /// Registers a frozen (non-trainable) parameter.
    pub fn add_frozen(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.push(name.into(), value, true)
    }

    fn push(&mut self, name: String, value: Tensor, frozen: bool) -> ParamId {
        let grad = Tensor::zeros(value.shape());
        self.params.push(Param { name, value, grad, frozen });
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters (tensor count, not scalar count).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// The value tensor of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].value
    }

    /// Mutable access to the value tensor of a parameter.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0].value
    }

    /// The gradient accumulator of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.params[id.0].grad
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// Whether the parameter is frozen.
    pub fn is_frozen(&self, id: ParamId) -> bool {
        self.params[id.0].frozen
    }

    /// Accumulates `delta` into the gradient slot of `id` (no-op if frozen).
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        let p = &mut self.params[id.0];
        if !p.frozen {
            p.grad.add_assign(delta);
        }
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.fill_zero();
        }
    }

    /// Iterator over all parameter handles.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Applies `f(value, grad)` to every trainable parameter.
    pub fn for_each_trainable(&mut self, mut f: impl FnMut(&mut Tensor, &Tensor)) {
        for p in &mut self.params {
            if !p.frozen {
                f(&mut p.value, &p.grad);
            }
        }
    }

    /// Flattens every gradient (trainable and frozen alike, frozen grads are
    /// zero) into one contiguous buffer — the wire format of the
    /// chief–employee gradient buffers.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in &self.params {
            out.extend_from_slice(p.grad.data());
        }
        out
    }

    /// Adds a flat gradient buffer (as produced by [`Self::flat_grads`] on a
    /// store with identical layout) into this store's gradient slots.
    pub fn add_flat_grads(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_scalars(), "flat gradient length mismatch");
        let mut offset = 0;
        for p in &mut self.params {
            let n = p.grad.numel();
            for (g, &d) in p.grad.data_mut().iter_mut().zip(&flat[offset..offset + n]) {
                *g += d;
            }
            offset += n;
        }
    }

    /// Flattens every parameter value into one contiguous buffer — the wire
    /// format for broadcasting fresh chief parameters to employees.
    pub fn flat_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in &self.params {
            out.extend_from_slice(p.value.data());
        }
        out
    }

    /// Overwrites every parameter value from a flat buffer with identical
    /// layout (the inverse of [`Self::flat_values`]).
    pub fn load_flat_values(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.num_scalars(), "flat value length mismatch");
        let mut offset = 0;
        for p in &mut self.params {
            let n = p.value.numel();
            p.value.data_mut().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }

    /// Copies parameter values from another store with identical layout.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(self.len(), other.len(), "store layout mismatch");
        for (dst, src) in self.params.iter_mut().zip(&other.params) {
            assert_eq!(dst.value.shape(), src.value.shape(), "param shape mismatch");
            dst.value = src.value.clone();
        }
    }

    /// Global L2 norm across all trainable gradients.
    pub fn grad_global_norm(&self) -> f32 {
        self.params
            .iter()
            .filter(|p| !p.frozen)
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every trainable gradient so the global norm is at most
    /// `max_norm`. Returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &mut self.params {
                if !p.frozen {
                    p.grad.scale_inplace(scale);
                }
            }
        }
        norm
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn store_with_two() -> (ParamStore, ParamId, ParamId) {
        let mut s = ParamStore::new();
        let a = s.add("a", Tensor::from_vec(&[2], vec![1.0, 2.0]));
        let b = s.add("b", Tensor::from_vec(&[3], vec![3.0, 4.0, 5.0]));
        (s, a, b)
    }

    #[test]
    fn add_and_lookup() {
        let (s, a, b) = store_with_two();
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 5);
        assert_eq!(s.value(a).data(), &[1.0, 2.0]);
        assert_eq!(s.name(b), "b");
        assert!(!s.is_frozen(a));
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let (mut s, a, _) = store_with_two();
        s.accumulate_grad(a, &Tensor::from_vec(&[2], vec![0.5, 0.5]));
        s.accumulate_grad(a, &Tensor::from_vec(&[2], vec![0.5, 0.5]));
        assert_eq!(s.grad(a).data(), &[1.0, 1.0]);
        s.zero_grads();
        assert_eq!(s.grad(a).data(), &[0.0, 0.0]);
    }

    #[test]
    fn frozen_params_reject_grads() {
        let mut s = ParamStore::new();
        let f = s.add_frozen("emb", Tensor::ones(&[4]));
        s.accumulate_grad(f, &Tensor::ones(&[4]));
        assert_eq!(s.grad(f).data(), &[0.0; 4]);
    }

    #[test]
    fn flat_grads_roundtrip() {
        let (mut s, a, b) = store_with_two();
        s.accumulate_grad(a, &Tensor::from_vec(&[2], vec![1.0, 2.0]));
        s.accumulate_grad(b, &Tensor::from_vec(&[3], vec![3.0, 4.0, 5.0]));
        let flat = s.flat_grads();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0]);

        let (mut s2, _, _) = store_with_two();
        s2.add_flat_grads(&flat);
        s2.add_flat_grads(&flat);
        assert_eq!(s2.flat_grads(), vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn flat_values_roundtrip() {
        let (s, _, _) = store_with_two();
        let (mut s2, _, _) = store_with_two();
        s2.value_mut(ParamId(0)).fill_zero();
        s2.load_flat_values(&s.flat_values());
        assert_eq!(s2.flat_values(), s.flat_values());
    }

    #[test]
    fn clip_grad_norm_scales_down_only() {
        let (mut s, a, _) = store_with_two();
        s.accumulate_grad(a, &Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad_global_norm() - 1.0).abs() < 1e-6);
        // A second clip with a larger bound leaves gradients untouched.
        let pre2 = s.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert!((s.grad_global_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_flat_grads_wrong_len_panics() {
        let (mut s, _, _) = store_with_two();
        s.add_flat_grads(&[1.0, 2.0]);
    }
}
