//! # vc-nn — from-scratch tensors, autograd and layers for DRL-CEWS
//!
//! The DRL-CEWS reproduction needs a small but complete deep-learning stack:
//! the paper trains a CNN state encoder, PPO policy/value heads, and a
//! curiosity forward model with Adam — none of which can come from an
//! external ML framework in this workspace. This crate provides that stack:
//!
//! * [`tensor::Tensor`] — dense row-major `f32` storage;
//! * [`graph::Graph`] — a tape-based reverse-mode autograd with the op
//!   vocabulary PPO and curiosity losses need (matmul, conv2d, layer norm,
//!   softmax/log-softmax, clip/min for the PPO surrogate, …);
//! * [`param::ParamStore`] — parameter + gradient storage with the flat
//!   buffer views used by the chief–employee gradient exchange;
//! * [`layers`] — Linear, Conv2d, LayerNorm, Embedding, Mlp;
//! * [`optim`] — SGD and Adam;
//! * [`serialize`] — binary checkpoints.
//!
//! ## Quick example
//!
//! ```
//! use vc_nn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut store = ParamStore::new();
//! let net = Mlp::new(&mut store, "net", &[2, 16, 1], Activation::Tanh, &mut rng);
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..10 {
//!     store.zero_grads();
//!     let mut g = Graph::new();
//!     let x = g.leaf(Tensor::from_vec(&[4, 2], vec![0.; 8]));
//!     let y = net.forward(&mut g, &store, x);
//!     let sq = g.square(y);
//!     let loss = g.mean_all(sq);
//!     g.backward(loss, &mut store);
//!     opt.step(&mut store);
//! }
//! ```

/// Thread-local buffer freelists backing tensor and kernel allocations.
pub mod arena;
/// Debug-build invariant checks over tensors and gradients.
pub mod check;
/// The [`NnError`](error::NnError) type.
pub mod error;
/// The autograd tape.
pub mod graph;
/// Weight-initialization schemes.
pub mod init;
/// Composite layers (MLP, CNN encoder, embeddings).
pub mod layers;
/// The operation set recorded on the tape.
pub mod op;
/// Forward/backward kernels for the heavier operations.
pub mod ops;
/// Optimizers and learning-rate schedules.
pub mod optim;
/// Named parameter storage with gradient accumulation.
pub mod param;
/// Checkpoint save/load.
pub mod serialize;
/// Sync primitive facade: std normally, `loom` models under `--cfg loom`.
pub mod sync;
/// The dense row-major tensor.
pub mod tensor;

/// Convenience re-exports of the types nearly every consumer needs.
pub mod prelude {
    pub use crate::arena::{arena_stats, reset_arena_stats, ArenaStats};
    pub use crate::error::NnError;
    pub use crate::graph::{Graph, NodeId};
    pub use crate::layers::{Activation, Conv2dLayer, Embedding, LayerNormLayer, Linear, Mlp};
    pub use crate::ops::conv::ConvCfg;
    pub use crate::ops::gemm::{
        kernel_counters, kernel_telemetry_enabled, kernel_threads, reset_kernel_counters,
        set_kernel_telemetry, set_kernel_threads, KernelCounters,
    };
    pub use crate::ops::pool::{pool_stats, PoolStats};
    pub use crate::optim::{Adam, LrSchedule, Optimizer, Sgd};
    pub use crate::param::{ParamId, ParamStore};
    pub use crate::serialize::{
        load_checkpoint, load_checkpoint_v2, save_checkpoint, save_checkpoint_v2,
        write_checkpoint_file, AdamState, CheckpointError, TrainCheckpoint,
    };
    pub use crate::tensor::Tensor;
}
