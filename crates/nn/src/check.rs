//! Graph-boundary invariant checking.
//!
//! Numerical bugs (exploding losses, shape confusions behind flat buffers)
//! are far cheaper to catch where data *enters or leaves* the autograd tape
//! than three layers downstream. This module validates tensors at those
//! boundaries:
//!
//! * [`validate_tensor`] — the always-available fallible check, returning a
//!   typed [`NnError`];
//! * [`assert_valid`] — the gated form the graph calls on every leaf/param
//!   node and on every parameter gradient produced by backward. It compiles
//!   to a no-op unless debug assertions or the `strict-checks` feature are
//!   on, so release training loops pay nothing.
//!
//! Enable `strict-checks` in release builds to keep the boundary guards
//! while profiling optimized code.

use crate::error::NnError;
use crate::tensor::Tensor;

/// Whether boundary checks are compiled in (debug build or the
/// `strict-checks` feature).
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "strict-checks"));

/// Validates one tensor: its shape must describe exactly the stored element
/// count and every element must be finite.
///
/// # Errors
///
/// [`NnError::ShapeDataMismatch`] or [`NnError::NonFinite`] describing the
/// first violation found.
pub fn validate_tensor(t: &Tensor, context: &'static str) -> Result<(), NnError> {
    if t.numel() != t.data().len() {
        return Err(NnError::ShapeDataMismatch {
            context,
            shape: t.shape().to_vec(),
            data_len: t.data().len(),
        });
    }
    if let Some(index) = t.data().iter().position(|v| !v.is_finite()) {
        return Err(NnError::NonFinite { context, index });
    }
    Ok(())
}

/// Gated boundary assertion: panics with the [`NnError`] description when
/// [`ENABLED`] and the tensor is invalid, does nothing otherwise.
///
/// # Panics
///
/// In debug / `strict-checks` builds, when `t` fails [`validate_tensor`].
#[inline]
pub fn assert_valid(t: &Tensor, context: &'static str) {
    if ENABLED {
        if let Err(e) = validate_tensor(t, context) {
            panic!("invariant violation: {e}");
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn finite_tensor_passes() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, -2.0, 0.0, 3.5]);
        assert!(validate_tensor(&t, "test").is_ok());
    }

    #[test]
    fn nan_is_rejected_with_its_index() {
        let t = Tensor::from_vec(&[3], vec![0.0, f32::NAN, 1.0]);
        let err = validate_tensor(&t, "test").unwrap_err();
        assert_eq!(err, NnError::NonFinite { context: "test", index: 1 });
    }

    #[test]
    fn infinity_is_rejected() {
        let t = Tensor::from_vec(&[2], vec![f32::INFINITY, 0.0]);
        assert!(matches!(validate_tensor(&t, "test"), Err(NnError::NonFinite { index: 0, .. })));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn assert_valid_panics_in_debug() {
        let t = Tensor::from_vec(&[1], vec![f32::NEG_INFINITY]);
        let res = std::panic::catch_unwind(|| assert_valid(&t, "boundary"));
        assert!(res.is_err());
    }
}
