//! Synchronization facade: std primitives normally, `loom` models under
//! `--cfg loom`.
//!
//! Concurrent modules ([`crate::ops::pool`], [`crate::arena`]) import their
//! primitives from here instead of `std::sync` directly. In ordinary builds
//! every name is a plain re-export of the std type — zero wrappers, zero
//! hot-path overhead. Under `RUSTFLAGS="--cfg loom"` the same names resolve
//! to the `loom` shim's model-aware types, so the loom test suites
//! (`tests/loom_*.rs`) can exhaustively explore the interleavings of the
//! real production code paths. See `DESIGN.md` §13 for the memory-model
//! contracts this facade lets us check.

#[cfg(not(loom))]
pub use std::sync::atomic;
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
#[cfg(not(loom))]
pub use std::{hint, thread};

#[cfg(loom)]
pub use loom::sync::atomic;
#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard, OnceLock};
#[cfg(loom)]
pub use loom::{hint, thread};

// Poison handling is std's in both modes (the loom shim reuses std's
// `LockResult`/`PoisonError`, always returning `Ok`).
pub use std::sync::{LockResult, PoisonError};
