//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a short-lived tape: the caller builds a forward computation
//! by calling op methods, each of which appends a node (insertion order is a
//! topological order, since ops can only reference already-built nodes), then
//! calls [`Graph::backward`] on a scalar loss node. Gradients flow backwards
//! and are accumulated into the [`ParamStore`] slots of parameter leaves.
//!
//! Parameters enter a graph via [`Graph::param`], which copies the current
//! value out of the store; a graph therefore never borrows the store, and one
//! store can feed many sequential graphs (the PPO epoch pattern).
//!
//! Tapes recycle themselves: dropping a `Graph` parks its node storage (and
//! any op-held index/context buffers) in thread-local freelists that the
//! next `Graph::new` on the same thread reuses, and `backward` recycles its
//! gradient-slot vector the same way. Together with the arena-backed
//! [`Tensor`] this makes steady-state training steps allocation-free inside
//! the graph (see `crates/nn/tests/arena_alloc.rs`).

use crate::arena;
use crate::op::Op;
use crate::ops::conv::{conv2d_backward, conv2d_forward, ConvCfg};
use crate::ops::norm::{layer_norm_backward, layer_norm_forward};
use crate::ops::softmax::{log_softmax_backward, log_softmax_rows, softmax_backward, softmax_rows};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Handle to one node of a [`Graph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeId(usize);

/// Inline parent list. Every op has at most 3 parents (`Conv2d`,
/// `LayerNorm`), so parents live inside the node instead of one heap `Vec`
/// per node.
#[derive(Clone, Copy)]
struct Parents {
    ids: [NodeId; 3],
    len: u8,
}

impl Parents {
    fn new(ps: &[NodeId]) -> Self {
        assert!(ps.len() <= 3, "ops have at most 3 parents");
        let mut ids = [NodeId(usize::MAX); 3];
        ids[..ps.len()].copy_from_slice(ps);
        Self { ids, len: ps.len() as u8 }
    }
}

impl std::ops::Index<usize> for Parents {
    type Output = NodeId;
    fn index(&self, i: usize) -> &NodeId {
        assert!(i < usize::from(self.len), "parent index out of range");
        &self.ids[i]
    }
}

struct Node {
    value: Tensor,
    parents: Parents,
    op: Op,
    /// True if this node is, or depends on, a non-frozen parameter leaf.
    needs_grad: bool,
    param: Option<ParamId>,
}

thread_local! {
    /// Retired node vectors, reused by the next `Graph::new` on this thread.
    static NODE_STORAGE: RefCell<Vec<Vec<Node>>> = const { RefCell::new(Vec::new()) };
    /// Retired gradient-slot vectors from `backward` / `grad_of`.
    static GRAD_STORAGE: RefCell<Vec<Vec<Option<Tensor>>>> = const { RefCell::new(Vec::new()) };
}

/// How many retired vectors each thread-local store parks.
const MAX_RETIRED: usize = 8;

fn take_grad_buffer(len: usize) -> Vec<Option<Tensor>> {
    let mut v = GRAD_STORAGE.try_with(|s| s.borrow_mut().pop()).ok().flatten().unwrap_or_default();
    v.clear();
    v.resize_with(len, || None);
    v
}

fn release_grad_buffer(mut v: Vec<Option<Tensor>>) {
    v.clear(); // remaining gradient tensors recycle through the arena
    let _ = GRAD_STORAGE.try_with(|s| {
        let mut s = s.borrow_mut();
        if s.len() < MAX_RETIRED {
            s.push(v);
        }
    });
}

/// A forward tape plus the machinery to run reverse-mode backprop over it.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Drop for Graph {
    fn drop(&mut self) {
        let mut nodes = std::mem::take(&mut self.nodes);
        for node in nodes.drain(..) {
            // Op-held buffers go back to the arena; node value tensors
            // recycle themselves on drop.
            match node.op {
                Op::PickColumn { indices } | Op::GatherRows { indices } => {
                    arena::put_usize(indices);
                }
                Op::LayerNorm { ctx } => {
                    arena::put_f32(ctx.mean);
                    arena::put_f32(ctx.rstd);
                }
                _ => {}
            }
        }
        let _ = NODE_STORAGE.try_with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < MAX_RETIRED {
                s.push(nodes);
            }
        });
    }
}

impl Graph {
    /// An empty tape (reusing a retired tape's storage when one is parked).
    pub fn new() -> Self {
        let nodes = NODE_STORAGE
            .try_with(|s| s.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_else(|| Vec::with_capacity(64));
        Self { nodes }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The forward value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// The shape of a node's value.
    pub fn shape(&self, id: NodeId) -> &[usize] {
        self.nodes[id.0].value.shape()
    }

    fn push(
        &mut self,
        value: Tensor,
        parents: &[NodeId],
        op: Op,
        param: Option<ParamId>,
        needs_grad: bool,
    ) -> NodeId {
        self.nodes.push(Node { value, parents: Parents::new(parents), op, needs_grad, param });
        NodeId(self.nodes.len() - 1)
    }

    fn any_needs_grad(&self, parents: &[NodeId]) -> bool {
        parents.iter().any(|p| self.nodes[p.0].needs_grad)
    }

    // ---- graph inputs -----------------------------------------------------

    /// A constant input: no gradient flows into it.
    ///
    /// In debug / `strict-checks` builds the value is boundary-checked
    /// (shape consistency, no NaN/Inf) — see [`crate::check`].
    pub fn leaf(&mut self, value: Tensor) -> NodeId {
        crate::check::assert_valid(&value, "graph leaf");
        self.push(value, &[], Op::Leaf, None, false)
    }

    /// A parameter input: copies the current value from the store; backward
    /// accumulates into the store's gradient slot (unless frozen).
    ///
    /// In debug / `strict-checks` builds the parameter value is
    /// boundary-checked (shape consistency, no NaN/Inf).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let needs = !store.is_frozen(id);
        let value = store.value(id).clone();
        crate::check::assert_valid(&value, "graph param");
        self.push(value, &[], Op::Leaf, Some(id), needs)
    }

    // ---- elementwise ops --------------------------------------------------

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x + y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::Add, None, ng)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x - y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::Sub, None, ng)
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), |x, y| x * y);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::Mul, None, ng)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| -x);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Neg, None, ng)
    }

    /// `x[rows, cols] + b[cols]` with `b` broadcast over rows (bias add).
    pub fn add_row_broadcast(&mut self, x: NodeId, b: NodeId) -> NodeId {
        let xv = self.value(x);
        let bv = self.value(b);
        assert_eq!(xv.ndim(), 2, "add_row_broadcast lhs must be rank 2");
        assert_eq!(bv.shape(), &[xv.shape()[1]], "bias width mismatch");
        let cols = xv.shape()[1];
        let mut out = xv.clone();
        for (i, o) in out.data_mut().iter_mut().enumerate() {
            *o += bv.data()[i % cols];
        }
        let ng = self.any_needs_grad(&[x, b]);
        self.push(out, &[x, b], Op::AddRowBroadcast, None, ng)
    }

    /// `c * a` for a known scalar.
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| c * x);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Scale(c), None, ng)
    }

    /// `a + c` for a known scalar.
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::AddScalar(c), None, ng)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x.max(0.0));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Relu, None, ng)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Tanh, None, ng)
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Sigmoid, None, ng)
    }

    /// Elementwise exp.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::exp);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Exp, None, ng)
    }

    /// Elementwise ln(max(x, eps)).
    pub fn ln(&mut self, a: NodeId, eps: f32) -> NodeId {
        let v = self.value(a).map(|x| x.max(eps).ln());
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Ln { eps }, None, ng)
    }

    /// Elementwise square.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x * x);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Square, None, ng)
    }

    /// Elementwise clamp to `[lo, hi]`.
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        assert!(lo <= hi, "clamp bounds inverted");
        let v = self.value(a).map(|x| x.clamp(lo, hi));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Clamp { lo, hi }, None, ng)
    }

    /// Elementwise min(a, b).
    pub fn min_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), f32::min);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::MinElem, None, ng)
    }

    /// Elementwise max(a, b).
    pub fn max_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip(self.value(b), f32::max);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::MaxElem, None, ng)
    }

    // ---- linear algebra ---------------------------------------------------

    /// Rank-2 matrix multiply.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::MatMul, None, ng)
    }

    // ---- reductions -------------------------------------------------------

    /// Sum over all elements → `[1]`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(a).sum());
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::SumAll, None, ng)
    }

    /// Mean over all elements → `[1]`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.value(a).mean());
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::MeanAll, None, ng)
    }

    /// Per-row mean of `[rows, cols]` → `[rows, 1]`.
    #[allow(clippy::needless_range_loop)]
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        assert_eq!(av.ndim(), 2, "mean_rows requires rank 2");
        let (rows, cols) = (av.shape()[0], av.shape()[1]);
        let mut out = arena::take_f32_zeroed(rows);
        for r in 0..rows {
            out[r] = av.data()[r * cols..(r + 1) * cols].iter().sum::<f32>() / cols as f32;
        }
        let v = Tensor::from_vec(&[rows, 1], out);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::MeanRows, None, ng)
    }

    // ---- shape ops ----------------------------------------------------------

    /// Reinterprets a node's value under a new shape.
    pub fn reshape(&mut self, a: NodeId, shape: &[usize]) -> NodeId {
        let v = self.value(a).reshape(shape);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Reshape, None, ng)
    }

    /// Concatenates two rank-2 tensors along the column axis.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let av = self.value(a);
        let bv = self.value(b);
        assert_eq!(av.ndim(), 2, "concat_cols lhs must be rank 2");
        assert_eq!(bv.ndim(), 2, "concat_cols rhs must be rank 2");
        assert_eq!(av.shape()[0], bv.shape()[0], "concat_cols row mismatch");
        let (rows, ca, cb) = (av.shape()[0], av.shape()[1], bv.shape()[1]);
        let mut out = arena::take_f32_zeroed(rows * (ca + cb));
        for r in 0..rows {
            out[r * (ca + cb)..r * (ca + cb) + ca]
                .copy_from_slice(&av.data()[r * ca..(r + 1) * ca]);
            out[r * (ca + cb) + ca..(r + 1) * (ca + cb)]
                .copy_from_slice(&bv.data()[r * cb..(r + 1) * cb]);
        }
        let v = Tensor::from_vec(&[rows, ca + cb], out);
        let ng = self.any_needs_grad(&[a, b]);
        self.push(v, &[a, b], Op::ConcatCols { left_cols: ca }, None, ng)
    }

    // ---- distribution ops ---------------------------------------------------

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let v = softmax_rows(self.value(a));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::Softmax, None, ng)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: NodeId) -> NodeId {
        let v = log_softmax_rows(self.value(a));
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::LogSoftmax, None, ng)
    }

    /// Picks `x[r, indices[r]]` per row → `[rows, 1]`.
    pub fn pick_column(&mut self, a: NodeId, indices: Vec<usize>) -> NodeId {
        let av = self.value(a);
        assert_eq!(av.ndim(), 2, "pick_column requires rank 2");
        let (rows, cols) = (av.shape()[0], av.shape()[1]);
        assert_eq!(indices.len(), rows, "one index per row required");
        let mut out = arena::take_f32_zeroed(rows);
        for (r, &ix) in indices.iter().enumerate() {
            assert!(ix < cols, "pick index {ix} out of {cols} columns");
            out[r] = av.at2(r, ix);
        }
        let v = Tensor::from_vec(&[rows, 1], out);
        let ng = self.any_needs_grad(&[a]);
        self.push(v, &[a], Op::PickColumn { indices }, None, ng)
    }

    /// Gathers rows from a `[vocab, dim]` table → `[len, dim]`.
    pub fn gather_rows(&mut self, table: NodeId, indices: Vec<usize>) -> NodeId {
        let tv = self.value(table);
        assert_eq!(tv.ndim(), 2, "gather_rows table must be rank 2");
        let (vocab, dim) = (tv.shape()[0], tv.shape()[1]);
        let mut out = arena::take_f32(indices.len() * dim);
        for &ix in &indices {
            assert!(ix < vocab, "gather index {ix} out of {vocab} rows");
            out.extend_from_slice(&tv.data()[ix * dim..(ix + 1) * dim]);
        }
        let v = Tensor::from_vec(&[indices.len(), dim], out);
        let ng = self.any_needs_grad(&[table]);
        self.push(v, &[table], Op::GatherRows { indices }, None, ng)
    }

    // ---- NN primitives ------------------------------------------------------

    /// 2-D convolution `x:[B,Cin,H,W] * w:[Cout,Cin,K,K] + b:[Cout]`.
    pub fn conv2d(&mut self, x: NodeId, w: NodeId, b: NodeId, cfg: ConvCfg) -> NodeId {
        let f = conv2d_forward(self.value(x), self.value(w), self.value(b), &cfg);
        let ng = self.any_needs_grad(&[x, w, b]);
        self.push(f.output, &[x, w, b], Op::Conv2d { cfg, cols: f.cols }, None, ng)
    }

    /// Layer norm over the trailing dimension of `x:[rows, feat]`.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let (v, ctx) = layer_norm_forward(self.value(x), self.value(gamma), self.value(beta), eps);
        let ng = self.any_needs_grad(&[x, gamma, beta]);
        self.push(v, &[x, gamma, beta], Op::LayerNorm { ctx }, None, ng)
    }

    // ---- backward -----------------------------------------------------------

    /// Runs reverse-mode backprop from `loss` (which must be a single-element
    /// tensor), accumulating parameter gradients into `store`. Returns the
    /// loss value.
    ///
    /// In debug / `strict-checks` builds every parameter gradient leaving
    /// the tape is boundary-checked: a NaN/Inf gradient aborts here, at the
    /// graph boundary, instead of silently corrupting the optimizer state.
    pub fn backward(&self, loss: NodeId, store: &mut ParamStore) -> f32 {
        let grads = self.compute_grads(loss);
        for (node, grad) in self.nodes.iter().zip(&grads) {
            if let (Some(pid), Some(g)) = (node.param, grad.as_ref()) {
                crate::check::assert_valid(g, "parameter gradient");
                store.accumulate_grad(pid, g);
            }
        }
        release_grad_buffer(grads);
        self.nodes[loss.0].value.item()
    }

    /// The gradient of `loss` with respect to an arbitrary node (e.g. a leaf
    /// input), or `None` if no gradient reached it. Used by gradient-check
    /// tests and by RND/ICM feature analysis.
    pub fn grad_of(&self, loss: NodeId, node: NodeId) -> Option<Tensor> {
        let mut grads = self.compute_grads_tracking_all(loss);
        let g = grads[node.0].take();
        release_grad_buffer(grads);
        g
    }

    fn compute_grads(&self, loss: NodeId) -> Vec<Option<Tensor>> {
        self.run_backward(loss, false)
    }

    fn compute_grads_tracking_all(&self, loss: NodeId) -> Vec<Option<Tensor>> {
        self.run_backward(loss, true)
    }

    fn run_backward(&self, loss: NodeId, track_all: bool) -> Vec<Option<Tensor>> {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            self.nodes[loss.0].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = take_grad_buffer(self.nodes.len());
        grads[loss.0] = Some(Tensor::ones(self.nodes[loss.0].value.shape()));

        for i in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[i].take() else { continue };
            let node = &self.nodes[i];
            // When not tracking all grads we can skip subtrees with no
            // trainable parameters.
            let relevant = |p: NodeId| {
                track_all || self.nodes[p.0].needs_grad || self.nodes[p.0].param.is_some()
            };
            let send = |grads: &mut Vec<Option<Tensor>>, p: NodeId, g: Tensor| {
                if !relevant(p) {
                    return;
                }
                match &mut grads[p.0] {
                    Some(acc) => acc.add_assign(&g),
                    slot @ None => *slot = Some(g),
                }
            };

            match &node.op {
                Op::Leaf => {
                    // Terminal; re-install the grad so param accumulation and
                    // grad_of can read it.
                    grads[i] = Some(gout);
                    continue;
                }
                Op::Add => {
                    send(&mut grads, node.parents[0], gout.clone());
                    send(&mut grads, node.parents[1], gout);
                }
                Op::Sub => {
                    send(&mut grads, node.parents[0], gout.clone());
                    send(&mut grads, node.parents[1], gout.map(|g| -g));
                }
                Op::Mul => {
                    let a = node.parents[0];
                    let b = node.parents[1];
                    send(&mut grads, a, gout.zip(self.value(b), |g, y| g * y));
                    send(&mut grads, b, gout.zip(self.value(a), |g, x| g * x));
                }
                Op::Neg => send(&mut grads, node.parents[0], gout.map(|g| -g)),
                Op::AddRowBroadcast => {
                    let x = node.parents[0];
                    let b = node.parents[1];
                    let cols = self.value(x).shape()[1];
                    let mut gb = Tensor::zeros(&[cols]);
                    for (j, &g) in gout.data().iter().enumerate() {
                        gb.data_mut()[j % cols] += g;
                    }
                    send(&mut grads, x, gout);
                    send(&mut grads, b, gb);
                }
                Op::Scale(c) => {
                    let c = *c;
                    send(&mut grads, node.parents[0], gout.map(|g| c * g));
                }
                Op::AddScalar(_) => send(&mut grads, node.parents[0], gout),
                Op::MatMul => {
                    let a = node.parents[0];
                    let b = node.parents[1];
                    // dA = g·Bᵀ, dB = Aᵀ·g via the transpose-packing kernels
                    // (no materialized transpose tensors).
                    let ga = gout.matmul_nt(self.value(b));
                    let gb = self.value(a).matmul_tn(&gout);
                    send(&mut grads, a, ga);
                    send(&mut grads, b, gb);
                }
                Op::Relu => {
                    let x = self.value(node.parents[0]);
                    send(
                        &mut grads,
                        node.parents[0],
                        gout.zip(x, |g, v| if v > 0.0 { g } else { 0.0 }),
                    );
                }
                Op::Tanh => {
                    let y = &node.value;
                    send(&mut grads, node.parents[0], gout.zip(y, |g, t| g * (1.0 - t * t)));
                }
                Op::Sigmoid => {
                    let y = &node.value;
                    send(&mut grads, node.parents[0], gout.zip(y, |g, s| g * s * (1.0 - s)));
                }
                Op::Exp => {
                    let y = &node.value;
                    send(&mut grads, node.parents[0], gout.zip(y, |g, e| g * e));
                }
                Op::Ln { eps } => {
                    let eps = *eps;
                    let x = self.value(node.parents[0]);
                    send(&mut grads, node.parents[0], gout.zip(x, |g, v| g / v.max(eps)));
                }
                Op::Square => {
                    let x = self.value(node.parents[0]);
                    send(&mut grads, node.parents[0], gout.zip(x, |g, v| 2.0 * v * g));
                }
                Op::Clamp { lo, hi } => {
                    let (lo, hi) = (*lo, *hi);
                    let x = self.value(node.parents[0]);
                    send(
                        &mut grads,
                        node.parents[0],
                        gout.zip(x, |g, v| if v > lo && v < hi { g } else { 0.0 }),
                    );
                }
                Op::MinElem | Op::MaxElem => {
                    let take_first = matches!(node.op, Op::MinElem);
                    let a = node.parents[0];
                    let b = node.parents[1];
                    let av = self.value(a);
                    let bv = self.value(b);
                    let mut ga = Tensor::zeros(av.shape());
                    let mut gb = Tensor::zeros(bv.shape());
                    for (((g, &x), &y), (sa, sb)) in gout
                        .data()
                        .iter()
                        .zip(av.data())
                        .zip(bv.data())
                        .zip(ga.data_mut().iter_mut().zip(gb.data_mut().iter_mut()))
                    {
                        // Ties route to the first operand.
                        let first_wins = if take_first { x <= y } else { x >= y };
                        if first_wins {
                            *sa = *g;
                        } else {
                            *sb = *g;
                        }
                    }
                    send(&mut grads, a, ga);
                    send(&mut grads, b, gb);
                }
                Op::SumAll => {
                    let g = gout.item();
                    let p = node.parents[0];
                    send(&mut grads, p, Tensor::full(self.value(p).shape(), g));
                }
                Op::MeanAll => {
                    let p = node.parents[0];
                    let n = self.value(p).numel() as f32;
                    let g = gout.item() / n;
                    send(&mut grads, p, Tensor::full(self.value(p).shape(), g));
                }
                Op::MeanRows => {
                    let p = node.parents[0];
                    let (rows, cols) = (self.value(p).shape()[0], self.value(p).shape()[1]);
                    let mut gp = Tensor::zeros(&[rows, cols]);
                    for r in 0..rows {
                        let g = gout.data()[r] / cols as f32;
                        for c in 0..cols {
                            *gp.at2_mut(r, c) = g;
                        }
                    }
                    send(&mut grads, p, gp);
                }
                Op::Reshape => {
                    let p = node.parents[0];
                    let g = gout.reshape(self.value(p).shape());
                    send(&mut grads, p, g);
                }
                Op::ConcatCols { left_cols } => {
                    let a = node.parents[0];
                    let b = node.parents[1];
                    let ca = *left_cols;
                    let rows = gout.shape()[0];
                    let total = gout.shape()[1];
                    let cb = total - ca;
                    let mut ga = Tensor::zeros(&[rows, ca]);
                    let mut gb = Tensor::zeros(&[rows, cb]);
                    for r in 0..rows {
                        ga.data_mut()[r * ca..(r + 1) * ca]
                            .copy_from_slice(&gout.data()[r * total..r * total + ca]);
                        gb.data_mut()[r * cb..(r + 1) * cb]
                            .copy_from_slice(&gout.data()[r * total + ca..(r + 1) * total]);
                    }
                    send(&mut grads, a, ga);
                    send(&mut grads, b, gb);
                }
                Op::Softmax => {
                    send(&mut grads, node.parents[0], softmax_backward(&node.value, &gout));
                }
                Op::LogSoftmax => {
                    send(&mut grads, node.parents[0], log_softmax_backward(&node.value, &gout));
                }
                Op::PickColumn { indices } => {
                    let p = node.parents[0];
                    let (rows, cols) = (self.value(p).shape()[0], self.value(p).shape()[1]);
                    let mut gp = Tensor::zeros(&[rows, cols]);
                    for (r, &ix) in indices.iter().enumerate() {
                        *gp.at2_mut(r, ix) += gout.data()[r];
                    }
                    send(&mut grads, p, gp);
                }
                Op::GatherRows { indices } => {
                    let p = node.parents[0];
                    let (vocab, dim) = (self.value(p).shape()[0], self.value(p).shape()[1]);
                    let mut gp = Tensor::zeros(&[vocab, dim]);
                    for (r, &ix) in indices.iter().enumerate() {
                        for d in 0..dim {
                            gp.data_mut()[ix * dim + d] += gout.data()[r * dim + d];
                        }
                    }
                    send(&mut grads, p, gp);
                }
                Op::Conv2d { cfg, cols } => {
                    let x = node.parents[0];
                    let w = node.parents[1];
                    let b = node.parents[2];
                    let g = conv2d_backward(&gout, cols, self.value(w), self.value(x).shape(), cfg);
                    send(&mut grads, x, g.gx);
                    send(&mut grads, w, g.gw);
                    send(&mut grads, b, g.gb);
                }
                Op::LayerNorm { ctx } => {
                    let x = node.parents[0];
                    let gamma = node.parents[1];
                    let beta = node.parents[2];
                    let g = layer_norm_backward(&gout, self.value(x), self.value(gamma), ctx);
                    send(&mut grads, x, g.gx);
                    send(&mut grads, gamma, g.ggamma);
                    send(&mut grads, beta, g.gbeta);
                }
            }
        }
        grads
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::param::ParamStore;

    /// d/dx of sum(f(x)) via central differences on a leaf.
    fn numeric_grad(build: &dyn Fn(&mut Graph, NodeId) -> NodeId, x0: &Tensor) -> Tensor {
        let eps = 1e-3f32;
        let mut out = Tensor::zeros(x0.shape());
        for i in 0..x0.numel() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let fp = {
                let mut g = Graph::new();
                let x = g.leaf(xp);
                let y = build(&mut g, x);
                g.value(y).item()
            };
            let fm = {
                let mut g = Graph::new();
                let x = g.leaf(xm);
                let y = build(&mut g, x);
                g.value(y).item()
            };
            out.data_mut()[i] = (fp - fm) / (2.0 * eps);
        }
        out
    }

    fn analytic_grad(build: &dyn Fn(&mut Graph, NodeId) -> NodeId, x0: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let x = g.leaf(x0.clone());
        let y = build(&mut g, x);
        g.grad_of(y, x).expect("gradient must reach the input")
    }

    fn check(build: &dyn Fn(&mut Graph, NodeId) -> NodeId, x0: &Tensor, tol: f32) {
        let num = numeric_grad(build, x0);
        let ana = analytic_grad(build, x0);
        for i in 0..x0.numel() {
            assert!(
                (num.data()[i] - ana.data()[i]).abs() < tol,
                "coord {i}: numeric {} analytic {}",
                num.data()[i],
                ana.data()[i]
            );
        }
    }

    fn test_input(n: usize) -> Tensor {
        Tensor::from_vec(&[1, n], (0..n).map(|i| 0.4 * (i as f32 * 0.83).sin() + 0.1).collect())
    }

    #[test]
    fn grad_elementwise_chain() {
        // f = sum(tanh(relu(2x + 1))^2)
        let x0 = test_input(6);
        check(
            &|g, x| {
                let a = g.scale(x, 2.0);
                let b = g.add_scalar(a, 1.0);
                let c = g.relu(b);
                let d = g.tanh(c);
                let e = g.square(d);
                g.sum_all(e)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_mul_sub_exp() {
        let x0 = test_input(5);
        check(
            &|g, x| {
                let e = g.exp(x);
                let m = g.mul(e, x);
                let s = g.sub(m, x);
                g.mean_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_ln() {
        let x0 = test_input(5);
        check(
            &|g, x| {
                let s = g.sigmoid(x);
                let l = g.ln(s, 1e-8);
                g.sum_all(l)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_both_sides() {
        let x0 = Tensor::from_vec(&[2, 3], (0..6).map(|i| (i as f32 * 0.7).cos()).collect());
        let w = Tensor::from_vec(&[3, 2], vec![0.2, -0.4, 0.3, 0.1, -0.2, 0.5]);
        let wc = w.clone();
        check(
            &move |g, x| {
                let w = g.leaf(wc.clone());
                let y = g.matmul(x, w);
                g.sum_all(y)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_pick_nll() {
        // Negative log likelihood through log_softmax + pick_column — the PPO
        // log-prob path.
        let x0 = Tensor::from_vec(&[2, 4], (0..8).map(|i| (i as f32 * 0.31).sin()).collect());
        check(
            &|g, x| {
                let ls = g.log_softmax(x);
                let p = g.pick_column(ls, vec![1, 3]);
                let n = g.neg(p);
                g.sum_all(n)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_clamp_min_max() {
        let x0 = test_input(6);
        let other = Tensor::from_vec(&[1, 6], vec![0.1, -0.1, 0.3, 0.0, 0.2, -0.3]);
        let oc = other.clone();
        check(
            &move |g, x| {
                let o = g.leaf(oc.clone());
                let c = g.clamp(x, -0.25, 0.25);
                let mn = g.min_elem(c, o);
                let mx = g.max_elem(mn, x);
                g.sum_all(mx)
            },
            &x0,
            2e-2,
        );
    }

    #[test]
    fn grad_concat_and_mean_rows() {
        let x0 = Tensor::from_vec(&[2, 3], (0..6).map(|i| (i as f32 * 0.51).sin()).collect());
        check(
            &|g, x| {
                let sq = g.square(x);
                let c = g.concat_cols(x, sq);
                let m = g.mean_rows(c);
                g.sum_all(m)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_reshape_passthrough() {
        let x0 = Tensor::from_vec(&[1, 6], (0..6).map(|i| i as f32 * 0.1).collect());
        check(
            &|g, x| {
                let r = g.reshape(x, &[2, 3]);
                let s = g.square(r);
                g.sum_all(s)
            },
            &x0,
            1e-2,
        );
    }

    #[test]
    fn grad_gather_rows_scatter_adds() {
        let mut store = ParamStore::new();
        let table = store.add("t", Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]));
        let mut g = Graph::new();
        let t = g.param(&store, table);
        // Row 1 gathered twice: its gradient must be 2.
        let gat = g.gather_rows(t, vec![1, 1, 0]);
        let loss = g.sum_all(gat);
        g.backward(loss, &mut store);
        assert_eq!(store.grad(table).data(), &[1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    fn backward_accumulates_into_params() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1, 1], vec![3.0]));
        // loss = (w * 2)^2 = 4 w^2, dloss/dw = 8w = 24.
        let mut g = Graph::new();
        let wn = g.param(&store, w);
        let x = g.scale(wn, 2.0);
        let sq = g.square(x);
        let loss = g.sum_all(sq);
        let lv = g.backward(loss, &mut store);
        assert!((lv - 36.0).abs() < 1e-5);
        assert!((store.grad(w).data()[0] - 24.0).abs() < 1e-4);
    }

    #[test]
    fn frozen_param_gets_no_grad() {
        let mut store = ParamStore::new();
        let w = store.add_frozen("w", Tensor::from_vec(&[1, 1], vec![2.0]));
        let mut g = Graph::new();
        let wn = g.param(&store, w);
        let sq = g.square(wn);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        assert_eq!(store.grad(w).data(), &[0.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // y = x*x + x*x (the same mul node used twice via add).
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![3.0]));
        let mut g = Graph::new();
        let x = g.param(&store, w);
        let m = g.mul(x, x);
        let y = g.add(m, m);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        // d(2x^2)/dx = 4x = 12.
        assert!((store.grad(w).data()[0] - 12.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_on_non_scalar_panics() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2]));
        let mut g = Graph::new();
        let x = g.param(&store, w);
        g.backward(x, &mut store);
    }

    #[test]
    fn grad_conv_layernorm_pipeline() {
        // End-to-end: conv -> flatten -> layer_norm -> mean, checked against
        // finite differences through the whole tape.
        let cfg = ConvCfg { in_channels: 1, out_channels: 2, kernel: 3, stride: 1, padding: 1 };
        let x0 = Tensor::from_vec(&[1, 1, 3, 3], (0..9).map(|i| (i as f32 * 0.45).sin()).collect());
        let w = Tensor::from_vec(
            &[2, 1, 3, 3],
            (0..18).map(|i| (i as f32 * 0.21).cos() * 0.3).collect(),
        );
        let b = Tensor::from_vec(&[2], vec![0.1, -0.1]);
        let gamma = Tensor::ones(&[18]);
        let beta = Tensor::zeros(&[18]);
        let (wc, bc, gc, bec) = (w.clone(), b.clone(), gamma.clone(), beta.clone());
        check(
            &move |g, x| {
                let w = g.leaf(wc.clone());
                let b = g.leaf(bc.clone());
                let gamma = g.leaf(gc.clone());
                let beta = g.leaf(bec.clone());
                let y = g.conv2d(x, w, b, cfg);
                let flat = g.reshape(y, &[1, 18]);
                let n = g.layer_norm(flat, gamma, beta, 1e-5);
                let t = g.tanh(n);
                g.mean_all(t)
            },
            &x0,
            2e-2,
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    fn nan_leaf_is_rejected_at_the_graph_boundary() {
        let res = std::panic::catch_unwind(|| {
            let mut g = Graph::new();
            g.leaf(Tensor::from_vec(&[2], vec![1.0, f32::NAN]));
        });
        assert!(res.is_err(), "a NaN entering the tape must abort at the boundary");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn nonfinite_parameter_gradient_is_rejected_by_backward() {
        // x is finite but huge; d/dx sum(x²) = 2x overflows to +Inf, so the
        // gradient leaving the tape is non-finite and must abort in
        // backward() rather than corrupt the optimizer state.
        let res = std::panic::catch_unwind(|| {
            let mut store = ParamStore::new();
            let id = store.add("w", Tensor::from_vec(&[1], vec![3.0e38]));
            let mut g = Graph::new();
            let x = g.param(&store, id);
            let sq = g.square(x);
            let loss = g.sum_all(sq);
            g.backward(loss, &mut store);
        });
        assert!(res.is_err(), "an overflowing gradient must abort at the boundary");
    }
}
