//! Adam optimizer (Kingma & Ba, 2015) — the optimizer the chief thread of
//! DRL-CEWS applies to the summed employee gradients.

use super::Optimizer;
use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Adam with bias-corrected first/second moment estimates.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the canonical β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas in [0,1)");
        Self { lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.is_empty() {
            for id in store.ids().collect::<Vec<_>>() {
                self.m.push(Tensor::zeros(store.value(id).shape()));
                self.v.push(Tensor::zeros(store.value(id).shape()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let g = store.grad(id).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), &gj) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
            }
            let value = store.value_mut(id);
            for ((pj, &mj), &vj) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mj / bc1;
                let vhat = vj / bc2;
                *pj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Minimize f(w) = (w - target)² from a given start.
    fn minimize(lr: f32, start: f32, target: f32, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![start]));
        let mut opt = Adam::new(lr);
        for _ in 0..iters {
            store.zero_grads();
            let grad = Tensor::from_vec(&[1], vec![2.0 * (store.value(w).data()[0] - target)]);
            store.accumulate_grad(w, &grad);
            opt.step(&mut store);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn converges_on_quadratic() {
        let w = minimize(0.1, 10.0, -3.0, 500);
        assert!((w + 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn first_step_size_is_lr() {
        // Adam's bias correction makes the very first step ≈ lr regardless
        // of gradient magnitude.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![0.0]));
        let mut opt = Adam::new(0.05);
        store.accumulate_grad(w, &Tensor::from_vec(&[1], vec![1234.0]));
        opt.step(&mut store);
        assert!((store.value(w).data()[0] + 0.05).abs() < 1e-4);
    }

    #[test]
    fn frozen_params_untouched() {
        let mut store = ParamStore::new();
        let f = store.add_frozen("f", Tensor::from_vec(&[1], vec![7.0]));
        let w = store.add("w", Tensor::from_vec(&[1], vec![1.0]));
        let mut opt = Adam::new(0.1);
        store.accumulate_grad(w, &Tensor::ones(&[1]));
        opt.step(&mut store);
        assert_eq!(store.value(f).data(), &[7.0]);
        assert!(store.value(w).data()[0] < 1.0);
    }

    #[test]
    fn adam_outpaces_sgd_on_ill_conditioned_quadratic() {
        // f(w) = 0.5 (1000 w0^2 + w1^2): per-coordinate scaling is exactly
        // what Adam's second moment fixes and plain SGD cannot (a stable SGD
        // lr for w0 crawls on w1).
        use crate::optim::Sgd;
        fn run(opt: &mut dyn Optimizer, iters: usize) -> f32 {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(&[2], vec![1.0, 1.0]));
            for _ in 0..iters {
                store.zero_grads();
                let v = store.value(w).data().to_vec();
                store.accumulate_grad(w, &Tensor::from_vec(&[2], vec![1000.0 * v[0], v[1]]));
                opt.step(&mut store);
            }
            let v = store.value(w).data();
            0.5 * (1000.0 * v[0] * v[0] + v[1] * v[1])
        }
        // Largest stable SGD lr is ~1/1000; Adam normalizes per coordinate.
        let sgd_loss = run(&mut Sgd::new(1e-3), 300);
        let adam_loss = run(&mut Adam::new(0.05), 300);
        assert!(
            adam_loss < sgd_loss / 10.0,
            "Adam {adam_loss} should dominate SGD {sgd_loss} here"
        );
    }

    #[test]
    fn step_counter_advances() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}
