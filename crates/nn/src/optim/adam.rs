//! Adam optimizer (Kingma & Ba, 2015) — the optimizer the chief thread of
//! DRL-CEWS applies to the summed employee gradients.

use super::Optimizer;
use crate::param::ParamStore;
use crate::tensor::Tensor;

/// Adam with bias-corrected first/second moment estimates.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the canonical β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyperparameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas in [0,1)");
        Self { lr, beta1, beta2, eps, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Flattens the first/second moment estimates for checkpointing, in
    /// parameter-registration order. Both vectors are empty before the
    /// first [`Optimizer::step`] (moments are lazily allocated).
    pub fn flat_moments(&self) -> (Vec<f32>, Vec<f32>) {
        let flatten =
            |ts: &[Tensor]| ts.iter().flat_map(|t| t.data().iter().copied()).collect::<Vec<f32>>();
        (flatten(&self.m), flatten(&self.v))
    }

    /// Restores the optimizer state captured by [`Self::steps`] and
    /// [`Self::flat_moments`], shaping the moment tensors against `store`
    /// (which must be the store this optimizer steps). Empty moment slices
    /// reset to the pre-first-step lazy state.
    ///
    /// # Errors
    ///
    /// [`MomentLengthMismatch`] when the flat moments don't cover `store`'s
    /// scalars exactly.
    pub fn restore_state(
        &mut self,
        store: &ParamStore,
        t: u64,
        m_flat: &[f32],
        v_flat: &[f32],
    ) -> Result<(), MomentLengthMismatch> {
        if m_flat.is_empty() && v_flat.is_empty() {
            self.t = t;
            self.m.clear();
            self.v.clear();
            return Ok(());
        }
        let expected = store.num_scalars();
        if m_flat.len() != expected || v_flat.len() != expected {
            return Err(MomentLengthMismatch {
                expected,
                got: if m_flat.len() != expected { m_flat.len() } else { v_flat.len() },
            });
        }
        let unflatten = |flat: &[f32]| {
            let mut out = Vec::new();
            let mut off = 0;
            for id in store.ids() {
                let shape = store.value(id).shape().to_vec();
                let n = store.value(id).data().len();
                out.push(Tensor::from_vec(&shape, flat[off..off + n].to_vec()));
                off += n;
            }
            out
        };
        self.t = t;
        self.m = unflatten(m_flat);
        self.v = unflatten(v_flat);
        Ok(())
    }
}

/// [`Adam::restore_state`] was given moment vectors whose total scalar
/// count doesn't match the parameter store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MomentLengthMismatch {
    /// Scalars the store holds.
    pub expected: usize,
    /// Scalars the offending moment vector holds.
    pub got: usize,
}

impl std::fmt::Display for MomentLengthMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Adam moment length mismatch: store has {} scalars, snapshot has {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for MomentLengthMismatch {}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore) {
        if self.m.is_empty() {
            for id in store.ids().collect::<Vec<_>>() {
                self.m.push(Tensor::zeros(store.value(id).shape()));
                self.v.push(Tensor::zeros(store.value(id).shape()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let g = store.grad(id).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), &gj) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
            }
            let value = store.value_mut(id);
            for ((pj, &mj), &vj) in value.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mj / bc1;
                let vhat = vj / bc2;
                *pj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Minimize f(w) = (w - target)² from a given start.
    fn minimize(lr: f32, start: f32, target: f32, iters: usize) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![start]));
        let mut opt = Adam::new(lr);
        for _ in 0..iters {
            store.zero_grads();
            let grad = Tensor::from_vec(&[1], vec![2.0 * (store.value(w).data()[0] - target)]);
            store.accumulate_grad(w, &grad);
            opt.step(&mut store);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn converges_on_quadratic() {
        let w = minimize(0.1, 10.0, -3.0, 500);
        assert!((w + 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn first_step_size_is_lr() {
        // Adam's bias correction makes the very first step ≈ lr regardless
        // of gradient magnitude.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![0.0]));
        let mut opt = Adam::new(0.05);
        store.accumulate_grad(w, &Tensor::from_vec(&[1], vec![1234.0]));
        opt.step(&mut store);
        assert!((store.value(w).data()[0] + 0.05).abs() < 1e-4);
    }

    #[test]
    fn frozen_params_untouched() {
        let mut store = ParamStore::new();
        let f = store.add_frozen("f", Tensor::from_vec(&[1], vec![7.0]));
        let w = store.add("w", Tensor::from_vec(&[1], vec![1.0]));
        let mut opt = Adam::new(0.1);
        store.accumulate_grad(w, &Tensor::ones(&[1]));
        opt.step(&mut store);
        assert_eq!(store.value(f).data(), &[7.0]);
        assert!(store.value(w).data()[0] < 1.0);
    }

    #[test]
    fn adam_outpaces_sgd_on_ill_conditioned_quadratic() {
        // f(w) = 0.5 (1000 w0^2 + w1^2): per-coordinate scaling is exactly
        // what Adam's second moment fixes and plain SGD cannot (a stable SGD
        // lr for w0 crawls on w1).
        use crate::optim::Sgd;
        fn run(opt: &mut dyn Optimizer, iters: usize) -> f32 {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(&[2], vec![1.0, 1.0]));
            for _ in 0..iters {
                store.zero_grads();
                let v = store.value(w).data().to_vec();
                store.accumulate_grad(w, &Tensor::from_vec(&[2], vec![1000.0 * v[0], v[1]]));
                opt.step(&mut store);
            }
            let v = store.value(w).data();
            0.5 * (1000.0 * v[0] * v[0] + v[1] * v[1])
        }
        // Largest stable SGD lr is ~1/1000; Adam normalizes per coordinate.
        let sgd_loss = run(&mut Sgd::new(1e-3), 300);
        let adam_loss = run(&mut Adam::new(0.05), 300);
        assert!(
            adam_loss < sgd_loss / 10.0,
            "Adam {adam_loss} should dominate SGD {sgd_loss} here"
        );
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        // Two optimizers stepped identically, one through a mid-run
        // state transfer, must produce bit-identical trajectories.
        fn setup() -> (ParamStore, crate::param::ParamId) {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(&[2], vec![5.0, -4.0]));
            (store, w)
        }
        fn grad_step(store: &mut ParamStore, w: crate::param::ParamId, opt: &mut Adam) {
            store.zero_grads();
            let v = store.value(w).data().to_vec();
            store.accumulate_grad(w, &Tensor::from_vec(&[2], vec![2.0 * v[0], 0.5 * v[1]]));
            opt.step(store);
        }
        let (mut s1, w1) = setup();
        let mut o1 = Adam::new(0.05);
        for _ in 0..5 {
            grad_step(&mut s1, w1, &mut o1);
        }
        // Transfer: fresh store/optimizer resumed from snapshots.
        let (mut s2, w2) = setup();
        s2.load_flat_values(&s1.flat_values());
        let mut o2 = Adam::new(0.05);
        let (m, v) = o1.flat_moments();
        o2.restore_state(&s2, o1.steps(), &m, &v).unwrap();
        assert_eq!(o2.steps(), 5);
        for _ in 0..5 {
            grad_step(&mut s1, w1, &mut o1);
            grad_step(&mut s2, w2, &mut o2);
        }
        assert_eq!(s1.value(w1).data(), s2.value(w2).data());
    }

    #[test]
    fn restore_state_rejects_wrong_lengths() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[3]));
        let mut opt = Adam::new(0.1);
        let err = opt.restore_state(&store, 1, &[0.0; 2], &[0.0; 3]).unwrap_err();
        assert_eq!(err, super::MomentLengthMismatch { expected: 3, got: 2 });
        // Empty moments reset to the lazy pre-step state.
        opt.restore_state(&store, 0, &[], &[]).unwrap();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn step_counter_advances() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(&[1]));
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.steps(), 0);
        opt.step(&mut store);
        opt.step(&mut store);
        assert_eq!(opt.steps(), 2);
    }
}
