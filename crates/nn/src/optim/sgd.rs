//! Stochastic gradient descent with optional momentum.

use super::Optimizer;
use crate::param::ParamStore;
use crate::tensor::Tensor;

/// `v ← μ·v + g; θ ← θ − lr·v` (μ = 0 gives plain SGD).
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0, velocity: Vec::new() }
    }

    /// SGD with momentum μ.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Self { lr, momentum, velocity: Vec::new() }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore) {
        if self.momentum == 0.0 {
            let lr = self.lr;
            store.for_each_trainable(|v, g| v.add_scaled(g, -lr));
            return;
        }
        // Lazily size the velocity buffers on first use.
        if self.velocity.is_empty() {
            for id in store.ids().collect::<Vec<_>>() {
                self.velocity.push(Tensor::zeros(store.value(id).shape()));
            }
        }
        let (lr, mu) = (self.lr, self.momentum);
        let ids: Vec<_> = store.ids().collect();
        for (i, &id) in ids.iter().enumerate() {
            if store.is_frozen(id) {
                continue;
            }
            let vel = &mut self.velocity[i];
            vel.scale_inplace(mu);
            vel.add_assign(store.grad(id));
            let vel = vel.clone();
            store.value_mut(id).add_scaled(&vel, -lr);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::from_vec(&[1], vec![5.0]));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            store.zero_grads();
            // d/dw (w-2)^2 = 2(w-2)
            let grad = Tensor::from_vec(&[1], vec![2.0 * (store.value(w).data()[0] - 2.0)]);
            store.accumulate_grad(w, &grad);
            opt.step(&mut store);
        }
        assert!((store.value(w).data()[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradient() {
        let run = |mu: f32| {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::from_vec(&[1], vec![0.0]));
            let mut opt = Sgd::with_momentum(0.01, mu);
            for _ in 0..20 {
                store.zero_grads();
                store.accumulate_grad(w, &Tensor::from_vec(&[1], vec![1.0]));
                opt.step(&mut store);
            }
            store.value(w).data()[0]
        };
        assert!(run(0.9) < run(0.0), "momentum should travel further");
    }

    #[test]
    fn lr_setter_roundtrips() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.02);
        assert_eq!(opt.learning_rate(), 0.02);
    }
}
