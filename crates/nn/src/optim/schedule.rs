//! Learning-rate schedules.
//!
//! PPO training benefits from annealing the step size as the policy
//! converges; the chief applies one of these schedules to its Adam
//! optimizers between episodes.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over training progress `t ∈ [0, 1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// Constant at the base rate.
    #[default]
    Constant,
    /// Linear decay from the base rate to `final_fraction·base` at t = 1.
    Linear {
        /// Fraction of the base rate remaining at the end of training.
        final_fraction: f32,
    },
    /// Cosine decay from the base rate to `final_fraction·base` at t = 1.
    Cosine {
        /// Fraction of the base rate remaining at the end of training.
        final_fraction: f32,
    },
    /// Step decay: multiply by `factor` after each boundary fraction.
    Step {
        /// Multiplier applied at each boundary.
        factor: f32,
        /// Progress fractions at which the rate drops.
        boundaries: [f32; 2],
    },
}

impl LrSchedule {
    /// The learning rate at progress `t ∈ [0, 1]` for a base rate.
    pub fn at(&self, base: f32, t: f32) -> f32 {
        let t = t.clamp(0.0, 1.0);
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Linear { final_fraction } => base * (1.0 - t * (1.0 - final_fraction)),
            LrSchedule::Cosine { final_fraction } => {
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                base * (final_fraction + (1.0 - final_fraction) * cos)
            }
            LrSchedule::Step { factor, boundaries } => {
                let mut lr = base;
                for &b in &boundaries {
                    if t >= b {
                        lr *= factor;
                    }
                }
                lr
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_moves() {
        let s = LrSchedule::Constant;
        for t in [0.0, 0.3, 1.0, 5.0] {
            assert_eq!(s.at(3e-4, t), 3e-4);
        }
    }

    #[test]
    fn linear_hits_endpoints() {
        let s = LrSchedule::Linear { final_fraction: 0.1 };
        assert!((s.at(1.0, 0.0) - 1.0).abs() < 1e-6);
        assert!((s.at(1.0, 1.0) - 0.1).abs() < 1e-6);
        assert!((s.at(1.0, 0.5) - 0.55).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_monotone_decreasing() {
        let s = LrSchedule::Cosine { final_fraction: 0.0 };
        let mut prev = f32::INFINITY;
        for i in 0..=10 {
            let lr = s.at(1.0, i as f32 / 10.0);
            assert!(lr <= prev + 1e-6);
            prev = lr;
        }
        assert!(prev.abs() < 1e-6);
    }

    #[test]
    fn step_applies_at_boundaries() {
        let s = LrSchedule::Step { factor: 0.5, boundaries: [0.5, 0.8] };
        assert_eq!(s.at(1.0, 0.4), 1.0);
        assert_eq!(s.at(1.0, 0.6), 0.5);
        assert_eq!(s.at(1.0, 0.9), 0.25);
    }

    #[test]
    fn progress_is_clamped() {
        let s = LrSchedule::Linear { final_fraction: 0.0 };
        assert_eq!(s.at(1.0, -1.0), 1.0);
        assert_eq!(s.at(1.0, 2.0), 0.0);
    }
}
