//! Optimizers consuming [`crate::param::ParamStore`] gradients.

mod adam;
mod schedule;
mod sgd;

pub use adam::{Adam, MomentLengthMismatch};
pub use schedule::LrSchedule;
pub use sgd::Sgd;

use crate::param::ParamStore;

/// Common optimizer interface: apply the accumulated gradients to the
/// parameter values, then (typically) `store.zero_grads()` at the call site.
pub trait Optimizer {
    /// One update step from the currently accumulated gradients.
    fn step(&mut self, store: &mut ParamStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}
