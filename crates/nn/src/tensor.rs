//! Dense row-major `f32` tensors.
//!
//! [`Tensor`] is the single storage type used throughout the workspace: the
//! autograd graph ([`crate::graph::Graph`]) stores one `Tensor` per node, and
//! [`crate::param::ParamStore`] stores one per parameter (plus one for its
//! gradient). Shapes are dynamic (`Vec<usize>`); all data lives in one
//! contiguous `Vec<f32>` in row-major order.
//!
//! Storage is arena-backed: constructors draw their buffers from the
//! thread-local freelists in [`crate::arena`], and `Drop` returns them, so
//! steady-state graph construction recycles the same allocations step after
//! step instead of hitting the global allocator (see the arena module docs
//! and the counting-allocator test in `crates/nn/tests/arena_alloc.rs`).

use crate::arena;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense row-major tensor of `f32` values.
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        // Manual impl so clones draw from the arena; the derived impl would
        // clone straight from the global allocator.
        let mut data = arena::take_f32(self.data.len());
        data.extend_from_slice(&self.data);
        Self { shape: arena::take_usize_copy(&self.shape), data }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        arena::put_f32(std::mem::take(&mut self.data));
        arena::put_usize(std::mem::take(&mut self.shape));
    }
}

impl Tensor {
    /// Creates a tensor from raw data and a shape. Panics if the element
    /// count implied by `shape` does not match `data.len()`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {:?} implies {} elements but data has {}",
            shape,
            numel,
            data.len()
        );
        Self { shape: arena::take_usize_copy(shape), data }
    }

    /// A tensor wrapping an arena-recycled copy of `data`. Panics if the
    /// element count implied by `shape` does not match `data.len()`.
    pub fn from_slice(shape: &[usize], data: &[f32]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            data.len(),
            "shape {:?} implies {} elements but data has {}",
            shape,
            numel,
            data.len()
        );
        let mut buf = arena::take_f32(data.len());
        buf.extend_from_slice(data);
        Self { shape: arena::take_usize_copy(shape), data: buf }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        let mut data = arena::take_f32(numel);
        data.resize(numel, value);
        Self { shape: arena::take_usize_copy(shape), data }
    }

    /// A zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self::full(&[1], value)
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer (the shape
    /// buffer is recycled into the arena).
    pub fn into_data(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The single element of a one-element tensor. Panics otherwise.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.numel(), "reshape {:?} -> {:?}", self.shape, shape);
        Tensor::from_slice(shape, &self.data)
    }

    /// Element at a 2-D index of a rank-2 tensor.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element at a 2-D index of a rank-2 tensor.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = arena::take_f32(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor { shape: arena::take_usize_copy(&self.shape), data }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary combination with a same-shape tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let mut data = arena::take_f32(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor { shape: arena::take_usize_copy(&self.shape), data }
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += c * other` elementwise; shapes must match.
    pub fn add_scaled(&mut self, other: &Tensor, c: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += c * b;
        }
    }

    /// Multiplies every element by `c` in place.
    pub fn scale_inplace(&mut self, c: f32) {
        for x in &mut self.data {
            *x *= c;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element; `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean (L2) norm over all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Row-major matrix multiply of rank-2 tensors: `[m,k] x [k,n] -> [m,n]`.
    ///
    /// Runs the blocked kernel in [`crate::ops::gemm`] under the process-wide
    /// kernel thread budget. `0 · NaN` and `0 · ∞` propagate as `NaN` (no
    /// zero-skipping), and results are bit-identical for every thread count.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = self.empty_product(other);
        self.matmul_into(other, &mut out);
        out
    }

    /// An empty tensor whose data buffer is arena-sized for the `[m, n]`
    /// product of `self` and `other` (a capacity hint for the `_into`
    /// fills; harmless if the ranks turn out wrong — the fill asserts).
    fn empty_product(&self, other: &Tensor) -> Tensor {
        let m = self.shape.first().copied().unwrap_or(0);
        let n = other.shape.last().copied().unwrap_or(0);
        Tensor { shape: arena::take_usize(2), data: arena::take_f32(m.saturating_mul(n)) }
    }

    /// [`Self::matmul`] writing into `out`, reusing its allocation. `out` is
    /// reshaped to `[m, n]`; any previous contents are overwritten.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.ndim(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.ndim(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {} vs {}", k, k2);
        out.set_shape2(m, n);
        crate::ops::gemm::gemm(
            &self.data,
            &other.data,
            &mut out.data,
            m,
            k,
            n,
            crate::ops::gemm::kernel_threads(),
        );
    }

    /// `self · otherᵀ` for `self: [m,k]`, `other: [n,k]` → `[m,n]`, without
    /// the caller materializing the transpose.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = self.empty_product(other);
        let mut scratch = arena::take_f32(other.numel());
        self.matmul_nt_into(other, &mut scratch, &mut out);
        arena::put_f32(scratch);
        out
    }

    /// [`Self::matmul_nt`] writing into `out` and transpose-packing through
    /// `scratch`, reusing both allocations across calls.
    pub fn matmul_nt_into(&self, other: &Tensor, scratch: &mut Vec<f32>, out: &mut Tensor) {
        assert_eq!(self.ndim(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.ndim(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims {} vs {}", k, k2);
        out.set_shape2(m, n);
        crate::ops::gemm::gemm_nt(
            &self.data,
            &other.data,
            &mut out.data,
            m,
            k,
            n,
            scratch,
            crate::ops::gemm::kernel_threads(),
        );
    }

    /// `selfᵀ · other` for `self: [k,m]`, `other: [k,n]` → `[m,n]`, without
    /// the caller materializing the transpose.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let m = self.shape.last().copied().unwrap_or(0);
        let n = other.shape.last().copied().unwrap_or(0);
        let mut out =
            Tensor { shape: arena::take_usize(2), data: arena::take_f32(m.saturating_mul(n)) };
        let mut scratch = arena::take_f32(self.numel());
        self.matmul_tn_into(other, &mut scratch, &mut out);
        arena::put_f32(scratch);
        out
    }

    /// [`Self::matmul_tn`] writing into `out` and transpose-packing through
    /// `scratch`, reusing both allocations across calls.
    pub fn matmul_tn_into(&self, other: &Tensor, scratch: &mut Vec<f32>, out: &mut Tensor) {
        assert_eq!(self.ndim(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.ndim(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims {} vs {}", k, k2);
        out.set_shape2(m, n);
        crate::ops::gemm::gemm_tn(
            &self.data,
            &other.data,
            &mut out.data,
            m,
            k,
            n,
            scratch,
            crate::ops::gemm::kernel_threads(),
        );
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = arena::take_f32_zeroed(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// Resets this tensor in place to shape `[m, n]` with a zero-extended
    /// buffer of exactly `m·n` elements, keeping both allocations.
    fn set_shape2(&mut self, m: usize, n: usize) {
        self.shape.clear();
        self.shape.extend_from_slice(&[m, n]);
        self.data.resize(m * n, 0.0);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(
                f,
                ", data=[{:.4}, {:.4}, ...; n={}]",
                self.data[0],
                self.data[1],
                self.numel()
            )?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at2(1, 2), 6.0);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1., 2., 3.]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[4]).sum(), 4.0);
        assert_eq!(Tensor::full(&[2, 2], 2.5).sum(), 10.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "item")]
    fn item_on_multi_element_panics() {
        Tensor::zeros(&[2]).item();
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3., -1., 2., 5.]);
        let eye = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye).data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at2(2, 1), 6.0);
    }

    #[test]
    fn map_zip_arithmetic() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![4., 5., 6.]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2., 4., 6.]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[5., 7., 9.]);
    }

    #[test]
    fn add_scaled_and_norms() {
        let mut a = Tensor::from_vec(&[2], vec![3., 4.]);
        assert_eq!(a.l2_norm(), 5.0);
        let b = Tensor::from_vec(&[2], vec![1., 1.]);
        a.add_scaled(&b, 2.0);
        assert_eq!(a.data(), &[5., 6.]);
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[4], vec![-1., 0., 2.5, 2.]);
        assert_eq!(a.max(), 2.5);
        assert_eq!(a.min(), -1.0);
        assert!((a.mean() - 0.875).abs() < 1e-6);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(&[2]);
        assert!(!a.has_non_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(a.has_non_finite());
    }
}
