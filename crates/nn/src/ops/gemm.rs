//! Blocked, register-tiled GEMM kernels and the kernel thread-pool knob.
//!
//! Every PPO update and curiosity forward-model step bottoms out in dense
//! matrix multiplies — either directly ([`crate::tensor::Tensor::matmul`],
//! the autograd `MatMul` op) or through the im2col convolution lowering
//! ([`crate::ops::conv`]). This module owns those kernels:
//!
//! * [`gemm`] — `C = A·B`, cache-blocked over `k` and `n`, register-tiled
//!   `MR×NR` micro-kernel, optionally row-parallel across scoped threads;
//! * [`gemm_nt`] / [`gemm_tn`] — `A·Bᵀ` and `Aᵀ·B` via a transpose pack
//!   into a caller-provided scratch buffer (no per-call allocation when the
//!   caller reuses the scratch across steps);
//! * [`matmul_naive`] — the unblocked reference kernel, kept for
//!   correctness tests and as the benchmark baseline.
//!
//! ## NaN semantics
//!
//! None of these kernels skip zero operands: `0 · NaN` and `0 · ∞`
//! contribute `NaN` to the accumulator exactly as IEEE 754 demands. The
//! seed kernel's `if a == 0.0 { continue }` "sparsity" shortcut silently
//! laundered non-finite values into zeros, defeating the NaN-quarantine
//! machinery in the training chief; the regression tests in
//! `crates/nn/tests/gemm_kernels.rs` pin the corrected behavior.
//!
//! ## Determinism
//!
//! Each output element is accumulated strictly in ascending-`k` order by a
//! single accumulation chain: the micro-kernel *reloads* its accumulator
//! tile from `C` at every `k`-block boundary instead of summing per-block
//! partials, so blocking does not reassociate the floating-point sum. Row
//! parallelism partitions complete output rows across threads, so every
//! element is still computed by exactly one thread in the same order.
//! Consequently results are bit-identical to [`matmul_naive`] for every
//! thread count — checkpoint-resume determinism survives the fast path.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Rows per register tile of the micro-kernel.
const MR: usize = 4;
/// Columns per register tile of the micro-kernel: two AVX2 vectors per row,
/// giving the 8 independent FMA chains needed to hide FMA latency.
const NR: usize = 16;
/// `k`-block height: one packed `KC × NR` B-panel is 16 KiB, comfortably
/// inside L1 while the A rows stream through.
const KC: usize = 256;
/// Below this `m·k·n` volume a matmul is not worth spawning threads for.
const PAR_THRESHOLD: usize = 1 << 18;

/// Global kernel thread budget, set once per process by the trainer (sized
/// to the cores left over after employee threads are accounted for).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of scoped threads dense kernels may fan out across.
/// Clamped to at least 1. Results are bit-identical for every setting, so
/// this is purely a throughput knob.
pub fn set_kernel_threads(n: usize) {
    KERNEL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current kernel thread budget (≥ 1).
pub fn kernel_threads() -> usize {
    KERNEL_THREADS.load(Ordering::Relaxed).max(1)
}

/// Gate for kernel telemetry. When off (the default) every instrumented
/// kernel pays exactly one relaxed atomic load; when on, [`gemm`] tallies
/// call counts and multiply-add FLOPs into process-wide counters that the
/// trainer scrapes into its telemetry registry.
static KERNEL_TELEMETRY: AtomicBool = AtomicBool::new(false);
/// Number of blocked-GEMM dispatches (includes [`gemm_nt`] / [`gemm_tn`],
/// which route through [`gemm`]).
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
/// Cumulative `2·m·k·n` FLOPs across those dispatches.
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Enables or disables kernel call/FLOP tallying.
pub fn set_kernel_telemetry(on: bool) {
    KERNEL_TELEMETRY.store(on, Ordering::Relaxed);
}

/// Whether kernel call/FLOP tallying is currently enabled.
pub fn kernel_telemetry_enabled() -> bool {
    KERNEL_TELEMETRY.load(Ordering::Relaxed)
}

/// A snapshot of the kernel telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Blocked-GEMM dispatches since the last reset.
    pub gemm_calls: u64,
    /// Cumulative `2·m·k·n` FLOPs across those dispatches.
    pub gemm_flops: u64,
}

/// Reads the kernel telemetry counters.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed),
        gemm_flops: GEMM_FLOPS.load(Ordering::Relaxed),
    }
}

/// Zeroes the kernel telemetry counters (e.g. at the start of a run).
pub fn reset_kernel_counters() {
    GEMM_CALLS.store(0, Ordering::Relaxed);
    GEMM_FLOPS.store(0, Ordering::Relaxed);
}

/// Unblocked reference matmul: `out = A·B` with `A: [m,k]`, `B: [k,n]`,
/// `out: [m,n]`, all row-major. `ikj` loop order, no zero-skip — this is
/// the semantic ground truth the blocked kernel must match bit-for-bit.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "naive gemm lhs length");
    assert_eq!(b.len(), k * n, "naive gemm rhs length");
    assert_eq!(out.len(), m * n, "naive gemm out length");
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Blocked GEMM: `out = A·B` with `A: [m,k]`, `B: [k,n]`, `out: [m,n]`,
/// row-major. Fans output rows across up to `threads` scoped threads when
/// the problem is large enough; bit-identical to [`matmul_naive`] for every
/// thread count.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, threads: usize) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(out.len(), m * n, "gemm out length");
    if KERNEL_TELEMETRY.load(Ordering::Relaxed) {
        GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
        GEMM_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
    }
    out.fill(0.0);
    let threads = threads.max(1).min(m);
    if threads <= 1 || m * n * k < PAR_THRESHOLD {
        gemm_rows(a, b, out, k, n);
        return;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (a_chunk, o_chunk) in a.chunks(rows_per * k).zip(out.chunks_mut(rows_per * n)) {
            s.spawn(move || gemm_rows(a_chunk, b, o_chunk, k, n));
        }
    });
}

/// `out = A·Bᵀ` with `A: [m,k]`, `B: [n,k]`, `out: [m,n]`. `B` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel, so accumulation
/// order matches materializing `Bᵀ` and calling [`matmul_naive`].
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(b.len(), n * k, "gemm_nt rhs length");
    transpose_into(b, n, k, scratch);
    gemm(a, scratch, out, m, k, n, threads);
}

/// `out = Aᵀ·B` with `A: [k,m]`, `B: [k,n]`, `out: [m,n]`. `A` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs length");
    transpose_into(a, k, m, scratch);
    gemm(scratch, b, out, m, k, n, threads);
}

/// Writes the transpose of row-major `src: [rows, cols]` into `dst`
/// (`[cols, rows]`), resizing `dst` but keeping its allocation when large
/// enough.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    assert_eq!(src.len(), rows * cols, "transpose_into length");
    dst.clear();
    dst.resize(rows * cols, 0.0);
    for (i, row) in src.chunks_exact(cols).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * rows + i] = v;
        }
    }
}

/// Splits `data` into per-thread runs of whole `item_len`-element items and
/// applies `f(first_item_index, chunk)` to each run — sequentially when
/// `threads <= 1` or there is a single item, on scoped threads otherwise.
/// Item order within a run is preserved, so any per-item computation is
/// deterministic regardless of the thread count.
///
/// # Panics
///
/// If `data.len() != items * item_len`.
pub fn par_items(
    data: &mut [f32],
    item_len: usize,
    items: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    assert_eq!(data.len(), items * item_len, "par_items length mismatch");
    let threads = threads.max(1).min(items.max(1));
    if threads <= 1 || item_len == 0 {
        f(0, data);
        return;
    }
    let per = items.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, chunk) in data.chunks_mut(per * item_len).enumerate() {
            let f = &f;
            s.spawn(move || f(t * per, chunk));
        }
    });
}

/// Single-threaded blocked kernel over a full row range: `out += 0` is
/// assumed (caller zeroes), `a` holds exactly the rows of `out`.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    let m = out.len() / n;
    // One packed KC×NR B-panel lives on the stack for the whole call.
    let mut panel = [0.0f32; KC * NR];
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            pack_panel(b, n, kb, kc, j, nr, &mut panel);
            let panel = &panel[..kc * NR];
            let mut i = 0;
            while i + MR <= m {
                tile_rows::<MR>(a, out, i, k, n, kb, kc, j, nr, panel);
                i += MR;
            }
            while i < m {
                tile_rows::<1>(a, out, i, k, n, kb, kc, j, nr, panel);
                i += 1;
            }
            j += NR;
        }
        kb += kc;
    }
}

/// Packs the `kc × nr` block of `B` at `(kb, j)` into a contiguous
/// `kc × NR` panel, zero-padding columns beyond `nr`. The pad lanes only
/// ever feed accumulator lanes that are never written back, so `NaN`
/// operands in `A` cannot leak through them.
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
fn pack_panel(
    b: &[f32],
    n: usize,
    kb: usize,
    kc: usize,
    j: usize,
    nr: usize,
    panel: &mut [f32; KC * NR],
) {
    for p in 0..kc {
        let src = &b[(kb + p) * n + j..(kb + p) * n + j + nr];
        let dst = &mut panel[p * NR..p * NR + NR];
        dst[..nr].copy_from_slice(src);
        dst[nr..].fill(0.0);
    }
}

/// The register-tiled micro-kernel: accumulates the `R × nr` output tile at
/// `(i, j)` over the `k`-block `[kb, kb+kc)`. The accumulator tile is
/// loaded from `out` and stored back, so the per-element accumulation chain
/// stays strictly ascending in `k` across blocks (see module docs).
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
#[inline(always)]
fn tile_rows<const R: usize>(
    a: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    kb: usize,
    kc: usize,
    j: usize,
    nr: usize,
    panel: &[f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr[..nr].copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + nr]);
    }
    if R == MR {
        let a0 = &a[i * k + kb..i * k + kb + kc];
        let a1 = &a[(i + 1) * k + kb..(i + 1) * k + kb + kc];
        let a2 = &a[(i + 2) * k + kb..(i + 2) * k + kb + kc];
        let a3 = &a[(i + 3) * k + kb..(i + 3) * k + kb + kc];
        for ((((&x0, &x1), &x2), &x3), bp) in
            a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR))
        {
            let xs = [x0, x1, x2, x3];
            for (accr, xr) in acc.iter_mut().zip(xs) {
                for (av, &bv) in accr.iter_mut().zip(bp) {
                    *av = xr.mul_add(bv, *av);
                }
            }
        }
    } else {
        let a0 = &a[i * k + kb..i * k + kb + kc];
        for (&x0, bp) in a0.iter().zip(panel.chunks_exact(NR)) {
            for (av, &bv) in acc[0].iter_mut().zip(bp) {
                *av = x0.mul_add(bv, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + nr].copy_from_slice(&accr[..nr]);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill.
    fn lcg_fill(seed: u32, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 9) as f32 / (1u32 << 23) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (case, &(m, k, n)) in
            [(1, 1, 1), (3, 5, 7), (17, 19, 23), (4, 600, 9), (33, 2, 65), (40, 40, 40)]
                .iter()
                .enumerate()
        {
            let a = lcg_fill(case as u32, m * k);
            let b = lcg_fill(case as u32 + 100, k * n);
            let mut want = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            for threads in [1usize, 2, 3] {
                let mut got = vec![0.0; m * n];
                gemm(&a, &b, &mut got, m, k, n, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn nt_and_tn_match_materialized_transpose() {
        let (m, k, n) = (7, 11, 5);
        let a = lcg_fill(1, m * k);
        let bt = lcg_fill(2, n * k); // B stored [n, k]
        let at = lcg_fill(3, k * m); // A stored [k, m]
        let b = lcg_fill(4, k * n);

        let mut scratch = Vec::new();
        let mut got = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut got, m, k, n, &mut scratch, 1);
        let mut b_mat = Vec::new();
        transpose_into(&bt, n, k, &mut b_mat);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b_mat, &mut want, m, k, n);
        assert_eq!(got, want);

        gemm_tn(&at, &b, &mut got, m, k, n, &mut scratch, 1);
        let mut a_mat = Vec::new();
        transpose_into(&at, k, m, &mut a_mat);
        matmul_naive(&a_mat, &b, &mut want, m, k, n);
        assert_eq!(got, want);
    }

    #[test]
    fn zero_times_nonfinite_is_nan() {
        // A = [0, 1], B column 0 row 0 = NaN: 0·NaN must poison the output.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 2];
        gemm(&a, &b, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·NaN must propagate, got {}", out[0]);
        let b_inf = [f32::INFINITY, 2.0, 3.0, 4.0];
        gemm(&a, &b_inf, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·∞ must propagate as NaN, got {}", out[0]);
        // The naive reference agrees.
        matmul_naive(&a, &b, &mut out, 1, 2, 2);
        assert!(out[0].is_nan());
    }

    #[test]
    fn empty_dims_are_fine() {
        let mut out = vec![1.0f32; 3];
        gemm(&[], &[], &mut out, 3, 0, 1, 1);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn par_items_partitions_whole_items() {
        let mut data = vec![0.0f32; 6 * 4];
        par_items(&mut data, 4, 6, 3, |first, chunk| {
            for (d, item) in chunk.chunks_mut(4).enumerate() {
                item.fill((first + d) as f32);
            }
        });
        for (i, item) in data.chunks(4).enumerate() {
            assert!(item.iter().all(|&v| v == i as f32), "item {i}: {item:?}");
        }
    }

    #[test]
    fn thread_knob_clamps_to_one() {
        set_kernel_threads(0);
        assert_eq!(kernel_threads(), 1);
        set_kernel_threads(2);
        assert_eq!(kernel_threads(), 2);
        set_kernel_threads(1);
    }

    #[test]
    fn kernel_counters_tally_calls_and_flops() {
        // Counters are process-wide, so this test tolerates concurrent
        // growth from other tests: it checks the *delta* is at least what
        // its own calls contribute.
        let (m, k, n) = (3usize, 4usize, 5usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        set_kernel_telemetry(true);
        assert!(kernel_telemetry_enabled());
        let before = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        gemm(&a, &b, &mut c, m, k, n, 1);
        let after = kernel_counters();
        set_kernel_telemetry(false);
        assert!(after.gemm_calls >= before.gemm_calls + 2);
        assert!(after.gemm_flops >= before.gemm_flops + 2 * 2 * (m * k * n) as u64);
        // With telemetry back off, counters stop moving from this thread.
        let frozen = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(kernel_counters().gemm_calls, frozen.gemm_calls);
    }
}
