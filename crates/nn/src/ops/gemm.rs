//! Blocked, packed, SIMD-tiled GEMM kernels and the kernel thread-pool knob.
//!
//! Every PPO update and curiosity forward-model step bottoms out in dense
//! matrix multiplies — either directly ([`crate::tensor::Tensor::matmul`],
//! the autograd `MatMul` op) or through the im2col convolution lowering
//! ([`crate::ops::conv`]). This module owns those kernels:
//!
//! * [`gemm`] — `C = A·B`. Both operands are packed once into
//!   micro-kernel-friendly layouts (see below), then the product is computed
//!   in L2-sized `KC×NC` column panels by the `MR×NR` register tile in
//!   [`crate::ops::simd`] (AVX2/FMA on x86-64-v3, bit-identical scalar
//!   fallback elsewhere). Large problems fan out across the persistent
//!   kernel pool ([`crate::ops::pool`]) on a 2-D grid of row-chunk ×
//!   column-panel cells;
//! * [`gemm_scoped`] — the retired per-call scoped-spawn dispatcher, kept
//!   as a differential baseline for benches and equivalence tests;
//! * [`gemm_nt`] / [`gemm_tn`] — `A·Bᵀ` and `Aᵀ·B` via a transpose pack
//!   into a caller-provided scratch buffer (no per-call allocation when the
//!   caller reuses the scratch across steps);
//! * [`matmul_naive`] — the unblocked reference kernel, kept for
//!   correctness tests and as the benchmark baseline.
//!
//! ## Packed layouts
//!
//! Packing happens once per [`gemm`] call, into arena-recycled buffers
//! ([`crate::arena`]), and the packed images are what crosses the pool
//! boundary (read-only, behind `Arc`) — the old dispatcher's per-chunk A
//! copies and remainder bookkeeping are gone:
//!
//! * **A** (`m×k` row-major) becomes `k`-block-major micro-panels of `MR`
//!   interleaved rows: within block `kb` (height `kc`), the panel for rows
//!   `[i, i+r)` stores `a[i+rr][kb+p]` at `m·kb + kc·i + p·r + rr`. The
//!   micro-kernel reads its `r` row values for step `p` contiguously.
//! * **B** (`k×n` row-major) becomes `k`-block-major `NR`-wide column
//!   panels, zero-padded to full `NR` width: within block `kb`, the panel
//!   for columns `[j, j+nr)` stores `b[kb+p][j+l]` at
//!   `n_pad·kb + kc·j + p·NR + l` with `n_pad = n` rounded up to `NR`.
//!   Pad lanes only feed accumulator lanes that are never written back.
//!
//! ## NaN semantics
//!
//! None of these kernels skip zero operands: `0 · NaN` and `0 · ∞`
//! contribute `NaN` to the accumulator exactly as IEEE 754 demands. The
//! seed kernel's `if a == 0.0 { continue }` "sparsity" shortcut silently
//! laundered non-finite values into zeros, defeating the NaN-quarantine
//! machinery in the training chief; the regression tests in
//! `crates/nn/tests/gemm_kernels.rs` and `gemm_simd_nan.rs` pin the
//! corrected behavior through both the scalar and SIMD tile paths.
//!
//! ## Determinism
//!
//! Each output element is accumulated strictly in ascending-`k` order by a
//! single accumulation chain: the micro-kernel starts its accumulator tile
//! at literal zero for the first `k`-block (so callers never pre-zero `C`
//! — that memset was ~3% of a 256³ multiply) and *reloads* it from `C` at
//! every later `k`-block boundary instead of summing per-block partials, so
//! blocking does not reassociate the floating-point sum. Lane `j` of the
//! AVX2 FMA tile computes exactly the scalar `mul_add` chain (fused
//! multiply-add is deterministic per lane), so SIMD does not reassociate it
//! either. Parallel dispatch partitions the *output* into disjoint
//! row-chunk × column-panel cells, each computed by exactly one thread as
//! the same chain. Consequently results are bit-identical to
//! [`matmul_naive`] for every thread count and for every kernel flavor —
//! checkpoint-resume determinism survives the fast path.

use crate::arena;
use crate::ops::pool;
use crate::ops::simd;
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use simd::{MR, NR};

/// `k`-block height: one packed `KC × NR` B-panel is 16 KiB, comfortably
/// inside L1 while the packed A micro-panels stream through.
const KC: usize = 256;
/// Column-panel width for cache blocking and parallel partitioning: one
/// `KC × NC` packed B block is 128 KiB — about half an L2 slice — so a
/// worker chewing through its panel keeps B resident while A streams.
/// A multiple of `NR`, so panel boundaries always align with packed B
/// micro-panels.
const NC: usize = 128;
/// Row-block height inside a panel: bounds the `C` working set per
/// (`k`-block, row-block) sweep. A multiple of `MR`, so block boundaries
/// always align with packed A micro-panels.
const MC: usize = 128;
/// Below this `m·k·n` volume a matmul runs sequentially: parallel dispatch
/// (job boxing, packed-operand sharing, result hand-back) is a net loss for
/// small shapes. Re-measured for the SIMD + shared-packing dispatcher on
/// the bench host: end-to-end dispatch overhead is ~5 µs per pooled call
/// (128³ t2 vs t1 delta), while the SIMD kernel finishes 64³ (262,144) in
/// ~9 µs sequentially — same order as the dispatch itself, so 64³-class
/// shapes must never fan out. Shapes from 128³ (2.1 M, ~73 µs sequential)
/// up amortize the overhead to a few percent, so the gate stays at
/// 2 MiFLOP-volume even though the SIMD kernel moved the single-thread
/// numbers. The old scoped-spawn dispatcher put this at `1 << 18`, which
/// let 64³ fan out at a 15× loss (46.5 → 3.0 GFLOP/s in the committed
/// bench trajectory).
pub const PAR_THRESHOLD: usize = 1 << 21;

/// Global kernel thread budget, set once per process by the trainer (sized
/// to the cores left over after employee threads are accounted for).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of pool threads dense kernels may fan out across.
/// Clamped to at least 1. Results are bit-identical for every setting, so
/// this is purely a throughput knob.
pub fn set_kernel_threads(n: usize) {
    // ordering: standalone tuning knob; readers act on whatever value they
    // see and no other memory is published through it.
    KERNEL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current kernel thread budget (≥ 1).
pub fn kernel_threads() -> usize {
    KERNEL_THREADS.load(Ordering::Relaxed).max(1) // ordering: tuning knob (see setter)
}

/// When set, [`gemm`] routes every tile through the scalar fallback even on
/// SIMD-capable builds. The two paths are bit-identical by construction
/// (see [`crate::ops::simd`]); this knob exists so equivalence tests and
/// the dispatch-threshold calibration can run both flavors on one host.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Forces (or un-forces) the scalar micro-kernel on SIMD-capable builds.
/// Purely a test/calibration knob — results are bit-identical either way.
pub fn set_force_scalar(on: bool) {
    // ordering: standalone test knob; a dispatch racing the toggle picks
    // either kernel flavor, which agree bitwise.
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Whether the scalar micro-kernel is currently forced.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed) // ordering: test knob (see setter)
}

/// Whether this build carries the AVX2/FMA micro-kernel at all (false on
/// non-x86 targets and under Miri/loom, where the scalar fallback runs).
pub fn simd_kernel_compiled() -> bool {
    simd::compiled()
}

/// Whether the next [`gemm`] dispatch will use the SIMD tile: compiled in
/// and not overridden by [`set_force_scalar`]. Benchmarks record this next
/// to the detected target features.
pub fn simd_kernel_active() -> bool {
    simd::compiled() && !force_scalar()
}

/// Gate for kernel telemetry. When off (the default) every instrumented
/// kernel pays exactly one relaxed atomic load; when on, [`gemm`] tallies
/// call counts and multiply-add FLOPs into process-wide counters that the
/// trainer scrapes into its telemetry registry.
static KERNEL_TELEMETRY: AtomicBool = AtomicBool::new(false);
/// Number of blocked-GEMM dispatches (includes [`gemm_nt`] / [`gemm_tn`],
/// which route through [`gemm`]).
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
/// Cumulative `2·m·k·n` FLOPs across those dispatches.
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Enables or disables kernel call/FLOP tallying.
pub fn set_kernel_telemetry(on: bool) {
    // ordering: standalone on/off flag; a dispatch racing the toggle may
    // tally or not, both acceptable — nothing else is published through it.
    KERNEL_TELEMETRY.store(on, Ordering::Relaxed);
}

/// Whether kernel call/FLOP tallying is currently enabled.
pub fn kernel_telemetry_enabled() -> bool {
    KERNEL_TELEMETRY.load(Ordering::Relaxed) // ordering: on/off flag (see setter)
}

/// A snapshot of the kernel telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Blocked-GEMM dispatches since the last reset.
    pub gemm_calls: u64,
    /// Cumulative `2·m·k·n` FLOPs across those dispatches.
    pub gemm_flops: u64,
}

/// Reads the kernel telemetry counters.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed), // ordering: telemetry counter
        gemm_flops: GEMM_FLOPS.load(Ordering::Relaxed), // ordering: telemetry counter
    }
}

/// Zeroes the kernel telemetry counters (e.g. at the start of a run).
pub fn reset_kernel_counters() {
    GEMM_CALLS.store(0, Ordering::Relaxed); // ordering: telemetry counter
    GEMM_FLOPS.store(0, Ordering::Relaxed); // ordering: telemetry counter
}

/// Unblocked reference matmul: `out = A·B` with `A: [m,k]`, `B: [k,n]`,
/// `out: [m,n]`, all row-major. `ikj` loop order, no zero-skip — this is
/// the semantic ground truth the blocked kernel must match bit-for-bit.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "naive gemm lhs length");
    assert_eq!(b.len(), k * n, "naive gemm rhs length");
    assert_eq!(out.len(), m * n, "naive gemm out length");
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Blocked GEMM: `out = A·B` with `A: [m,k]`, `B: [k,n]`, `out: [m,n]`,
/// row-major. Packs both operands once, then fans row-chunk × column-panel
/// cells across up to `threads` persistent pool workers when the problem is
/// large enough; bit-identical to [`matmul_naive`] for every thread count.
///
/// # Panics
///
/// If a slice length disagrees with its shape, or if a pool worker dies
/// while holding one of this call's cells (a job panic — mirrors the panic
/// propagation of the old scoped-spawn dispatcher).
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, threads: usize) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(out.len(), m * n, "gemm out length");
    // ordering: telemetry gate + monotonic counters; dispatches racing a
    // toggle may miss a tally, which telemetry tolerates.
    if KERNEL_TELEMETRY.load(Ordering::Relaxed) {
        GEMM_CALLS.fetch_add(1, Ordering::Relaxed); // ordering: telemetry counter
                                                    // ordering: telemetry counter (see the gate comment above).
        GEMM_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
    }
    let threads = threads.max(1);
    if threads <= 1 || m * n * k < PAR_THRESHOLD {
        gemm_rows(a, b, out, k, n);
        return;
    }
    gemm_pooled(a, b, out, m, k, n, threads);
}

/// The pooled dispatcher, bitwise identical to [`matmul_naive`] regardless
/// of which thread computes what.
///
/// A and B are packed once on the dispatching thread and shared with the
/// workers read-only behind `Arc` — packing replaces the old dispatcher's
/// per-chunk A copies and whole-B clone with work the kernel needs anyway,
/// and read-only sharing means workers never bounce dirty cache lines. The
/// output is partitioned into a 2-D grid of (`MR`-aligned row chunk) ×
/// (`NC` column panel) cells — disjoint, so no two threads ever write the
/// same `C` line. The caller keeps cell (0,0), computing it in place on the
/// original `out` borrow; every other cell becomes a pool job that fills an
/// arena-recycled dense panel and hands it back over a per-call channel for
/// the dispatcher to copy into `out` (jobs must be `'static`; the workspace
/// denies `unsafe`, so `out` borrows cannot cross the pool boundary). While
/// waiting, the caller drains queued jobs inline ([`pool::try_run_one`]),
/// so the call completes even on a pool with zero workers.
fn gemm_pooled(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    pool::ensure_workers(threads - 1);
    let use_simd = simd_kernel_active();

    // Zeroed: `pack_b` relies on pad lanes reading as zero, and `pack_a`
    // overwrites every element anyway.
    let mut ap = arena::take_f32_zeroed(m * k);
    pack_a(a, m, k, &mut ap);
    let mut bp = arena::take_f32_zeroed(k * n.div_ceil(NR) * NR);
    pack_b(b, k, n, &mut bp);
    let ap = Arc::new(ap);
    let bp = Arc::new(bp);

    // Cell grain: aim for ~2 cells per thread so the caller's helping loop
    // can absorb whatever the OS scheduler does not hand to the workers.
    // Row chunks are multiples of MR so every cell starts on a packed A
    // micro-panel boundary; column panels are NC-wide (a multiple of NR) so
    // every cell starts on a packed B panel boundary. Cell shape is purely
    // a load-balancing knob — each output element is one ascending-`k`
    // chain no matter which cell contains it.
    let col_panels = n.div_ceil(NC);
    let row_chunks = (threads * 2).div_ceil(col_panels).max(1);
    let rows_per = m.div_ceil(row_chunks).next_multiple_of(MR);

    let (tx, rx) = mpsc::channel::<(usize, usize, usize, usize, Vec<f32>)>();
    let mut jobs: Vec<pool::Job> = Vec::new();
    let mut i0 = 0;
    while i0 < m {
        let rows = rows_per.min(m - i0);
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            if i0 == 0 && j0 == 0 {
                // The caller's cell, computed in place below.
                j0 += NC;
                continue;
            }
            // Zeroed only to materialize the length — the kernel overwrites
            // every element (safe Rust has no uninitialized-len Vec).
            let mut c_cell = arena::take_f32_zeroed(rows * nc);
            let ap = Arc::clone(&ap);
            let bp = Arc::clone(&bp);
            let tx = tx.clone();
            jobs.push(Box::new(move || {
                gemm_packed(&ap, &bp, &mut c_cell, nc, m, k, n, i0, rows, j0, nc, use_simd);
                let _ = tx.send((i0, j0, rows, nc, c_cell));
            }));
            j0 += NC;
        }
        i0 += rows;
    }
    drop(tx);
    let mut pending = jobs.len();
    pool::submit(jobs);

    gemm_packed(&ap, &bp, out, n, m, k, n, 0, rows_per.min(m), 0, NC.min(n), use_simd);

    let mut spins = 0u32;
    while pending > 0 {
        match rx.try_recv() {
            Ok((i0, j0, rows, nc, c_cell)) => {
                for rr in 0..rows {
                    out[(i0 + rr) * n + j0..(i0 + rr) * n + j0 + nc]
                        .copy_from_slice(&c_cell[rr * nc..rr * nc + nc]);
                }
                arena::put_f32(c_cell);
                pending -= 1;
            }
            Err(mpsc::TryRecvError::Empty) => {
                if pool::try_run_one() {
                    continue;
                }
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    // Let a worker holding our last cell onto the core.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("kernel pool job panicked mid-GEMM ({pending} cell(s) lost)");
            }
        }
    }
    if let Ok(buf) = Arc::try_unwrap(ap) {
        arena::put_f32(buf);
    }
    if let Ok(buf) = Arc::try_unwrap(bp) {
        arena::put_f32(buf);
    }
}

/// The retired scoped-spawn GEMM dispatcher: spawns fresh threads per call
/// exactly as the PR 3 kernel did (no volume threshold — callers choose the
/// fan-out, and each scoped worker packs its own operand copies). Kept
/// purely as a differential baseline: the pooled-vs-scoped bench record
/// quantifies what the pool + shared packing save, and the equivalence
/// tests pin pooled output bitwise against this path.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn gemm_scoped(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(out.len(), m * n, "gemm out length");
    let threads = threads.max(1).min(m.max(1));
    if threads <= 1 {
        gemm_rows(a, b, out, k, n);
        return;
    }
    pool::run_scoped_rows(a, b, out, k, n, m.div_ceil(threads), gemm_rows);
}

/// `out = A·Bᵀ` with `A: [m,k]`, `B: [n,k]`, `out: [m,n]`. `B` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel, so accumulation
/// order matches materializing `Bᵀ` and calling [`matmul_naive`].
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(b.len(), n * k, "gemm_nt rhs length");
    transpose_into(b, n, k, scratch);
    gemm(a, scratch, out, m, k, n, threads);
}

/// `out = Aᵀ·B` with `A: [k,m]`, `B: [k,n]`, `out: [m,n]`. `A` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs length");
    transpose_into(a, k, m, scratch);
    gemm(scratch, b, out, m, k, n, threads);
}

/// Writes the transpose of row-major `src: [rows, cols]` into `dst`
/// (`[cols, rows]`), resizing `dst` but keeping its allocation when large
/// enough.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    assert_eq!(src.len(), rows * cols, "transpose_into length");
    dst.clear();
    dst.resize(rows * cols, 0.0);
    for (i, row) in src.chunks_exact(cols).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * rows + i] = v;
        }
    }
}

/// Splits `data` into runs of whole `item_len`-element items and applies
/// `f(first_item_index, chunk)` to each run in ascending order. The
/// `threads` parameter only shapes the chunk boundaries handed to `f`;
/// execution is sequential. The im2col/col2im fills that route through here
/// are memory-bandwidth-bound, and per-call scoped spawns cost more than
/// they saved (see the pool module docs) while dispatching them to the
/// persistent pool would require copying the inputs — roughly the price of
/// the fill itself. Item order is preserved, so per-item computation is
/// deterministic for every `threads` value.
///
/// # Panics
///
/// If `data.len() != items * item_len`.
pub fn par_items(
    data: &mut [f32],
    item_len: usize,
    items: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    assert_eq!(data.len(), items * item_len, "par_items length mismatch");
    let threads = threads.max(1).min(items.max(1));
    if threads <= 1 || item_len == 0 {
        f(0, data);
        return;
    }
    let per = items.div_ceil(threads);
    for (t, chunk) in data.chunks_mut(per * item_len).enumerate() {
        f(t * per, chunk);
    }
}

/// Packs row-major `a: [m,k]` into the `k`-block-major `MR`-interleaved
/// micro-panel layout (see module docs). `dst` must hold exactly `m·k`
/// elements; every one is overwritten. Pure reshuffle — every source
/// element appears exactly once, so no rounding or NaN behavior is
/// introduced. The full-height case is a bounds-check-free 4-row
/// interleave that LLVM vectorizes; packing cost showed up at 64³-class
/// shapes when this was a per-element `push` loop.
fn pack_a(a: &[f32], m: usize, k: usize, dst: &mut [f32]) {
    debug_assert_eq!(dst.len(), m * k);
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let mut i = 0;
        while i < m {
            let r = MR.min(m - i);
            let base = m * kb + kc * i;
            let dpan = &mut dst[base..base + kc * r];
            if r == MR {
                let r0 = &a[i * k + kb..i * k + kb + kc];
                let r1 = &a[(i + 1) * k + kb..(i + 1) * k + kb + kc];
                let r2 = &a[(i + 2) * k + kb..(i + 2) * k + kb + kc];
                let r3 = &a[(i + 3) * k + kb..(i + 3) * k + kb + kc];
                for ((((d, &x0), &x1), &x2), &x3) in
                    dpan.chunks_exact_mut(MR).zip(r0).zip(r1).zip(r2).zip(r3)
                {
                    d[0] = x0;
                    d[1] = x1;
                    d[2] = x2;
                    d[3] = x3;
                }
            } else {
                for (p, d) in dpan.chunks_exact_mut(r).enumerate() {
                    for (rr, v) in d.iter_mut().enumerate() {
                        *v = a[(i + rr) * k + kb + p];
                    }
                }
            }
            i += r;
        }
        kb += kc;
    }
}

/// Packs row-major `b: [k,n]` into the `k`-block-major `NR`-wide
/// column-panel layout (see module docs). `dst` must hold exactly
/// `k · n_pad` elements (`n_pad` = `n` rounded up to `NR`) **and arrive
/// zeroed** — pad lanes beyond `nr` are left untouched and must read as
/// zero. The dispatchers take `dst` from [`arena::take_f32_zeroed`], which
/// guarantees this. Pad lanes only ever feed accumulator lanes that are
/// never written back, so `NaN` operands in `A` cannot leak through them.
fn pack_b(b: &[f32], k: usize, n: usize, dst: &mut [f32]) {
    let n_pad = n.div_ceil(NR) * NR;
    debug_assert_eq!(dst.len(), k * n_pad);
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            let base = n_pad * kb + kc * j;
            let dpan = &mut dst[base..base + kc * NR];
            for (p, d) in dpan.chunks_exact_mut(NR).enumerate() {
                d[..nr].copy_from_slice(&b[(kb + p) * n + j..(kb + p) * n + j + nr]);
            }
            j += NR;
        }
        kb += kc;
    }
}

/// Computes the output cell `rows × nc` at `(i0, j0)` of the full `m×k×n`
/// product from packed operands `ap` / `bp` (layouts in the module docs).
/// The cell's top-left element is `out[0]` and rows are `ldc` apart, so the
/// same kernel serves in-place computation on the full `C` (`ldc = n`) and
/// dense per-job panels (`ldc = nc`).
///
/// `i0` must be a multiple of `MR` and `j0` a multiple of `NR` (cell
/// boundaries align with packed micro-panels); `i0 + rows` must either be a
/// multiple of `MR` or equal `m`, which the dispatchers guarantee by
/// construction.
///
/// Loop order is `k`-block → row-block (`MC`) → column (`NR`) → row tile:
/// every tile sees its `k`-blocks in ascending order with a reload in
/// between, keeping each output element a single ascending-`k` chain.
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
fn gemm_packed(
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    m: usize,
    k: usize,
    n: usize,
    i0: usize,
    rows: usize,
    j0: usize,
    nc: usize,
    use_simd: bool,
) {
    debug_assert!(i0.is_multiple_of(MR) && j0.is_multiple_of(NR));
    debug_assert!(i0 + rows <= m && j0 + nc <= n);
    let n_pad = n.div_ceil(NR) * NR;
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let first = kb == 0;
        let mut ic = i0;
        while ic < i0 + rows {
            let mc = MC.min(i0 + rows - ic);
            let mut j = j0;
            while j < j0 + nc {
                let nr = NR.min(j0 + nc - j);
                let pb = n_pad * kb + kc * j;
                let bpanel = &bp[pb..pb + kc * NR];
                let mut i = ic;
                while i < ic + mc {
                    let r = MR.min(ic + mc - i);
                    let pa = m * kb + kc * i;
                    let apanel = &ap[pa..pa + kc * r];
                    let ob = (i - i0) * ldc + (j - j0);
                    simd::tile(r, apanel, bpanel, &mut out[ob..], ldc, kc, nr, first, use_simd);
                    i += r;
                }
                j += NR;
            }
            ic += mc;
        }
        kb += kc;
    }
}

/// Single-threaded packed GEMM over a full row range: `a` holds exactly the
/// rows of `out`. Packs both operands into thread-local arena scratch, then
/// sweeps L2-sized `NC` column panels. Prior `out` contents are ignored —
/// the first `k`-block pass overwrites every element before any later block
/// reloads it, so callers need not (and do not) zero `out` first. This is
/// also the per-chunk kernel of the retired scoped baseline, which is why
/// it keeps the `fn(a, b, out, k, n)` shape [`pool::run_scoped_rows`]
/// expects.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    if k == 0 {
        // Empty sum: the product is all zeros and the tile loop below would
        // never write `out`.
        out.fill(0.0);
        return;
    }
    let m = out.len() / n;
    if m == 0 {
        return;
    }
    let use_simd = simd_kernel_active();
    // Zeroed: `pack_b` relies on pad lanes reading as zero, and `pack_a`
    // overwrites every element anyway.
    let mut ap = arena::take_f32_zeroed(m * k);
    pack_a(a, m, k, &mut ap);
    let mut bp = arena::take_f32_zeroed(k * n.div_ceil(NR) * NR);
    pack_b(b, k, n, &mut bp);
    let mut j0 = 0;
    while j0 < n {
        let nc = NC.min(n - j0);
        // `gemm_packed` writes cell-relative: its `out[0]` is the cell's
        // top-left element, so each panel starts at column `j0`.
        gemm_packed(&ap, &bp, &mut out[j0..], n, m, k, n, 0, m, j0, nc, use_simd);
        j0 += NC;
    }
    arena::put_f32(ap);
    arena::put_f32(bp);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill.
    fn lcg_fill(seed: u32, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 9) as f32 / (1u32 << 23) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (case, &(m, k, n)) in
            [(1, 1, 1), (3, 5, 7), (17, 19, 23), (4, 600, 9), (33, 2, 65), (40, 40, 40)]
                .iter()
                .enumerate()
        {
            let a = lcg_fill(case as u32, m * k);
            let b = lcg_fill(case as u32 + 100, k * n);
            let mut want = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            for threads in [1usize, 2, 3] {
                let mut got = vec![0.0; m * n];
                gemm(&a, &b, &mut got, m, k, n, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    // 40 M interpreted mul_adds plus persistent pool threads: far beyond
    // Miri's budget. The packing offsets and tile dispatch it shares with
    // the sequential path stay Miri-covered via the other tests here.
    #[cfg_attr(miri, ignore)]
    fn pooled_dispatch_matches_naive_bitwise_above_threshold() {
        // 160³ volume (4.1 M) clears PAR_THRESHOLD, so threads ≥ 2 route
        // through the persistent pool; every thread count must agree with
        // the reference bit-for-bit, and with the scoped baseline.
        let (m, k, n) = (160usize, 160, 160);
        assert!(m * k * n >= PAR_THRESHOLD, "shape must exercise the pooled path");
        let a = lcg_fill(7, m * k);
        let b = lcg_fill(8, k * n);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut got = vec![0.0; m * n];
            gemm(&a, &b, &mut got, m, k, n, threads);
            assert_eq!(got, want, "pooled threads={threads}");
            let mut scoped = vec![0.0; m * n];
            gemm_scoped(&a, &b, &mut scoped, m, k, n, threads);
            assert_eq!(scoped, want, "scoped threads={threads}");
        }
    }

    #[test]
    fn packed_layouts_roundtrip_every_element() {
        // Awkward shapes: k crossing a KC boundary, ragged MR/NR tails.
        let (m, k, n) = (7usize, 300usize, 21usize);
        let a = lcg_fill(11, m * k);
        let b = lcg_fill(12, k * n);
        let mut ap = vec![0.0f32; m * k];
        pack_a(&a, m, k, &mut ap);
        let n_pad = n.div_ceil(NR) * NR;
        let mut bp = vec![0.0f32; k * n_pad];
        pack_b(&b, k, n, &mut bp);
        // Check the documented offset formulas directly.
        let mut kb = 0;
        while kb < k {
            let kc = KC.min(k - kb);
            for p in 0..kc {
                let mut i = 0;
                while i < m {
                    let r = MR.min(m - i);
                    for rr in 0..r {
                        assert_eq!(
                            ap[m * kb + kc * i + p * r + rr].to_bits(),
                            a[(i + rr) * k + kb + p].to_bits(),
                            "A pack mismatch at kb={kb} p={p} i={i} rr={rr}"
                        );
                    }
                    i += r;
                }
                let mut j = 0;
                while j < n {
                    let nr = NR.min(n - j);
                    for l in 0..NR {
                        let got = bp[n_pad * kb + kc * j + p * NR + l];
                        let want = if l < nr { b[(kb + p) * n + j + l] } else { 0.0 };
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "B pack mismatch at kb={kb} p={p} j={j} l={l}"
                        );
                    }
                    j += NR;
                }
            }
            kb += kc;
        }
    }

    #[test]
    fn forced_scalar_matches_simd_bitwise() {
        let (m, k, n) = (23usize, 37, 41);
        let a = lcg_fill(21, m * k);
        let b = lcg_fill(22, k * n);
        let mut fast = vec![0.0; m * n];
        gemm(&a, &b, &mut fast, m, k, n, 1);
        set_force_scalar(true);
        assert!(!simd_kernel_active());
        let mut slow = vec![0.0; m * n];
        gemm(&a, &b, &mut slow, m, k, n, 1);
        set_force_scalar(false);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fast), bits(&slow));
    }

    #[test]
    fn nt_and_tn_match_materialized_transpose() {
        let (m, k, n) = (7, 11, 5);
        let a = lcg_fill(1, m * k);
        let bt = lcg_fill(2, n * k); // B stored [n, k]
        let at = lcg_fill(3, k * m); // A stored [k, m]
        let b = lcg_fill(4, k * n);

        let mut scratch = Vec::new();
        let mut got = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut got, m, k, n, &mut scratch, 1);
        let mut b_mat = Vec::new();
        transpose_into(&bt, n, k, &mut b_mat);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b_mat, &mut want, m, k, n);
        assert_eq!(got, want);

        gemm_tn(&at, &b, &mut got, m, k, n, &mut scratch, 1);
        let mut a_mat = Vec::new();
        transpose_into(&at, k, m, &mut a_mat);
        matmul_naive(&a_mat, &b, &mut want, m, k, n);
        assert_eq!(got, want);
    }

    #[test]
    fn zero_times_nonfinite_is_nan() {
        // A = [0, 1], B column 0 row 0 = NaN: 0·NaN must poison the output.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 2];
        gemm(&a, &b, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·NaN must propagate, got {}", out[0]);
        let b_inf = [f32::INFINITY, 2.0, 3.0, 4.0];
        gemm(&a, &b_inf, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·∞ must propagate as NaN, got {}", out[0]);
        // The naive reference agrees.
        matmul_naive(&a, &b, &mut out, 1, 2, 2);
        assert!(out[0].is_nan());
    }

    #[test]
    fn empty_dims_are_fine() {
        let mut out = vec![1.0f32; 3];
        gemm(&[], &[], &mut out, 3, 0, 1, 1);
        assert_eq!(out, vec![0.0; 3]);
        let mut empty: Vec<f32> = Vec::new();
        gemm(&[], &[1.0, 2.0], &mut empty, 0, 1, 2, 1);
        gemm(&[1.0], &[], &mut empty, 1, 1, 0, 1);
    }

    #[test]
    fn par_items_partitions_whole_items() {
        let mut data = vec![0.0f32; 6 * 4];
        par_items(&mut data, 4, 6, 3, |first, chunk| {
            for (d, item) in chunk.chunks_mut(4).enumerate() {
                item.fill((first + d) as f32);
            }
        });
        for (i, item) in data.chunks(4).enumerate() {
            assert!(item.iter().all(|&v| v == i as f32), "item {i}: {item:?}");
        }
    }

    #[test]
    fn thread_knob_clamps_to_one() {
        set_kernel_threads(0);
        assert_eq!(kernel_threads(), 1);
        set_kernel_threads(2);
        assert_eq!(kernel_threads(), 2);
        set_kernel_threads(1);
    }

    #[test]
    fn kernel_counters_tally_calls_and_flops() {
        // Counters are process-wide, so this test tolerates concurrent
        // growth from other tests: it checks the *delta* is at least what
        // its own calls contribute.
        let (m, k, n) = (3usize, 4usize, 5usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        set_kernel_telemetry(true);
        assert!(kernel_telemetry_enabled());
        let before = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        gemm(&a, &b, &mut c, m, k, n, 1);
        let after = kernel_counters();
        set_kernel_telemetry(false);
        assert!(after.gemm_calls >= before.gemm_calls + 2);
        assert!(after.gemm_flops >= before.gemm_flops + 2 * 2 * (m * k * n) as u64);
        // With telemetry back off, counters stop moving from this thread.
        let frozen = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(kernel_counters().gemm_calls, frozen.gemm_calls);
    }
}
