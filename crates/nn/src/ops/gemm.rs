//! Blocked, register-tiled GEMM kernels and the kernel thread-pool knob.
//!
//! Every PPO update and curiosity forward-model step bottoms out in dense
//! matrix multiplies — either directly ([`crate::tensor::Tensor::matmul`],
//! the autograd `MatMul` op) or through the im2col convolution lowering
//! ([`crate::ops::conv`]). This module owns those kernels:
//!
//! * [`gemm`] — `C = A·B`, cache-blocked over `k` and `n`, register-tiled
//!   `MR×NR` micro-kernel, optionally row-parallel across the persistent
//!   kernel pool ([`crate::ops::pool`]);
//! * [`gemm_scoped`] — the retired per-call scoped-spawn dispatcher, kept
//!   as a differential baseline for benches and equivalence tests;
//! * [`gemm_nt`] / [`gemm_tn`] — `A·Bᵀ` and `Aᵀ·B` via a transpose pack
//!   into a caller-provided scratch buffer (no per-call allocation when the
//!   caller reuses the scratch across steps);
//! * [`matmul_naive`] — the unblocked reference kernel, kept for
//!   correctness tests and as the benchmark baseline.
//!
//! ## NaN semantics
//!
//! None of these kernels skip zero operands: `0 · NaN` and `0 · ∞`
//! contribute `NaN` to the accumulator exactly as IEEE 754 demands. The
//! seed kernel's `if a == 0.0 { continue }` "sparsity" shortcut silently
//! laundered non-finite values into zeros, defeating the NaN-quarantine
//! machinery in the training chief; the regression tests in
//! `crates/nn/tests/gemm_kernels.rs` pin the corrected behavior.
//!
//! ## Determinism
//!
//! Each output element is accumulated strictly in ascending-`k` order by a
//! single accumulation chain: the micro-kernel starts its accumulator tile
//! at literal zero for the first `k`-block (so callers never pre-zero `C`
//! — that memset was ~3% of a 256³ multiply) and *reloads* it from `C` at
//! every later `k`-block boundary instead of summing per-block partials, so
//! blocking does not reassociate the floating-point sum. Row
//! parallelism partitions complete output rows across threads, so every
//! element is still computed by exactly one thread in the same order.
//! Consequently results are bit-identical to [`matmul_naive`] for every
//! thread count — checkpoint-resume determinism survives the fast path.
//! Both parallel dispatchers partition into whole-row chunks, and each
//! row's accumulation chain is self-contained, so pooled, scoped and
//! sequential execution agree bit-for-bit no matter how many rows land in
//! a chunk or which thread computes it.

use crate::arena;
use crate::ops::pool;
use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Rows per register tile of the micro-kernel.
const MR: usize = 4;
/// Columns per register tile of the micro-kernel: two AVX2 vectors per row,
/// giving the 8 independent FMA chains needed to hide FMA latency.
const NR: usize = 16;
/// `k`-block height: one packed `KC × NR` B-panel is 16 KiB, comfortably
/// inside L1 while the A rows stream through.
const KC: usize = 256;
/// Below this `m·k·n` volume a matmul runs sequentially: parallel dispatch
/// (job boxing, input copies, result hand-back) is a net loss for small
/// shapes. Calibrated against the pooled dispatcher on the bench host —
/// 64³ (262,144; ~12 µs sequential) still loses to dispatch overhead and
/// must never fan out, while shapes around 128³ (2.1 M) are the measured
/// break-even — so the gate sits at 2 MiFLOP-volume. The old scoped-spawn
/// dispatcher put this at `1 << 18`, which let 64³ fan out at a 15× loss
/// (46.5 → 3.0 GFLOP/s in the committed bench trajectory).
pub const PAR_THRESHOLD: usize = 1 << 21;

/// Global kernel thread budget, set once per process by the trainer (sized
/// to the cores left over after employee threads are accounted for).
static KERNEL_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of scoped threads dense kernels may fan out across.
/// Clamped to at least 1. Results are bit-identical for every setting, so
/// this is purely a throughput knob.
pub fn set_kernel_threads(n: usize) {
    // ordering: standalone tuning knob; readers act on whatever value they
    // see and no other memory is published through it.
    KERNEL_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current kernel thread budget (≥ 1).
pub fn kernel_threads() -> usize {
    KERNEL_THREADS.load(Ordering::Relaxed).max(1) // ordering: tuning knob (see setter)
}

/// Gate for kernel telemetry. When off (the default) every instrumented
/// kernel pays exactly one relaxed atomic load; when on, [`gemm`] tallies
/// call counts and multiply-add FLOPs into process-wide counters that the
/// trainer scrapes into its telemetry registry.
static KERNEL_TELEMETRY: AtomicBool = AtomicBool::new(false);
/// Number of blocked-GEMM dispatches (includes [`gemm_nt`] / [`gemm_tn`],
/// which route through [`gemm`]).
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);
/// Cumulative `2·m·k·n` FLOPs across those dispatches.
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Enables or disables kernel call/FLOP tallying.
pub fn set_kernel_telemetry(on: bool) {
    // ordering: standalone on/off flag; a dispatch racing the toggle may
    // tally or not, both acceptable — nothing else is published through it.
    KERNEL_TELEMETRY.store(on, Ordering::Relaxed);
}

/// Whether kernel call/FLOP tallying is currently enabled.
pub fn kernel_telemetry_enabled() -> bool {
    KERNEL_TELEMETRY.load(Ordering::Relaxed) // ordering: on/off flag (see setter)
}

/// A snapshot of the kernel telemetry counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Blocked-GEMM dispatches since the last reset.
    pub gemm_calls: u64,
    /// Cumulative `2·m·k·n` FLOPs across those dispatches.
    pub gemm_flops: u64,
}

/// Reads the kernel telemetry counters.
pub fn kernel_counters() -> KernelCounters {
    KernelCounters {
        gemm_calls: GEMM_CALLS.load(Ordering::Relaxed), // ordering: telemetry counter
        gemm_flops: GEMM_FLOPS.load(Ordering::Relaxed), // ordering: telemetry counter
    }
}

/// Zeroes the kernel telemetry counters (e.g. at the start of a run).
pub fn reset_kernel_counters() {
    GEMM_CALLS.store(0, Ordering::Relaxed); // ordering: telemetry counter
    GEMM_FLOPS.store(0, Ordering::Relaxed); // ordering: telemetry counter
}

/// Unblocked reference matmul: `out = A·B` with `A: [m,k]`, `B: [k,n]`,
/// `out: [m,n]`, all row-major. `ikj` loop order, no zero-skip — this is
/// the semantic ground truth the blocked kernel must match bit-for-bit.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "naive gemm lhs length");
    assert_eq!(b.len(), k * n, "naive gemm rhs length");
    assert_eq!(out.len(), m * n, "naive gemm out length");
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o = av.mul_add(bv, *o);
            }
        }
    }
}

/// Blocked GEMM: `out = A·B` with `A: [m,k]`, `B: [k,n]`, `out: [m,n]`,
/// row-major. Fans output rows across up to `threads` persistent pool
/// workers when the problem is large enough; bit-identical to
/// [`matmul_naive`] for every thread count.
///
/// # Panics
///
/// If a slice length disagrees with its shape, or if a pool worker dies
/// while holding one of this call's row chunks (a job panic — mirrors the
/// panic propagation of the old scoped-spawn dispatcher).
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize, threads: usize) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(out.len(), m * n, "gemm out length");
    // ordering: telemetry gate + monotonic counters; dispatches racing a
    // toggle may miss a tally, which telemetry tolerates.
    if KERNEL_TELEMETRY.load(Ordering::Relaxed) {
        GEMM_CALLS.fetch_add(1, Ordering::Relaxed); // ordering: telemetry counter
                                                    // ordering: telemetry counter (see the gate comment above).
        GEMM_FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
    }
    let threads = threads.max(1).min(m);
    if threads <= 1 || m * n * k < PAR_THRESHOLD {
        gemm_rows(a, b, out, k, n);
        return;
    }
    gemm_pooled(a, b, out, m, k, n, threads);
}

/// Rows per *remote* pool job. Finer than one-chunk-per-thread on purpose:
/// the caller's helping loop ([`pool::try_run_one`]) can then absorb
/// whatever the OS scheduler does not hand to the workers, and the caller's
/// final wait shrinks to at most one small chunk. Every row is a single
/// sequential-`k` accumulation chain computed by [`gemm_rows`], so results
/// are bitwise independent of the chunk size — chunking is purely a
/// load-balancing knob.
const CHUNK_ROWS: usize = 32;

/// The pooled row-parallel dispatcher, bitwise identical to
/// [`matmul_naive`] regardless of which thread computes what.
///
/// The caller keeps its fair share — the leading `m.div_ceil(threads)` rows
/// — and computes it against the original borrows (no copy, exactly like
/// one scoped worker). Only the remainder goes to the pool, split into
/// [`CHUNK_ROWS`]-row jobs that own arena-recycled copies of their A rows
/// plus one shared copy of B (jobs must be `'static`; the workspace denies
/// `unsafe`, so borrows cannot cross the pool boundary). Results return
/// over a per-call channel together with their A buffers so the
/// *dispatching* thread's arena recycles everything — buffers never strand
/// in worker freelists. While waiting, the caller drains queued jobs inline
/// ([`pool::try_run_one`]), so the call completes even on a pool with zero
/// workers.
fn gemm_pooled(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let caller_rows = m.div_ceil(threads);
    // Remote chunks never coarser than the caller's share.
    let chunk_rows = CHUNK_ROWS.min(caller_rows);
    pool::ensure_workers(threads - 1);

    let mut b_buf = arena::take_f32(b.len());
    b_buf.extend_from_slice(b);
    let b_shared = Arc::new(b_buf);

    let (tx, rx) = mpsc::channel::<(usize, Vec<f32>, Vec<f32>)>();
    let mut jobs: Vec<pool::Job> = Vec::new();
    let mut row0 = caller_rows;
    while row0 < m {
        let rows = chunk_rows.min(m - row0);
        let mut a_chunk = arena::take_f32(rows * k);
        a_chunk.extend_from_slice(&a[row0 * k..(row0 + rows) * k]);
        // Zeroed only to materialize the length — the kernel overwrites
        // every element (safe Rust has no uninitialized-len Vec).
        let mut c_chunk = arena::take_f32_zeroed(rows * n);
        let b_ref = Arc::clone(&b_shared);
        let tx = tx.clone();
        jobs.push(Box::new(move || {
            gemm_rows(&a_chunk, &b_ref, &mut c_chunk, k, n);
            let _ = tx.send((row0, c_chunk, a_chunk));
        }));
        row0 += rows;
    }
    drop(tx);
    let mut pending = jobs.len();
    pool::submit(jobs);

    gemm_rows(&a[..caller_rows * k], b, &mut out[..caller_rows * n], k, n);

    let mut spins = 0u32;
    while pending > 0 {
        match rx.try_recv() {
            Ok((row0, c_chunk, a_chunk)) => {
                out[row0 * n..row0 * n + c_chunk.len()].copy_from_slice(&c_chunk);
                arena::put_f32(c_chunk);
                arena::put_f32(a_chunk);
                pending -= 1;
            }
            Err(mpsc::TryRecvError::Empty) => {
                if pool::try_run_one() {
                    continue;
                }
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(64) {
                    // Let a worker holding our last chunk onto the core.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("kernel pool job panicked mid-GEMM ({pending} chunk(s) lost)");
            }
        }
    }
    if let Ok(b_buf) = Arc::try_unwrap(b_shared) {
        arena::put_f32(b_buf);
    }
}

/// The retired scoped-spawn GEMM dispatcher: spawns fresh threads per call
/// exactly as the PR 3 kernel did (no volume threshold — callers choose the
/// fan-out). Kept purely as a differential baseline: the pooled-vs-scoped
/// bench record quantifies what the pool saves, and the equivalence tests
/// pin pooled output bitwise against this path.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
pub fn gemm_scoped(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "gemm lhs length");
    assert_eq!(b.len(), k * n, "gemm rhs length");
    assert_eq!(out.len(), m * n, "gemm out length");
    let threads = threads.max(1).min(m);
    if threads <= 1 {
        gemm_rows(a, b, out, k, n);
        return;
    }
    pool::run_scoped_rows(a, b, out, k, n, m.div_ceil(threads), gemm_rows);
}

/// `out = A·Bᵀ` with `A: [m,k]`, `B: [n,k]`, `out: [m,n]`. `B` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel, so accumulation
/// order matches materializing `Bᵀ` and calling [`matmul_naive`].
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(b.len(), n * k, "gemm_nt rhs length");
    transpose_into(b, n, k, scratch);
    gemm(a, scratch, out, m, k, n, threads);
}

/// `out = Aᵀ·B` with `A: [k,m]`, `B: [k,n]`, `out: [m,n]`. `A` is
/// transpose-packed into `scratch` (resized as needed, reusable across
/// calls) and the product runs through the blocked kernel.
///
/// # Panics
///
/// If a slice length disagrees with its shape.
#[allow(clippy::too_many_arguments)] // mirrors the BLAS-style signature
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut Vec<f32>,
    threads: usize,
) {
    assert_eq!(a.len(), k * m, "gemm_tn lhs length");
    transpose_into(a, k, m, scratch);
    gemm(scratch, b, out, m, k, n, threads);
}

/// Writes the transpose of row-major `src: [rows, cols]` into `dst`
/// (`[cols, rows]`), resizing `dst` but keeping its allocation when large
/// enough.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut Vec<f32>) {
    assert_eq!(src.len(), rows * cols, "transpose_into length");
    dst.clear();
    dst.resize(rows * cols, 0.0);
    for (i, row) in src.chunks_exact(cols).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * rows + i] = v;
        }
    }
}

/// Splits `data` into runs of whole `item_len`-element items and applies
/// `f(first_item_index, chunk)` to each run in ascending order. The
/// `threads` parameter only shapes the chunk boundaries handed to `f`;
/// execution is sequential. The im2col/col2im fills that route through here
/// are memory-bandwidth-bound, and per-call scoped spawns cost more than
/// they saved (see the pool module docs) while dispatching them to the
/// persistent pool would require copying the inputs — roughly the price of
/// the fill itself. Item order is preserved, so per-item computation is
/// deterministic for every `threads` value.
///
/// # Panics
///
/// If `data.len() != items * item_len`.
pub fn par_items(
    data: &mut [f32],
    item_len: usize,
    items: usize,
    threads: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    assert_eq!(data.len(), items * item_len, "par_items length mismatch");
    let threads = threads.max(1).min(items.max(1));
    if threads <= 1 || item_len == 0 {
        f(0, data);
        return;
    }
    let per = items.div_ceil(threads);
    for (t, chunk) in data.chunks_mut(per * item_len).enumerate() {
        f(t * per, chunk);
    }
}

/// Single-threaded blocked kernel over a full row range: `a` holds exactly
/// the rows of `out`. Prior `out` contents are ignored — the `kb == 0` pass
/// of [`tile_rows`] overwrites every element before any later `k`-block
/// reloads it, so callers need not (and do not) zero `out` first.
fn gemm_rows(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 {
        // Empty sum: the product is all zeros and the tile loop below would
        // never write `out`.
        out.fill(0.0);
        return;
    }
    if n == 0 {
        return;
    }
    let m = out.len() / n;
    // One packed KC×NR B-panel lives on the stack for the whole call.
    let mut panel = [0.0f32; KC * NR];
    let mut kb = 0;
    while kb < k {
        let kc = KC.min(k - kb);
        let mut j = 0;
        while j < n {
            let nr = NR.min(n - j);
            pack_panel(b, n, kb, kc, j, nr, &mut panel);
            let panel = &panel[..kc * NR];
            let mut i = 0;
            while i + MR <= m {
                tile_rows::<MR>(a, out, i, k, n, kb, kc, j, nr, panel);
                i += MR;
            }
            while i < m {
                tile_rows::<1>(a, out, i, k, n, kb, kc, j, nr, panel);
                i += 1;
            }
            j += NR;
        }
        kb += kc;
    }
}

/// Packs the `kc × nr` block of `B` at `(kb, j)` into a contiguous
/// `kc × NR` panel, zero-padding columns beyond `nr`. The pad lanes only
/// ever feed accumulator lanes that are never written back, so `NaN`
/// operands in `A` cannot leak through them.
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
fn pack_panel(
    b: &[f32],
    n: usize,
    kb: usize,
    kc: usize,
    j: usize,
    nr: usize,
    panel: &mut [f32; KC * NR],
) {
    for p in 0..kc {
        let src = &b[(kb + p) * n + j..(kb + p) * n + j + nr];
        let dst = &mut panel[p * NR..p * NR + NR];
        dst[..nr].copy_from_slice(src);
        dst[nr..].fill(0.0);
    }
}

/// The register-tiled micro-kernel: accumulates the `R × nr` output tile at
/// `(i, j)` over the `k`-block `[kb, kb+kc)`. The first `k`-block starts
/// its accumulator at literal zero (prior `out` contents are ignored —
/// callers never pre-zero); later blocks reload the tile from `out`, so the
/// per-element accumulation chain stays strictly ascending in `k` across
/// blocks (see module docs).
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
#[inline(always)]
fn tile_rows<const R: usize>(
    a: &[f32],
    out: &mut [f32],
    i: usize,
    k: usize,
    n: usize,
    kb: usize,
    kc: usize,
    j: usize,
    nr: usize,
    panel: &[f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    if kb > 0 {
        for (r, accr) in acc.iter_mut().enumerate() {
            accr[..nr].copy_from_slice(&out[(i + r) * n + j..(i + r) * n + j + nr]);
        }
    }
    if R == MR {
        let a0 = &a[i * k + kb..i * k + kb + kc];
        let a1 = &a[(i + 1) * k + kb..(i + 1) * k + kb + kc];
        let a2 = &a[(i + 2) * k + kb..(i + 2) * k + kb + kc];
        let a3 = &a[(i + 3) * k + kb..(i + 3) * k + kb + kc];
        for ((((&x0, &x1), &x2), &x3), bp) in
            a0.iter().zip(a1).zip(a2).zip(a3).zip(panel.chunks_exact(NR))
        {
            let xs = [x0, x1, x2, x3];
            for (accr, xr) in acc.iter_mut().zip(xs) {
                for (av, &bv) in accr.iter_mut().zip(bp) {
                    *av = xr.mul_add(bv, *av);
                }
            }
        }
    } else {
        let a0 = &a[i * k + kb..i * k + kb + kc];
        for (&x0, bp) in a0.iter().zip(panel.chunks_exact(NR)) {
            for (av, &bv) in acc[0].iter_mut().zip(bp) {
                *av = x0.mul_add(bv, *av);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[(i + r) * n + j..(i + r) * n + j + nr].copy_from_slice(&accr[..nr]);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill.
    fn lcg_fill(seed: u32, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                (s >> 9) as f32 / (1u32 << 23) as f32 - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        for (case, &(m, k, n)) in
            [(1, 1, 1), (3, 5, 7), (17, 19, 23), (4, 600, 9), (33, 2, 65), (40, 40, 40)]
                .iter()
                .enumerate()
        {
            let a = lcg_fill(case as u32, m * k);
            let b = lcg_fill(case as u32 + 100, k * n);
            let mut want = vec![0.0; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            for threads in [1usize, 2, 3] {
                let mut got = vec![0.0; m * n];
                gemm(&a, &b, &mut got, m, k, n, threads);
                assert_eq!(got, want, "m={m} k={k} n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_dispatch_matches_naive_bitwise_above_threshold() {
        // 160³ volume (4.1 M) clears PAR_THRESHOLD, so threads ≥ 2 route
        // through the persistent pool; every thread count must agree with
        // the reference bit-for-bit, and with the scoped baseline.
        let (m, k, n) = (160usize, 160, 160);
        assert!(m * k * n >= PAR_THRESHOLD, "shape must exercise the pooled path");
        let a = lcg_fill(7, m * k);
        let b = lcg_fill(8, k * n);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut got = vec![0.0; m * n];
            gemm(&a, &b, &mut got, m, k, n, threads);
            assert_eq!(got, want, "pooled threads={threads}");
            let mut scoped = vec![0.0; m * n];
            gemm_scoped(&a, &b, &mut scoped, m, k, n, threads);
            assert_eq!(scoped, want, "scoped threads={threads}");
        }
    }

    #[test]
    fn nt_and_tn_match_materialized_transpose() {
        let (m, k, n) = (7, 11, 5);
        let a = lcg_fill(1, m * k);
        let bt = lcg_fill(2, n * k); // B stored [n, k]
        let at = lcg_fill(3, k * m); // A stored [k, m]
        let b = lcg_fill(4, k * n);

        let mut scratch = Vec::new();
        let mut got = vec![0.0; m * n];
        gemm_nt(&a, &bt, &mut got, m, k, n, &mut scratch, 1);
        let mut b_mat = Vec::new();
        transpose_into(&bt, n, k, &mut b_mat);
        let mut want = vec![0.0; m * n];
        matmul_naive(&a, &b_mat, &mut want, m, k, n);
        assert_eq!(got, want);

        gemm_tn(&at, &b, &mut got, m, k, n, &mut scratch, 1);
        let mut a_mat = Vec::new();
        transpose_into(&at, k, m, &mut a_mat);
        matmul_naive(&a_mat, &b, &mut want, m, k, n);
        assert_eq!(got, want);
    }

    #[test]
    fn zero_times_nonfinite_is_nan() {
        // A = [0, 1], B column 0 row 0 = NaN: 0·NaN must poison the output.
        let a = [0.0f32, 1.0];
        let b = [f32::NAN, 2.0, 3.0, 4.0];
        let mut out = [0.0f32; 2];
        gemm(&a, &b, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·NaN must propagate, got {}", out[0]);
        let b_inf = [f32::INFINITY, 2.0, 3.0, 4.0];
        gemm(&a, &b_inf, &mut out, 1, 2, 2, 1);
        assert!(out[0].is_nan(), "0·∞ must propagate as NaN, got {}", out[0]);
        // The naive reference agrees.
        matmul_naive(&a, &b, &mut out, 1, 2, 2);
        assert!(out[0].is_nan());
    }

    #[test]
    fn empty_dims_are_fine() {
        let mut out = vec![1.0f32; 3];
        gemm(&[], &[], &mut out, 3, 0, 1, 1);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn par_items_partitions_whole_items() {
        let mut data = vec![0.0f32; 6 * 4];
        par_items(&mut data, 4, 6, 3, |first, chunk| {
            for (d, item) in chunk.chunks_mut(4).enumerate() {
                item.fill((first + d) as f32);
            }
        });
        for (i, item) in data.chunks(4).enumerate() {
            assert!(item.iter().all(|&v| v == i as f32), "item {i}: {item:?}");
        }
    }

    #[test]
    fn thread_knob_clamps_to_one() {
        set_kernel_threads(0);
        assert_eq!(kernel_threads(), 1);
        set_kernel_threads(2);
        assert_eq!(kernel_threads(), 2);
        set_kernel_threads(1);
    }

    #[test]
    fn kernel_counters_tally_calls_and_flops() {
        // Counters are process-wide, so this test tolerates concurrent
        // growth from other tests: it checks the *delta* is at least what
        // its own calls contribute.
        let (m, k, n) = (3usize, 4usize, 5usize);
        let a = vec![1.0f32; m * k];
        let b = vec![1.0f32; k * n];
        let mut c = vec![0.0f32; m * n];
        set_kernel_telemetry(true);
        assert!(kernel_telemetry_enabled());
        let before = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        gemm(&a, &b, &mut c, m, k, n, 1);
        let after = kernel_counters();
        set_kernel_telemetry(false);
        assert!(after.gemm_calls >= before.gemm_calls + 2);
        assert!(after.gemm_flops >= before.gemm_flops + 2 * 2 * (m * k * n) as u64);
        // With telemetry back off, counters stop moving from this thread.
        let frozen = kernel_counters();
        gemm(&a, &b, &mut c, m, k, n, 1);
        assert_eq!(kernel_counters().gemm_calls, frozen.gemm_calls);
    }
}
