//! Layer normalization over the trailing feature dimension.
//!
//! The input is viewed as `[rows, features]`: each row is normalized to zero
//! mean and unit variance, then scaled by `gamma` and shifted by `beta`
//! (both `[features]`). The DRL-CEWS CNN applies this after every conv layer
//! (on the flattened `[B, C*H*W]` view) to stabilize PPO updates.

use crate::arena;
use crate::tensor::Tensor;

/// Saved statistics from a layer-norm forward pass, needed for backward.
#[derive(Clone, Debug)]
pub struct LayerNormCtx {
    /// Mean per row.
    pub mean: Vec<f32>,
    /// Reciprocal standard deviation per row.
    pub rstd: Vec<f32>,
}

/// Forward layer norm: returns output and the per-row statistics.
pub fn layer_norm_forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> (Tensor, LayerNormCtx) {
    assert_eq!(x.ndim(), 2, "layer_norm input must be [rows, features]");
    let (rows, feat) = (x.shape()[0], x.shape()[1]);
    assert_eq!(gamma.shape(), &[feat], "gamma shape mismatch");
    assert_eq!(beta.shape(), &[feat], "beta shape mismatch");
    let mut out = arena::take_f32_zeroed(rows * feat);
    let mut mean = arena::take_f32_zeroed(rows);
    let mut rstd = arena::take_f32_zeroed(rows);
    for r in 0..rows {
        let row = &x.data()[r * feat..(r + 1) * feat];
        let mu = row.iter().sum::<f32>() / feat as f32;
        let var = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / feat as f32;
        let rs = 1.0 / (var + eps).sqrt();
        mean[r] = mu;
        rstd[r] = rs;
        for ((d, &v), (&g, &b)) in out[r * feat..(r + 1) * feat]
            .iter_mut()
            .zip(row)
            .zip(gamma.data().iter().zip(beta.data()))
        {
            *d = (v - mu) * rs * g + b;
        }
    }
    (Tensor::from_vec(&[rows, feat], out), LayerNormCtx { mean, rstd })
}

/// Gradients of layer norm w.r.t. input, gamma and beta.
pub struct LayerNormGrads {
    /// Gradient w.r.t. the input.
    pub gx: Tensor,
    /// Gradient w.r.t. gamma (scale).
    pub ggamma: Tensor,
    /// Gradient w.r.t. beta (shift).
    pub gbeta: Tensor,
}

/// Backward layer norm given the upstream gradient and saved statistics.
pub fn layer_norm_backward(
    gout: &Tensor,
    x: &Tensor,
    gamma: &Tensor,
    ctx: &LayerNormCtx,
) -> LayerNormGrads {
    let (rows, feat) = (x.shape()[0], x.shape()[1]);
    let n = feat as f32;
    let mut gx = arena::take_f32_zeroed(rows * feat);
    let mut ggamma = arena::take_f32_zeroed(feat);
    let mut gbeta = arena::take_f32_zeroed(feat);
    for r in 0..rows {
        let xr = &x.data()[r * feat..(r + 1) * feat];
        let gr = &gout.data()[r * feat..(r + 1) * feat];
        let (mu, rs) = (ctx.mean[r], ctx.rstd[r]);
        // xhat and the two row reductions the input gradient needs.
        let mut sum_gy = 0.0f32;
        let mut sum_gy_xhat = 0.0f32;
        for j in 0..feat {
            let xhat = (xr[j] - mu) * rs;
            let gy = gr[j] * gamma.data()[j];
            sum_gy += gy;
            sum_gy_xhat += gy * xhat;
            ggamma[j] += gr[j] * xhat;
            gbeta[j] += gr[j];
        }
        for j in 0..feat {
            let xhat = (xr[j] - mu) * rs;
            let gy = gr[j] * gamma.data()[j];
            gx[r * feat + j] = rs * (gy - sum_gy / n - xhat * sum_gy_xhat / n);
        }
    }
    LayerNormGrads {
        gx: Tensor::from_vec(&[rows, feat], gx),
        ggamma: Tensor::from_vec(&[feat], ggamma),
        gbeta: Tensor::from_vec(&[feat], gbeta),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn forward_normalizes_rows() {
        let x = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., -2., 0., 2., 8.]);
        let gamma = Tensor::ones(&[4]);
        let beta = Tensor::zeros(&[4]);
        let (y, _) = layer_norm_forward(&x, &gamma, &beta, 1e-5);
        for r in 0..2 {
            let row: Vec<f32> = (0..4).map(|c| y.at2(r, c)).collect();
            let mu: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / 4.0;
            assert!(mu.abs() < 1e-5, "row {r} mean {mu}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_apply_affine() {
        let x = Tensor::from_vec(&[1, 2], vec![0., 2.]);
        let gamma = Tensor::from_vec(&[2], vec![3., 3.]);
        let beta = Tensor::from_vec(&[2], vec![10., 10.]);
        let (y, _) = layer_norm_forward(&x, &gamma, &beta, 1e-8);
        // Normalized row is [-1, 1], so output is [7, 13].
        assert!((y.data()[0] - 7.0).abs() < 1e-3);
        assert!((y.data()[1] - 13.0).abs() < 1e-3);
    }

    #[test]
    fn constant_row_stays_finite() {
        let x = Tensor::full(&[1, 8], 5.0);
        let (y, _) = layer_norm_forward(&x, &Tensor::ones(&[8]), &Tensor::zeros(&[8]), 1e-5);
        assert!(!y.has_non_finite());
        assert!(y.data().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let feat = 6usize;
        let x = Tensor::from_vec(&[2, feat], (0..12).map(|i| (i as f32 * 0.6).sin()).collect());
        let gamma = Tensor::from_vec(&[feat], (0..feat).map(|i| 1.0 + 0.1 * i as f32).collect());
        let beta = Tensor::from_vec(&[feat], (0..feat).map(|i| 0.05 * i as f32).collect());
        let eps = 1e-5;
        let wts: Vec<f32> = (0..12).map(|i| 0.2 + 0.13 * i as f32).collect();
        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| -> f32 {
            let (y, _) = layer_norm_forward(x, g, b, eps);
            y.data().iter().zip(&wts).map(|(a, w)| a * w).sum()
        };

        let (y, ctx) = layer_norm_forward(&x, &gamma, &beta, eps);
        let gout = Tensor::from_vec(y.shape(), wts.clone());
        let grads = layer_norm_backward(&gout, &x, &gamma, &ctx);

        let h = 1e-3f32;
        for i in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let num = (loss(&xp, &gamma, &beta) - loss(&xm, &gamma, &beta)) / (2.0 * h);
            assert!(
                (num - grads.gx.data()[i]).abs() < 2e-2,
                "gx[{i}] numeric {num} analytic {}",
                grads.gx.data()[i]
            );
        }
        for i in 0..feat {
            let mut gp = gamma.clone();
            gp.data_mut()[i] += h;
            let mut gm = gamma.clone();
            gm.data_mut()[i] -= h;
            let num = (loss(&x, &gp, &beta) - loss(&x, &gm, &beta)) / (2.0 * h);
            assert!(
                (num - grads.ggamma.data()[i]).abs() < 2e-2,
                "ggamma[{i}] numeric {num} analytic {}",
                grads.ggamma.data()[i]
            );
            let mut bp = beta.clone();
            bp.data_mut()[i] += h;
            let mut bm = beta.clone();
            bm.data_mut()[i] -= h;
            let numb = (loss(&x, &gamma, &bp) - loss(&x, &gamma, &bm)) / (2.0 * h);
            assert!((numb - grads.gbeta.data()[i]).abs() < 2e-2);
        }
    }
}
