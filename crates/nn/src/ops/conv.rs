//! 2-D convolution via a whole-batch im2col lowering, with an exact
//! backward pass.
//!
//! Layout conventions:
//! * input `x`: `[B, C_in, H, W]`
//! * weight `w`: `[C_out, C_in, KH, KW]`
//! * bias `b`: `[C_out]`
//! * output: `[B, C_out, HO, WO]`
//!
//! The forward pass lowers the *entire batch* to one column matrix
//! `[C_in*KH*KW, B*HO*WO]` (batch items side by side along the column axis)
//! and runs a single blocked GEMM against the weight viewed as
//! `[C_out, C_in*KH*KW]` — one GEMM per layer instead of one per batch
//! item, with no intermediate copies of the column buffer. The column
//! matrix is saved in the graph node so the backward pass is two more
//! whole-batch GEMMs plus a `col2im` scatter.
//!
//! The im2col fill, the bias/scatter epilogue and the col2im scatter run
//! sequentially through [`crate::ops::gemm::par_items`]: the fills are
//! memory-bandwidth-bound, so the old per-call scoped threads cost more
//! than they saved, and routing them through the persistent kernel pool
//! would require copying the inputs (roughly the price of the fill itself).
//! The parallel GEMMs go through the pool; everything is bit-identical for
//! every thread count. All scratch buffers come from [`crate::arena`], so
//! steady-state conv layers allocate nothing.

use crate::arena;
use crate::ops::gemm;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Static configuration of a convolution (shapes, stride, padding).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvCfg {
    /// Input channels `C_in`.
    pub in_channels: usize,
    /// Output channels `C_out`.
    pub out_channels: usize,
    /// Square kernel side length `K`.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl ConvCfg {
    /// Output spatial size for an input spatial size, or `None` if the
    /// kernel does not fit.
    pub fn out_size(&self, input: usize) -> Option<usize> {
        let padded = input + 2 * self.padding;
        if padded < self.kernel {
            return None;
        }
        Some((padded - self.kernel) / self.stride + 1)
    }
}

/// Lowers one batch item `[C, H, W]` (slice of length C*H*W) into a column
/// matrix `[C*K*K, HO*WO]` written into `cols`.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    cfg: &ConvCfg,
    ho: usize,
    wo: usize,
    cols: &mut [f32],
) {
    let k = cfg.kernel;
    debug_assert_eq!(cols.len(), c * k * k * ho * wo);
    im2col_rows(x, c, h, w, cfg, ho, wo, 1, 0, cols);
}

/// Fills rows `row0..row0 + chunk.len()/(bsz*ho*wo)` of the *batched*
/// column matrix `[C*K*K, B*HO*WO]`. Each row is one `(channel, ky, kx)`
/// patch coordinate spanning every batch item, so disjoint row ranges can
/// be filled by different threads.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
fn im2col_rows(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    cfg: &ConvCfg,
    ho: usize,
    wo: usize,
    bsz: usize,
    row0: usize,
    chunk: &mut [f32],
) {
    let k = cfg.kernel;
    let n_spatial = ho * wo;
    let cols_w = bsz * n_spatial;
    let item_len = c * h * w;
    for (dr, row_out) in chunk.chunks_mut(cols_w).enumerate() {
        let row = row0 + dr;
        let ch = row / (k * k);
        let ky = (row / k) % k;
        let kx = row % k;
        debug_assert!(ch < c, "im2col row {row} out of range");
        for (bi, dst) in row_out.chunks_mut(n_spatial).enumerate() {
            let x_ch = &x[bi * item_len + ch * h * w..bi * item_len + (ch + 1) * h * w];
            for oy in 0..ho {
                let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                for ox in 0..wo {
                    let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                    let v = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        x_ch[iy as usize * w + ix as usize]
                    } else {
                        0.0
                    };
                    dst[oy * wo + ox] = v;
                }
            }
        }
    }
}

/// Inverse of [`im2col`]: scatter-adds a column-matrix gradient back onto the
/// input gradient of one batch item.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
pub fn col2im(
    gcols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    cfg: &ConvCfg,
    ho: usize,
    wo: usize,
    gx: &mut [f32],
) {
    debug_assert_eq!(gcols.len(), c * cfg.kernel * cfg.kernel * ho * wo);
    col2im_strided(gcols, ho * wo, 0, c, h, w, cfg, ho, wo, gx);
}

/// [`col2im`] over one batch item's column block inside a batched column
/// matrix: rows have stride `row_stride` and the item's columns start at
/// `col0`.
#[allow(clippy::too_many_arguments)] // mirrors the kernel's natural signature
fn col2im_strided(
    gcols: &[f32],
    row_stride: usize,
    col0: usize,
    c: usize,
    h: usize,
    w: usize,
    cfg: &ConvCfg,
    ho: usize,
    wo: usize,
    gx: &mut [f32],
) {
    let k = cfg.kernel;
    debug_assert_eq!(gx.len(), c * h * w);
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row = (ch * k + ky) * k + kx;
                let base = row * row_stride + col0;
                for oy in 0..ho {
                    let iy = (oy * cfg.stride + ky) as isize - cfg.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..wo {
                        let ix = (ox * cfg.stride + kx) as isize - cfg.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        gx[(ch * h + iy as usize) * w + ix as usize] += gcols[base + oy * wo + ox];
                    }
                }
            }
        }
    }
}

/// Result of a convolution forward pass: output plus the saved column
/// matrix needed by the backward pass.
pub struct ConvForward {
    /// Convolution output, `[B, C_out, HO, WO]`.
    pub output: Tensor,
    /// The whole-batch column matrix, `[C_in*K*K, B*HO*WO]`.
    pub cols: Tensor,
}

/// Forward convolution. Panics on shape mismatches.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, b: &Tensor, cfg: &ConvCfg) -> ConvForward {
    assert_eq!(x.ndim(), 4, "conv input must be [B,C,H,W]");
    let (bsz, c, h, wd) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert_eq!(c, cfg.in_channels, "input channels mismatch");
    assert_eq!(
        w.shape(),
        &[cfg.out_channels, cfg.in_channels, cfg.kernel, cfg.kernel],
        "weight shape mismatch"
    );
    assert_eq!(b.shape(), &[cfg.out_channels], "bias shape mismatch");
    let out_size_or_panic = |input: usize| {
        cfg.out_size(input).unwrap_or_else(|| {
            panic!(
                "{}",
                crate::error::NnError::KernelTooLarge {
                    input,
                    kernel: cfg.kernel,
                    padding: cfg.padding,
                }
            )
        })
    };
    let ho = out_size_or_panic(h);
    let wo = out_size_or_panic(wd);
    let patch = c * cfg.kernel * cfg.kernel;
    let n_spatial = ho * wo;
    let cols_w = bsz * n_spatial;
    let threads = gemm::kernel_threads();

    // Lower the whole batch into one [patch, B*HO*WO] column matrix,
    // writing directly into the saved buffer (one row of patch coordinates
    // per parallel item).
    let mut cols_all = arena::take_f32_zeroed(patch * cols_w);
    gemm::par_items(&mut cols_all, cols_w, patch, threads, |row0, chunk| {
        im2col_rows(x.data(), c, h, wd, cfg, ho, wo, bsz, row0, chunk);
    });

    // One GEMM for the whole batch: W [C_out, patch] · cols [patch, B*ns].
    // The weight tensor is already contiguous in that layout — no reshape
    // copy needed.
    let mut y = arena::take_f32_zeroed(cfg.out_channels * cols_w);
    gemm::gemm(w.data(), &cols_all, &mut y, cfg.out_channels, patch, cols_w, threads);

    // Scatter [C_out, B*ns] → [B, C_out, ns], adding the bias; parallel
    // over batch items.
    let item_len = cfg.out_channels * n_spatial;
    let mut out = arena::take_f32_zeroed(bsz * item_len);
    gemm::par_items(&mut out, item_len, bsz, threads, |bi0, chunk| {
        for (d, item) in chunk.chunks_mut(item_len).enumerate() {
            let bi = bi0 + d;
            for co in 0..cfg.out_channels {
                let src = &y[co * cols_w + bi * n_spatial..co * cols_w + (bi + 1) * n_spatial];
                let bias = b.data()[co];
                for (dst, &s) in item[co * n_spatial..(co + 1) * n_spatial].iter_mut().zip(src) {
                    *dst = s + bias;
                }
            }
        }
    });
    arena::put_f32(y);
    ConvForward {
        output: Tensor::from_vec(&[bsz, cfg.out_channels, ho, wo], out),
        cols: Tensor::from_vec(&[patch, cols_w], cols_all),
    }
}

/// Gradients of a convolution with respect to input, weight and bias.
pub struct ConvGrads {
    /// Gradient w.r.t. the input.
    pub gx: Tensor,
    /// Gradient w.r.t. the weight.
    pub gw: Tensor,
    /// Gradient w.r.t. the bias.
    pub gb: Tensor,
}

/// Backward convolution given the upstream gradient `gout` (`[B,C_out,HO,WO]`),
/// the saved whole-batch column matrix, the weight, and the original input
/// shape. Two whole-batch GEMMs plus a parallel `col2im` scatter.
pub fn conv2d_backward(
    gout: &Tensor,
    cols: &Tensor,
    w: &Tensor,
    x_shape: &[usize],
    cfg: &ConvCfg,
) -> ConvGrads {
    let (bsz, c, h, wd) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let ho = gout.shape()[2];
    let wo = gout.shape()[3];
    let patch = c * cfg.kernel * cfg.kernel;
    let n_spatial = ho * wo;
    let cols_w = bsz * n_spatial;
    debug_assert_eq!(cols.shape(), &[patch, cols_w], "saved column matrix shape");
    let threads = gemm::kernel_threads();

    // Rearrange gout [B, C_out, ns] → [C_out, B*ns] so the whole batch is
    // one GEMM operand; parallel over output-channel rows.
    let mut gout_r = arena::take_f32_zeroed(cfg.out_channels * cols_w);
    gemm::par_items(&mut gout_r, cols_w, cfg.out_channels, threads, |co0, chunk| {
        for (d, row) in chunk.chunks_mut(cols_w).enumerate() {
            let co = co0 + d;
            for (bi, dst) in row.chunks_mut(n_spatial).enumerate() {
                let src = bi * cfg.out_channels * n_spatial + co * n_spatial;
                dst.copy_from_slice(&gout.data()[src..src + n_spatial]);
            }
        }
    });

    // db = Σ_{batch, spatial} gout.
    let mut gb = Tensor::zeros(&[cfg.out_channels]);
    for (co, row) in gout_r.chunks_exact(cols_w).enumerate() {
        gb.data_mut()[co] = row.iter().sum::<f32>();
    }

    // dW = gout_r · colsᵀ — one whole-batch GEMM.
    let mut scratch = arena::take_f32(patch * cols_w);
    let mut gw_mat = arena::take_f32_zeroed(cfg.out_channels * patch);
    gemm::gemm_nt(
        &gout_r,
        cols.data(),
        &mut gw_mat,
        cfg.out_channels,
        cols_w,
        patch,
        &mut scratch,
        threads,
    );

    // dcols = Wᵀ · gout_r — one whole-batch GEMM, then scattered back onto
    // the input gradient in parallel over batch items.
    let mut gcols = arena::take_f32_zeroed(patch * cols_w);
    gemm::gemm_tn(
        w.data(),
        &gout_r,
        &mut gcols,
        patch,
        cfg.out_channels,
        cols_w,
        &mut scratch,
        threads,
    );
    let mut gx = Tensor::zeros(x_shape);
    let item_len = c * h * wd;
    gemm::par_items(gx.data_mut(), item_len, bsz, threads, |bi0, chunk| {
        for (d, gx_item) in chunk.chunks_mut(item_len).enumerate() {
            let bi = bi0 + d;
            col2im_strided(&gcols, cols_w, bi * n_spatial, c, h, wd, cfg, ho, wo, gx_item);
        }
    });
    arena::put_f32(scratch);
    arena::put_f32(gout_r);
    arena::put_f32(gcols);
    ConvGrads {
        gx,
        gw: Tensor::from_vec(&[cfg.out_channels, cfg.in_channels, cfg.kernel, cfg.kernel], gw_mat),
        gb,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn cfg(cin: usize, cout: usize, k: usize, s: usize, p: usize) -> ConvCfg {
        ConvCfg { in_channels: cin, out_channels: cout, kernel: k, stride: s, padding: p }
    }

    #[test]
    fn out_size_matches_formula() {
        let c = cfg(1, 1, 3, 1, 1);
        assert_eq!(c.out_size(8), Some(8));
        let c2 = cfg(1, 1, 3, 2, 0);
        assert_eq!(c2.out_size(7), Some(3));
        let c3 = cfg(1, 1, 5, 1, 0);
        assert_eq!(c3.out_size(3), None);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // A 1x1 kernel with weight 1 and bias 0 is the identity map.
        let c = cfg(1, 1, 1, 1, 0);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let w = Tensor::ones(&[1, 1, 1, 1]);
        let b = Tensor::zeros(&[1]);
        let f = conv2d_forward(&x, &w, &b, &c);
        assert_eq!(f.output.data(), x.data());
    }

    #[test]
    fn averaging_kernel_known_value() {
        // 2x2 kernel of 0.25 over a 2x2 input with stride 2 = mean of input.
        let c = cfg(1, 1, 2, 2, 0);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let w = Tensor::full(&[1, 1, 2, 2], 0.25);
        let b = Tensor::zeros(&[1]);
        let f = conv2d_forward(&x, &w, &b, &c);
        assert_eq!(f.output.shape(), &[1, 1, 1, 1]);
        assert!((f.output.item() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let c = cfg(1, 2, 1, 1, 0);
        let x = Tensor::from_vec(&[1, 1, 1, 2], vec![1., 2.]);
        let w = Tensor::from_vec(&[2, 1, 1, 1], vec![1., 0.]);
        let b = Tensor::from_vec(&[2], vec![10., 20.]);
        let f = conv2d_forward(&x, &w, &b, &c);
        assert_eq!(f.output.data(), &[11., 12., 20., 20.]);
    }

    #[test]
    fn padding_zero_extends() {
        let c = cfg(1, 1, 3, 1, 1);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::zeros(&[1]);
        let f = conv2d_forward(&x, &w, &b, &c);
        // Each output sees the 4 ones minus those cut off by the border.
        assert_eq!(f.output.shape(), &[1, 1, 2, 2]);
        assert_eq!(f.output.data(), &[4., 4., 4., 4.]);
    }

    #[test]
    fn batched_forward_matches_per_item() {
        // Running a 3-item batch must equal running the items one at a time.
        let c = cfg(2, 3, 3, 1, 1);
        let (bsz, ch, h, w) = (3usize, 2usize, 5usize, 4usize);
        let x: Vec<f32> = (0..bsz * ch * h * w).map(|i| (i as f32 * 0.7).sin()).collect();
        let wt: Vec<f32> = (0..3 * 2 * 9).map(|i| (i as f32 * 1.3).cos()).collect();
        let wt = Tensor::from_vec(&[3, 2, 3, 3], wt);
        let bias = Tensor::from_vec(&[3], vec![0.1, -0.2, 0.3]);
        let batch = Tensor::from_vec(&[bsz, ch, h, w], x.clone());
        let full = conv2d_forward(&batch, &wt, &bias, &c);
        let item_out = full.output.numel() / bsz;
        for bi in 0..bsz {
            let item = Tensor::from_vec(
                &[1, ch, h, w],
                x[bi * ch * h * w..(bi + 1) * ch * h * w].to_vec(),
            );
            let single = conv2d_forward(&item, &wt, &bias, &c);
            assert_eq!(
                &full.output.data()[bi * item_out..(bi + 1) * item_out],
                single.output.data(),
                "batch item {bi} diverges from single-item conv"
            );
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y: the transpose
        // relationship that makes the backward pass exact.
        let c = cfg(2, 1, 3, 2, 1);
        let (ch, h, w) = (2usize, 5usize, 4usize);
        let ho = c.out_size(h).unwrap();
        let wo = c.out_size(w).unwrap();
        let patch = ch * 9;
        let x: Vec<f32> = (0..ch * h * w).map(|i| (i as f32 * 0.7).sin()).collect();
        let y: Vec<f32> = (0..patch * ho * wo).map(|i| (i as f32 * 1.3).cos()).collect();

        let mut cols = vec![0.0; patch * ho * wo];
        im2col(&x, ch, h, w, &c, ho, wo, &mut cols);
        let lhs: f32 = cols.iter().zip(&y).map(|(a, b)| a * b).sum();

        let mut gx = vec![0.0; ch * h * w];
        col2im(&y, ch, h, w, &c, ho, wo, &mut gx);
        let rhs: f32 = x.iter().zip(&gx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs {lhs} rhs {rhs}");
    }

    #[test]
    fn backward_matches_finite_difference() {
        let c = cfg(2, 3, 3, 1, 1);
        let xs = [2usize, 2, 4, 4];
        let mut seed = 0u32;
        let mut next = || {
            seed = seed.wrapping_mul(1664525).wrapping_add(1013904223);
            (seed >> 9) as f32 / (1u32 << 23) as f32 - 0.5
        };
        let x = Tensor::from_vec(&xs, (0..64).map(|_| next()).collect());
        let w = Tensor::from_vec(&[3, 2, 3, 3], (0..54).map(|_| next()).collect());
        let b = Tensor::from_vec(&[3], (0..3).map(|_| next()).collect());

        // Loss = sum of outputs, so gout = ones.
        let f = conv2d_forward(&x, &w, &b, &c);
        let gout = Tensor::ones(f.output.shape());
        let grads = conv2d_backward(&gout, &f.cols, &w, x.shape(), &c);

        let eps = 1e-2f32;
        // Check a sample of weight coordinates.
        for &i in &[0usize, 7, 20, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let fp = conv2d_forward(&x, &wp, &b, &c).output.sum();
            let fm = conv2d_forward(&x, &wm, &b, &c).output.sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grads.gw.data()[i]).abs() < 5e-2,
                "gw[{i}] numeric {num} analytic {}",
                grads.gw.data()[i]
            );
        }
        // Check a sample of input coordinates.
        for &i in &[0usize, 5, 17, 31, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let fp = conv2d_forward(&xp, &w, &b, &c).output.sum();
            let fm = conv2d_forward(&xm, &w, &b, &c).output.sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grads.gx.data()[i]).abs() < 2e-2,
                "gx[{i}] numeric {num} analytic {}",
                grads.gx.data()[i]
            );
        }
        // Bias gradient is exactly the number of output positions per
        // channel times the batch size.
        let n_spatial = (2 * f.output.shape()[2] * f.output.shape()[3]) as f32;
        for co in 0..3 {
            assert!((grads.gb.data()[co] - n_spatial).abs() < 1e-3);
        }
    }
}
