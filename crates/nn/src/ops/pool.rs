//! Persistent kernel thread pool: spawn-once workers for the GEMM hot path.
//!
//! The previous kernel layer spawned fresh scoped threads inside every
//! parallel `gemm()` call. At training shapes that overhead dominates: the
//! committed bench trajectory shows 64³ matmul collapsing from 46.5 GFLOP/s
//! at 1 thread to 3.0 GFLOP/s at 2 threads, purely from thread creation.
//! This module replaces per-call spawning with a process-wide pool that is
//! grown on demand (never shrunk) and parked between dispatches.
//!
//! ## Design
//!
//! * **No work stealing.** Jobs are disjoint GEMM output cells (row-chunk ×
//!   L2-sized column-panel, see `gemm.rs`) pushed onto one
//!   `Mutex<VecDeque>`; any worker may pop any job. The partitioning
//!   contract (cells aligned to packed micro-panel boundaries, every output
//!   element a self-contained ascending-`k` accumulation chain) lives in
//!   the dispatcher, so results are bit-identical to the scoped
//!   implementation for every thread count regardless of cell shape or
//!   which worker runs which cell. Workers share the dispatcher's packed
//!   operands read-only behind `Arc` and write results into their own
//!   arena-recycled panels, so no cache line is ever written by two
//!   threads.
//! * **Spin-then-park.** Workers spin briefly on the queue-length atomic,
//!   then park on a condvar. Dispatch cost while warm is one lock + one
//!   `notify_all`.
//! * **Caller helping.** The dispatching thread always computes chunk 0
//!   itself and then drains remaining queued jobs inline via
//!   [`try_run_one`] while waiting. The pool therefore never deadlocks even
//!   with zero workers (spawn failure, single-core boxes), and undersized
//!   pools are starvation-free.
//! * **Panic containment.** Worker threads wrap each job in `catch_unwind`;
//!   a panicking job kills its result channel, which the dispatcher
//!   translates back into a panic on the calling thread (matching scoped
//!   `std::thread::scope` semantics).
//!
//! All primitives come from [`crate::sync`], so under `--cfg loom` the
//! dispatch protocol (enqueue vs spin vs park/unpark vs caller helping) is
//! exhaustively model-checked by `tests/loom_pool.rs`; the happens-before
//! contract itself is written down in `DESIGN.md` §13.
//!
//! This is the only module in the workspace allowed to create threads
//! (enforced by `cargo xtask check`'s `no-raw-thread` lint);
//! [`run_scoped_rows`] keeps the old scoped-spawn path alive behind that
//! exemption as a differential baseline for benches and equivalence tests.

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{hint, thread, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::collections::VecDeque;

/// A unit of pool work: an owning closure, run exactly once on any thread.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Brief spin before a worker parks; deliberately short so workers on
/// oversubscribed machines yield the core back to the dispatcher quickly.
#[cfg(not(loom))]
const WORKER_SPINS: u32 = 256;
/// Under the model every spin iteration is two scheduling points; one
/// iteration is enough to cover the spin→recheck→park branch structure.
#[cfg(loom)]
const WORKER_SPINS: u32 = 1;

/// The pool's shared dispatch state. Instantiated once process-wide via
/// [`shared`]; loom models build private instances (fresh state per
/// explored execution) through [`model::ModelPool`].
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Queue length mirror; lets spinning workers poll without the lock.
    /// Written only while holding `queue` (Release), read lock-free
    /// (Acquire): a reader that observes n > 0 may race a concurrent pop,
    /// so a zero-length pop result is normal and handled.
    queued: AtomicUsize,
}

static SHARED: OnceLock<&'static Shared> = OnceLock::new();
// ordering: all five counters are monotonic telemetry read only by
// pool_stats(); no other memory depends on their values, so Relaxed is
// sufficient everywhere they are touched.
static WORKERS: AtomicUsize = AtomicUsize::new(0);
static DISPATCHES: AtomicU64 = AtomicU64::new(0);
static JOBS_EXECUTED: AtomicU64 = AtomicU64::new(0);
static JOBS_HELPED: AtomicU64 = AtomicU64::new(0);
static PARKS: AtomicU64 = AtomicU64::new(0);

impl Shared {
    fn new() -> Self {
        Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            queued: AtomicUsize::new(0),
        }
    }

    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        // A poisoned queue only means a *pop* panicked mid-hold, which
        // popping never does; job panics happen outside the lock. Recover
        // the guard.
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock-free queue-length read (the mirror, not the deque itself).
    fn queued_len(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    fn pop_job(&self) -> Option<Job> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.lock_queue();
        let job = q.pop_front();
        if job.is_some() {
            self.queued.fetch_sub(1, Ordering::Release);
        }
        job
    }

    /// Enqueues a batch of jobs and wakes the workers.
    fn submit(&self, jobs: Vec<Job>) {
        let n = jobs.len();
        {
            let mut q = self.lock_queue();
            q.extend(jobs);
            self.queued.fetch_add(n, Ordering::Release);
        }
        self.available.notify_all();
    }

    /// Pops and runs one job inline; `false` when the queue is empty.
    fn try_run_one(&self) -> bool {
        match self.pop_job() {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }

    /// One scheduling round of a worker: runs one job (returns `true`), or
    /// spins briefly and — if the queue stays empty — parks until woken
    /// (returns `false`; the caller loops back to re-attempt the pop).
    ///
    /// The park is a `wait_while` predicate loop on the queue itself, so a
    /// submit that lands between the failed spin and the park is seen
    /// before sleeping — the lost-wakeup window the loom model pins shut.
    fn worker_step(&self) -> bool {
        if let Some(job) = self.pop_job() {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            return true;
        }
        for _ in 0..WORKER_SPINS {
            hint::spin_loop();
            if self.queued.load(Ordering::Acquire) > 0 {
                return false;
            }
        }
        // ordering: monotonic telemetry counter (see statics above).
        PARKS.fetch_add(1, Ordering::Relaxed);
        let guard = self.lock_queue();
        let guard = self
            .available
            .wait_while(guard, |q| q.is_empty())
            .unwrap_or_else(PoisonError::into_inner);
        drop(guard);
        false
    }
}

/// A snapshot of the pool's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads currently alive (grow-only).
    pub workers: usize,
    /// Parallel dispatches routed through the pool.
    pub dispatches: u64,
    /// Jobs completed on pool worker threads.
    pub jobs_executed: u64,
    /// Jobs completed inline on dispatching threads ([`try_run_one`]).
    pub jobs_helped: u64,
    /// Times a worker exhausted its spin budget and parked.
    pub parks: u64,
}

/// Reads the pool's lifetime counters.
pub fn pool_stats() -> PoolStats {
    // ordering: monotonic telemetry counters; snapshot consistency across
    // the five loads is not required (see statics above).
    PoolStats {
        workers: WORKERS.load(Ordering::Relaxed), // ordering: see above
        dispatches: DISPATCHES.load(Ordering::Relaxed), // ordering: see above
        jobs_executed: JOBS_EXECUTED.load(Ordering::Relaxed), // ordering: see above
        jobs_helped: JOBS_HELPED.load(Ordering::Relaxed), // ordering: see above
        parks: PARKS.load(Ordering::Relaxed),     // ordering: see above
    }
}

fn shared() -> &'static Shared {
    SHARED.get_or_init(|| Box::leak(Box::new(Shared::new())))
}

fn worker_loop(s: &'static Shared) {
    loop {
        if s.worker_step() {
            // ordering: monotonic telemetry counter (see statics above).
            JOBS_EXECUTED.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Grows the pool to at least `n` worker threads (never shrinks). Spawn
/// failures degrade gracefully: dispatchers finish queued work themselves
/// via caller helping, so an undersized pool is slower, never stuck.
pub fn ensure_workers(n: usize) {
    let s = shared();
    loop {
        // ordering: WORKERS only gates how many threads exist; the spawned
        // thread's visibility of pool state is established by the mutex,
        // not by this counter, so the claim CAS can stay Relaxed.
        let cur = WORKERS.load(Ordering::Relaxed);
        if cur >= n {
            return;
        }
        // Claim the slot before spawning so racing dispatchers don't
        // over-spawn; roll back if the OS refuses the thread.
        // ordering: pure slot accounting, same contract as the load above.
        if WORKERS.compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed).is_err() {
            continue;
        }
        let spawned = thread::Builder::new()
            .name(format!("vc-nn-kernel-{cur}"))
            .spawn(move || worker_loop(s));
        if spawned.is_err() {
            // ordering: rollback of the Relaxed claim above.
            WORKERS.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Enqueues a batch of jobs and wakes the workers. Records one dispatch.
pub fn submit(jobs: Vec<Job>) {
    // ordering: monotonic telemetry counter (see statics above).
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    shared().submit(jobs);
}

/// Pops and runs one queued job on the calling thread. Returns `false` when
/// the queue is empty. Dispatchers call this in their wait loop so work
/// always completes even if every worker is busy or absent.
pub fn try_run_one() -> bool {
    if shared().try_run_one() {
        // ordering: monotonic telemetry counter (see statics above).
        JOBS_HELPED.fetch_add(1, Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// Drains the pool's queue within `deadline` by running queued jobs on
/// the calling thread (caller helping), returning `true` once the queue
/// is observed empty. Used by graceful shutdown: worker threads are
/// detached and never joined (the pool is process-global and grow-only),
/// so "quiesced" means no *queued* work remains — a job already running
/// on a worker finishes on its own thread.
///
/// Returns `false` if the deadline expires while jobs are still queued
/// (e.g. another dispatcher keeps submitting); the caller decides whether
/// that is an error.
pub fn quiesce(deadline: std::time::Duration) -> bool {
    let start = std::time::Instant::now();
    let s = shared();
    loop {
        // ordering: Acquire pairs with the Release len publication in
        // submit/pop so an observed-zero here means every enqueued job has
        // been popped by someone.
        if s.queued_len() == 0 {
            return true;
        }
        if !try_run_one() {
            // Queue non-empty but pop lost a race: give the winner a beat.
            thread::yield_now();
        }
        if start.elapsed() >= deadline {
            return s.queued_len() == 0;
        }
    }
}

/// The retired scoped-spawn row partitioner, kept as a differential
/// baseline: spawns one scoped thread per row chunk exactly as the PR 3
/// kernel did. Benches compare pooled vs scoped dispatch with this, and the
/// equivalence tests pin bit-identical output between the two paths.
pub fn run_scoped_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    n: usize,
    rows_per: usize,
    kernel: fn(&[f32], &[f32], &mut [f32], usize, usize),
) {
    std::thread::scope(|scope| {
        for (a_chunk, o_chunk) in a.chunks(rows_per * k).zip(out.chunks_mut(rows_per * n)) {
            scope.spawn(move || kernel(a_chunk, b, o_chunk, k, n));
        }
    });
}

/// Model-checking surface: a private pool instance with fresh state per
/// explored execution, driving the *same* `Shared` protocol code the
/// production statics use. Worker loops are exercised one [`worker_step`]
/// at a time so model executions terminate.
///
/// [`worker_step`]: ModelPool::worker_step
#[cfg(loom)]
pub mod model {
    use super::{Job, Ordering, Shared};

    /// A self-contained pool for `loom` models (see `tests/loom_pool.rs`).
    pub struct ModelPool {
        shared: Shared,
    }

    impl ModelPool {
        /// A pool with an empty queue and no workers.
        #[must_use]
        pub fn new() -> Self {
            ModelPool { shared: Shared::new() }
        }

        /// [`super::submit`] against this instance (no telemetry).
        pub fn submit(&self, jobs: Vec<Job>) {
            self.shared.submit(jobs);
        }

        /// [`super::try_run_one`] against this instance (no telemetry).
        pub fn try_run_one(&self) -> bool {
            self.shared.try_run_one()
        }

        /// One worker scheduling round; see `Shared::worker_step`.
        pub fn worker_step(&self) -> bool {
            self.shared.worker_step()
        }

        /// The lock-free queue-length mirror.
        #[must_use]
        pub fn queued(&self) -> usize {
            self.shared.queued.load(Ordering::Acquire)
        }
    }

    impl Default for ModelPool {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::mpsc;
    use std::sync::Arc;

    #[test]
    fn submitted_jobs_all_run_even_with_zero_workers() {
        // Don't ensure_workers: caller helping alone must drain the queue.
        let hits = Arc::new(AtomicU32::new(0));
        let jobs: Vec<Job> = (0..8)
            .map(|_| {
                let hits = Arc::clone(&hits);
                Box::new(move || {
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }) as Job
            })
            .collect();
        submit(jobs);
        // Workers may exist from other tests; help until the count lands.
        while hits.load(std::sync::atomic::Ordering::Relaxed) < 8 {
            if !try_run_one() {
                std::hint::spin_loop();
            }
        }
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 8);
    }

    #[test]
    fn workers_drain_queue_while_caller_waits() {
        ensure_workers(2);
        assert!(pool_stats().workers >= 2);
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || {
                    let _ = tx.send(i);
                }) as Job
            })
            .collect();
        drop(tx);
        submit(jobs);
        let mut got: Vec<i32> = Vec::new();
        while got.len() < 4 {
            match rx.try_recv() {
                Ok(v) => got.push(v),
                Err(mpsc::TryRecvError::Empty) => {
                    if !try_run_one() {
                        std::thread::yield_now();
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => break,
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_survives_job_panic() {
        ensure_workers(1);
        let before = pool_stats();
        submit(vec![Box::new(|| panic!("deliberate test panic")) as Job]);
        // The panicking job must be consumed (by a worker or by us), and
        // later jobs must still run.
        let (tx, rx) = mpsc::channel();
        submit(vec![Box::new(move || {
            let _ = tx.send(42u32);
        }) as Job]);
        loop {
            match rx.try_recv() {
                Ok(v) => {
                    assert_eq!(v, 42);
                    break;
                }
                Err(mpsc::TryRecvError::Empty) => {
                    // Helping may hit the panicking job; contain it like a
                    // worker does.
                    let _ = std::panic::catch_unwind(try_run_one);
                    std::thread::yield_now();
                }
                Err(mpsc::TryRecvError::Disconnected) => panic!("sender dropped unexpectedly"),
            }
        }
        assert!(pool_stats().dispatches >= before.dispatches + 2);
    }

    #[test]
    fn ensure_workers_is_grow_only() {
        ensure_workers(3);
        let grown = pool_stats().workers;
        assert!(grown >= 3);
        ensure_workers(1);
        assert_eq!(pool_stats().workers, grown, "pool must never shrink");
    }
}
