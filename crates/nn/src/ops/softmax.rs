//! Row-wise softmax / log-softmax with exact backward passes.
//!
//! All functions operate on rank-2 tensors `[rows, cols]`, treating each row
//! as an independent distribution — the layout used for per-worker action
//! heads after the `[B, W*A] -> [B*W, A]` reshape.
//!
//! ## Fully masked rows
//!
//! Action masking drives logits to `-∞` (or `-1e9`). A row whose entries
//! are *all* exactly `-∞` has no well-defined softmax (`0/0`); the seed
//! implementation silently produced `NaN`s that then tripped the gradient
//! quarantine. The defined behavior is now: such a row yields the uniform
//! distribution (`1/cols` from [`softmax_rows`], `-ln(cols)` from
//! [`log_softmax_rows`]) — a fully masked head carries no preference, and a
//! uniform output keeps downstream entropy/ratio terms finite. Rows with
//! `NaN` entries still propagate `NaN`.

use crate::arena;
use crate::tensor::Tensor;

/// Whether every entry of the row is exactly `-∞` (a fully masked head).
fn fully_masked(row: &[f32]) -> bool {
    row.iter().all(|&v| v == f32::NEG_INFINITY)
}

/// Numerically stable row-wise softmax. Fully masked rows (all `-∞`)
/// yield the uniform distribution; see the module docs.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "softmax_rows requires rank 2");
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = arena::take_f32_zeroed(rows * cols);
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let dst = &mut out[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if m == f32::NEG_INFINITY && fully_masked(row) {
            dst.fill(1.0 / cols as f32);
            continue;
        }
        let mut z = 0.0f32;
        for (d, &v) in dst.iter_mut().zip(row) {
            let e = (v - m).exp();
            *d = e;
            z += e;
        }
        for d in dst.iter_mut() {
            *d /= z;
        }
    }
    Tensor::from_vec(&[rows, cols], out)
}

/// Numerically stable row-wise log-softmax. Fully masked rows (all `-∞`)
/// yield `-ln(cols)` everywhere; see the module docs.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    assert_eq!(x.ndim(), 2, "log_softmax_rows requires rank 2");
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = arena::take_f32_zeroed(rows * cols);
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let dst = &mut out[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        if m == f32::NEG_INFINITY && fully_masked(row) {
            dst.fill(-(cols as f32).ln());
            continue;
        }
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        for (d, &v) in dst.iter_mut().zip(row) {
            *d = v - lse;
        }
    }
    Tensor::from_vec(&[rows, cols], out)
}

/// Backward of [`softmax_rows`]: given y = softmax(x) and upstream gradient
/// g, returns dL/dx = y ⊙ (g − ⟨g, y⟩_row).
pub fn softmax_backward(y: &Tensor, gout: &Tensor) -> Tensor {
    assert_eq!(y.shape(), gout.shape());
    let (rows, cols) = (y.shape()[0], y.shape()[1]);
    let mut gin = arena::take_f32_zeroed(rows * cols);
    for r in 0..rows {
        let yr = &y.data()[r * cols..(r + 1) * cols];
        let gr = &gout.data()[r * cols..(r + 1) * cols];
        let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
        for ((d, &yv), &gv) in gin[r * cols..(r + 1) * cols].iter_mut().zip(yr).zip(gr) {
            *d = yv * (gv - dot);
        }
    }
    Tensor::from_vec(&[rows, cols], gin)
}

/// Backward of [`log_softmax_rows`]: given y = log_softmax(x) and upstream
/// gradient g, returns dL/dx = g − softmax(x) · Σ_row g.
pub fn log_softmax_backward(y: &Tensor, gout: &Tensor) -> Tensor {
    assert_eq!(y.shape(), gout.shape());
    let (rows, cols) = (y.shape()[0], y.shape()[1]);
    let mut gin = arena::take_f32_zeroed(rows * cols);
    for r in 0..rows {
        let yr = &y.data()[r * cols..(r + 1) * cols];
        let gr = &gout.data()[r * cols..(r + 1) * cols];
        let gsum: f32 = gr.iter().sum();
        for ((d, &yv), &gv) in gin[r * cols..(r + 1) * cols].iter_mut().zip(yr).zip(gr) {
            *d = gv - yv.exp() * gsum;
        }
    }
    Tensor::from_vec(&[rows, cols], gin)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        let y = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = (0..3).map(|c| y.at2(r, c)).sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(&[1, 3], vec![1., 2., 3.]);
        let xs = x.map(|v| v + 100.0);
        let a = softmax_rows(&x);
        let b = softmax_rows(&xs);
        for i in 0..3 {
            assert!((a.data()[i] - b.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_negative_mask() {
        // Masked logits use -1e9; softmax must assign them ~0 without NaN.
        let x = Tensor::from_vec(&[1, 3], vec![0.5, -1e9, 0.5]);
        let y = softmax_rows(&x);
        assert!(!y.has_non_finite());
        assert!(y.data()[1] < 1e-6);
        assert!((y.data()[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn fully_masked_rows_are_uniform() {
        // A row of all -inf (fully masked action head) must produce the
        // uniform distribution, not a silent 0/0 NaN.
        let ninf = f32::NEG_INFINITY;
        let x = Tensor::from_vec(&[2, 4], vec![ninf, ninf, ninf, ninf, 1.0, 2.0, 3.0, 4.0]);
        let y = softmax_rows(&x);
        assert!(!y.has_non_finite(), "masked row produced non-finite: {y:?}");
        for c in 0..4 {
            assert!((y.at2(0, c) - 0.25).abs() < 1e-7, "uniform expected, got {}", y.at2(0, c));
        }
        let s: f32 = (0..4).map(|c| y.at2(1, c)).sum();
        assert!((s - 1.0).abs() < 1e-6, "unmasked row must be unaffected");

        let ls = log_softmax_rows(&x);
        for c in 0..4 {
            assert!((ls.at2(0, c) + 4.0f32.ln()).abs() < 1e-6, "-ln(cols) expected");
        }
    }

    #[test]
    fn masked_row_backward_is_finite() {
        let ninf = f32::NEG_INFINITY;
        let x = Tensor::from_vec(&[1, 3], vec![ninf, ninf, ninf]);
        let y = softmax_rows(&x);
        let g = softmax_backward(&y, &Tensor::ones(&[1, 3]));
        assert!(!g.has_non_finite());
        let ly = log_softmax_rows(&x);
        let lg = log_softmax_backward(&ly, &Tensor::ones(&[1, 3]));
        assert!(!lg.has_non_finite());
    }

    #[test]
    fn nan_rows_still_propagate() {
        // NaN logits are a bug upstream; they must stay visible.
        let x = Tensor::from_vec(&[1, 2], vec![f32::NAN, 0.0]);
        assert!(softmax_rows(&x).has_non_finite());
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(&[2, 4], vec![0.3, -0.7, 1.2, 0.0, 2.0, 2.0, 2.0, 2.0]);
        let ls = log_softmax_rows(&x);
        let s = softmax_rows(&x);
        for i in 0..8 {
            assert!((ls.data()[i] - s.data()[i].ln()).abs() < 1e-5);
        }
    }

    fn finite_diff_check(
        cols: usize,
        f: impl Fn(&Tensor) -> Tensor,
        bwd: impl Fn(&Tensor, &Tensor) -> Tensor,
    ) {
        let x = Tensor::from_vec(&[1, cols], (0..cols).map(|i| (i as f32 * 0.9).sin()).collect());
        // Loss = Σ w_i · f(x)_i with arbitrary weights.
        let wts: Vec<f32> = (0..cols).map(|i| 0.5 + 0.3 * i as f32).collect();
        let y = f(&x);
        let gout = Tensor::from_vec(&[1, cols], wts.clone());
        let gin = bwd(&y, &gout);
        let eps = 1e-3f32;
        for i in 0..cols {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = f(&xp).data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            let lm: f32 = f(&xm).data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 1e-2,
                "coord {i}: numeric {num} analytic {}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        finite_diff_check(5, softmax_rows, softmax_backward);
    }

    #[test]
    fn log_softmax_backward_matches_finite_difference() {
        finite_diff_check(5, log_softmax_rows, log_softmax_backward);
    }
}
