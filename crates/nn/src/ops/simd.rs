//! Explicit SIMD micro-kernels for the blocked GEMM — the workspace's one
//! sanctioned `unsafe` module.
//!
//! The dense hot path ([`crate::ops::gemm`]) bottoms out in the register
//! tile computed here: an `MR×NR = 4×16` output tile accumulated over one
//! `k`-block from *packed* operand panels. On x86-64 with AVX2+FMA (the
//! `.cargo/config.toml` baseline is x86-64-v3) the tile runs on explicit
//! `core::arch` intrinsics — eight `__m256` accumulators, two panel loads
//! and four broadcasts per `k` step, all `_mm256_fmadd_ps`. Everywhere else
//! (non-x86 targets, Miri, `--cfg loom` model builds, or when
//! [`gemm::set_force_scalar`](crate::ops::gemm::set_force_scalar) is on)
//! the same tile runs the scalar fallback below.
//!
//! ## Bit compatibility
//!
//! The two paths are bit-identical by construction. Each output element is
//! one accumulation chain in strictly ascending `k`:
//!
//! ```text
//! acc = fma(a[i][p], b[p][j], acc)        // p = kb, kb+1, …, kb+kc-1
//! ```
//!
//! The scalar path expresses each link as `f32::mul_add` (one `vfmadd`
//! instruction on this baseline); the SIMD path expresses sixteen chains at
//! a time as two `_mm256_fmadd_ps` lanes. IEEE 754 fused multiply-add is
//! deterministic per lane — same inputs, same single rounding — so lane `j`
//! of the vector chain computes exactly the scalar chain, `NaN`/`∞`
//! propagation included. The equivalence tests
//! (`crates/nn/tests/pool_equivalence.rs`, `gemm_simd_nan.rs`) pin this
//! bitwise on every shape and thread count, and the scalar fallback is what
//! the Miri/loom `cargo xtask analyze` jobs exercise.
//!
//! ## Padded tail lanes
//!
//! B panels are zero-padded to the full `NR` width, so tail tiles
//! (`nr < NR`) accumulate `a·0` in the pad lanes. Those lanes are never
//! written back — stores go through an `nr`-bounded copy — so a non-finite
//! `a` poisoning a pad lane (`NaN·0 = NaN`) cannot leak into `C`. The NaN
//! regression suite covers exactly this window.
//!
//! ## Safety policy
//!
//! The workspace denies `unsafe_code` (`DESIGN.md` §8); this module holds
//! the single exemption, granted because the intrinsics' preconditions are
//! mechanical and locally checkable. Every `unsafe` block sits behind slice
//! length asserts that establish the pointed-to ranges, target-feature
//! availability is a compile-time `cfg` (no runtime dispatch to get wrong),
//! and the `unsafe-allow` lint in `cargo xtask lint` fails any *other*
//! module that tries to opt out of the deny.
#![allow(unsafe_code)]

/// Rows per register tile of the micro-kernel.
pub(crate) const MR: usize = 4;
/// Columns per register tile: two AVX2 vectors per row, giving the eight
/// independent FMA chains needed to hide FMA latency.
pub(crate) const NR: usize = 16;

/// Whether this build carries the AVX2/FMA micro-kernel. False on non-x86
/// targets and under Miri or loom, where the scalar fallback (bit-identical
/// by construction) runs instead.
pub(crate) const fn compiled() -> bool {
    cfg!(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(miri),
        not(loom)
    ))
}

/// Computes one `r×nr` output tile (`r ≤ MR`, `nr ≤ NR`) over one `k`-block
/// of length `kc`.
///
/// * `ap` — packed A micro-panel: `kc` steps of `r` row values
///   (`ap[p*r + row]`).
/// * `bp` — packed B panel: `kc` steps of `NR` lanes (`bp[p*NR + col]`),
///   zero-padded beyond `nr`.
/// * `out` — the tile's top-left element is `out[0]`; row `row` spans
///   `out[row*ldc .. row*ldc + nr]`.
/// * `first` — when true this is the first `k`-block: accumulators start at
///   literal zero and prior `out` contents are ignored. Otherwise the tile
///   is reloaded from `out`, keeping each element's accumulation chain
///   strictly ascending in `k` across blocks.
/// * `use_simd` — selects the AVX2 path when it is compiled in; callers
///   resolve [`compiled`] and the force-scalar knob once per GEMM call.
///
/// # Panics
///
/// If a slice is shorter than the ranges described above.
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
pub(crate) fn tile(
    r: usize,
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    kc: usize,
    nr: usize,
    first: bool,
    use_simd: bool,
) {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(miri),
        not(loom)
    ))]
    if use_simd && r == MR {
        avx::tile_mr(ap, bp, out, ldc, kc, nr, first);
        return;
    }
    let _ = use_simd;
    scalar_tile(r, ap, bp, out, ldc, kc, nr, first);
}

/// The scalar reference tile: identical chains via `f32::mul_add`. Handles
/// every row count `1..=MR`; also the tail-row path on SIMD builds (scalar
/// and vector chains are bit-identical, so tiles may mix freely).
#[allow(clippy::too_many_arguments)] // index soup is the kernel's nature
fn scalar_tile(
    r: usize,
    ap: &[f32],
    bp: &[f32],
    out: &mut [f32],
    ldc: usize,
    kc: usize,
    nr: usize,
    first: bool,
) {
    debug_assert!((1..=MR).contains(&r) && (1..=NR).contains(&nr));
    let mut acc = [[0.0f32; NR]; MR];
    if !first {
        for (row, accr) in acc.iter_mut().enumerate().take(r) {
            accr[..nr].copy_from_slice(&out[row * ldc..row * ldc + nr]);
        }
    }
    for (p, bl) in bp.chunks_exact(NR).enumerate().take(kc) {
        let astep = &ap[p * r..p * r + r];
        for (accr, &av) in acc.iter_mut().zip(astep) {
            for (lane, &bv) in accr.iter_mut().zip(bl) {
                *lane = av.mul_add(bv, *lane);
            }
        }
    }
    for (row, accr) in acc.iter().enumerate().take(r) {
        out[row * ldc..row * ldc + nr].copy_from_slice(&accr[..nr]);
    }
}

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(miri),
    not(loom)
))]
mod avx {
    use super::{MR, NR};
    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    /// The full `MR×nr` AVX2/FMA tile; see [`super::tile`] for the operand
    /// contract. Bounds for every raw load/store are established by the
    /// asserts up front, so the `unsafe` here is exactly "these pointers
    /// stay inside their slices".
    pub(super) fn tile_mr(
        ap: &[f32],
        bp: &[f32],
        out: &mut [f32],
        ldc: usize,
        kc: usize,
        nr: usize,
        first: bool,
    ) {
        assert!(ap.len() >= kc * MR, "packed A panel too short");
        assert!(bp.len() >= kc * NR, "packed B panel too short");
        assert!((1..=NR).contains(&nr), "tile width out of range");
        assert!(
            out.len() >= (MR - 1) * ldc + nr && ldc >= nr,
            "output tile out of bounds (len {}, ldc {ldc}, nr {nr})",
            out.len()
        );
        // SAFETY: all pointer arithmetic below stays inside `ap[..kc*MR]`,
        // `bp[..kc*NR]` and `out[..(MR-1)*ldc+nr]`, which the asserts above
        // establish; loads/stores are unaligned-tolerant (`loadu`/`storeu`),
        // and partial rows go through a stack staging buffer instead of
        // touching memory past `nr`.
        unsafe {
            let mut acc: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
            if !first {
                for (row, accr) in acc.iter_mut().enumerate() {
                    if nr == NR {
                        accr[0] = _mm256_loadu_ps(out.as_ptr().add(row * ldc));
                        accr[1] = _mm256_loadu_ps(out.as_ptr().add(row * ldc + 8));
                    } else {
                        // Pad lanes start at zero and are never stored back.
                        let mut stage = [0.0f32; NR];
                        stage[..nr].copy_from_slice(&out[row * ldc..row * ldc + nr]);
                        accr[0] = _mm256_loadu_ps(stage.as_ptr());
                        accr[1] = _mm256_loadu_ps(stage.as_ptr().add(8));
                    }
                }
            }
            let mut a = ap.as_ptr();
            let mut b = bp.as_ptr();
            for _ in 0..kc {
                let b0 = _mm256_loadu_ps(b);
                let b1 = _mm256_loadu_ps(b.add(8));
                for accr in &mut acc {
                    let av = _mm256_set1_ps(*a);
                    accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
                    a = a.add(1);
                }
                b = b.add(NR);
            }
            for (row, accr) in acc.iter().enumerate() {
                if nr == NR {
                    _mm256_storeu_ps(out.as_mut_ptr().add(row * ldc), accr[0]);
                    _mm256_storeu_ps(out.as_mut_ptr().add(row * ldc + 8), accr[1]);
                } else {
                    let mut stage = [0.0f32; NR];
                    _mm256_storeu_ps(stage.as_mut_ptr(), accr[0]);
                    _mm256_storeu_ps(stage.as_mut_ptr().add(8), accr[1]);
                    out[row * ldc..row * ldc + nr].copy_from_slice(&stage[..nr]);
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// Packs one k-step-major micro-panel pair from row-major `a`/`b` and
    /// runs `tile` both ways, asserting bitwise agreement with a direct
    /// mul_add chain.
    fn check_tile(r: usize, kc: usize, nr: usize, poison: Option<(usize, usize)>) {
        let mut a = vec![0.0f32; kc * r];
        let mut b = vec![0.0f32; kc * NR];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        for p in 0..kc {
            for l in 0..nr {
                b[p * NR + l] = ((p * 31 + l) as f32).cos();
            }
        }
        if let Some((p, l)) = poison {
            b[p * NR + l] = f32::NAN;
            a[p * r] = 0.0; // 0·NaN must still poison lane l of row 0
        }
        let mut want = vec![0.0f32; r * NR];
        for p in 0..kc {
            for row in 0..r {
                for lane in 0..nr {
                    let w = &mut want[row * NR + lane];
                    *w = a[p * r + row].mul_add(b[p * NR + lane], *w);
                }
            }
        }
        for use_simd in [false, true] {
            let mut out = vec![0.0f32; r * NR];
            tile(r, &a, &b, &mut out, NR, kc, nr, true, use_simd);
            for row in 0..r {
                for lane in 0..nr {
                    assert_eq!(
                        out[row * NR + lane].to_bits(),
                        want[row * NR + lane].to_bits(),
                        "r={r} kc={kc} nr={nr} simd={use_simd} row={row} lane={lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_and_tail_tiles_match_reference_chains() {
        for r in 1..=MR {
            for nr in [1, 7, 8, 9, NR] {
                check_tile(r, 5, nr, None);
            }
        }
        check_tile(MR, 256, NR, None);
    }

    #[test]
    fn zero_times_nan_poisons_only_its_lane() {
        check_tile(MR, 3, NR, Some((1, 2)));
        // Tail tile: the poisoned lane sits inside nr, pad lanes beyond.
        check_tile(MR, 3, 5, Some((0, 4)));
    }

    #[test]
    fn reload_continues_the_chain() {
        let kc = 4;
        let a = vec![1.5f32; 2 * kc * MR];
        let b = vec![0.25f32; 2 * kc * NR];
        for use_simd in [false, true] {
            let mut once = vec![0.0f32; MR * NR];
            tile(MR, &a, &b, &mut once, NR, 2 * kc, NR, true, use_simd);

            let mut split = vec![0.0f32; MR * NR];
            tile(MR, &a[..kc * MR], &b[..kc * NR], &mut split, NR, kc, NR, true, use_simd);
            tile(MR, &a[..kc * MR], &b[..kc * NR], &mut split, NR, kc, NR, false, use_simd);
            // 2·kc identical steps in one block ≡ kc steps + reloaded kc steps.
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&once), bits(&split), "simd={use_simd}");
        }
    }
}
