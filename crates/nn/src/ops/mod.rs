//! Forward/backward kernels for the heavier operations, kept as pure
//! functions so they can be unit-tested and benchmarked independently of the
//! autograd graph.

/// 2-D convolution via im2col.
pub mod conv;
/// Blocked GEMM kernels and the kernel threading knob.
pub mod gemm;
/// Layer normalization.
pub mod norm;
/// The persistent kernel thread pool (the only thread-creating module).
pub mod pool;
/// SIMD micro-kernels for the blocked GEMM (the one sanctioned `unsafe`
/// module; bit-compatible scalar fallback for non-x86/miri/loom builds).
pub(crate) mod simd;
/// Row-wise softmax and log-softmax.
pub mod softmax;
