//! Forward/backward kernels for the heavier operations, kept as pure
//! functions so they can be unit-tested and benchmarked independently of the
//! autograd graph.

pub mod conv;
pub mod norm;
pub mod softmax;
