//! Fully connected layer: `y = x·W + b`.

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::param::{ParamId, ParamStore};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer mapping `[B, in_dim] -> [B, out_dim]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers weights (Kaiming-normal) and zero biases in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w =
            store.add(format!("{name}.w"), init::kaiming_normal(&[in_dim, out_dim], in_dim, rng));
        let b = store.add(format!("{name}.b"), crate::tensor::Tensor::zeros(&[out_dim]));
        Self { w, b, in_dim, out_dim }
    }

    /// Like [`Self::new`] but with the small-scale initialization used for
    /// policy/value output heads (keeps initial policies near uniform).
    pub fn new_head(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init::policy_head(&[in_dim, out_dim], rng));
        let b = store.add(format!("{name}.b"), crate::tensor::Tensor::zeros(&[out_dim]));
        Self { w, b, in_dim, out_dim }
    }

    /// Applies the layer to a `[B, in_dim]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        assert_eq!(
            g.shape(x),
            &[g.shape(x)[0], self.in_dim],
            "Linear expected [B, {}], got {:?}",
            self.in_dim,
            g.shape(x)
        );
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles `(w, b)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        // Overwrite with known values: W = 0, b = [1, 2] -> y == b.
        store.value_mut(layer.params().0).fill_zero();
        *store.value_mut(layer.params().1) = Tensor::from_vec(&[2], vec![1.0, 2.0]);

        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[4, 3]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[4, 2]);
        for r in 0..4 {
            assert_eq!(g.value(y).at2(r, 0), 1.0);
            assert_eq!(g.value(y).at2(r, 1), 2.0);
        }
    }

    #[test]
    fn gradient_descent_fits_linear_map() {
        // One dense layer must fit y = 2x - 1 with plain SGD.
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 1, 1, &mut rng);
        let xs: Vec<f32> = (0..8).map(|i| i as f32 / 4.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        for _ in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.leaf(Tensor::from_vec(&[8, 1], xs.clone()));
            let t = g.leaf(Tensor::from_vec(&[8, 1], ys.clone()));
            let p = layer.forward(&mut g, &store, x);
            let d = g.sub(p, t);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss, &mut store);
            store.for_each_trainable(|v, gr| v.add_scaled(gr, -0.3));
        }
        let (w, b) = layer.params();
        assert!((store.value(w).data()[0] - 2.0).abs() < 0.05, "w={:?}", store.value(w));
        assert!((store.value(b).data()[0] + 1.0).abs() < 0.05, "b={:?}", store.value(b));
    }

    #[test]
    #[should_panic(expected = "Linear expected")]
    fn wrong_input_width_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[1, 4]));
        layer.forward(&mut g, &store, x);
    }
}
