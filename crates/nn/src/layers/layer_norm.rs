//! Layer-norm layer with learnable scale and shift.

use crate::graph::{Graph, NodeId};
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Layer normalization over the trailing dimension of `[rows, feat]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerNormLayer {
    gamma: ParamId,
    beta: ParamId,
    feat: usize,
    eps: f32,
}

impl LayerNormLayer {
    /// Registers `gamma = 1`, `beta = 0` in `store`.
    pub fn new(store: &mut ParamStore, name: &str, feat: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(&[feat]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(&[feat]));
        Self { gamma, beta, feat, eps: 1e-5 }
    }

    /// Applies layer norm to a `[rows, feat]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        assert_eq!(g.shape(x)[1], self.feat, "LayerNorm feature width mismatch");
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    /// Feature width.
    pub fn feat(&self) -> usize {
        self.feat
    }

    /// Parameter handles `(gamma, beta)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.gamma, self.beta)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fresh_layer_is_pure_normalization() {
        let mut store = ParamStore::new();
        let ln = LayerNormLayer::new(&mut store, "ln", 4);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 4], vec![2., 4., 6., 8.]));
        let y = ln.forward(&mut g, &store, x);
        let mean: f32 = g.value(y).data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn gamma_beta_are_trainable() {
        let mut store = ParamStore::new();
        let ln = LayerNormLayer::new(&mut store, "ln", 2);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, 2], vec![0., 1.]));
        let y = ln.forward(&mut g, &store, x);
        let loss = g.sum_all(y);
        g.backward(loss, &mut store);
        let (gamma, beta) = ln.params();
        // beta gradient is exactly 1 per feature for a sum loss.
        assert_eq!(store.grad(beta).data(), &[1.0, 1.0]);
        // gamma gradient is the normalized input.
        assert!(store.grad(gamma).data()[0] < 0.0);
        assert!(store.grad(gamma).data()[1] > 0.0);
    }
}
