//! Multi-layer perceptron: a stack of [`Linear`] layers with a fixed
//! activation between them.

use crate::graph::{Graph, NodeId};
use crate::layers::Linear;
use crate::param::ParamStore;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hidden-layer activation function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation (pure affine stack).
    Identity,
}

impl Activation {
    fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// A feed-forward network `dims[0] -> dims[1] -> ... -> dims.last()`,
/// applying `activation` after every layer except the last.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds the stack, registering all parameters in `store`. `dims` must
    /// list at least an input and an output width.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Applies the network to a `[B, dims[0]]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, mut x: NodeId) -> NodeId {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            if i != last {
                x = self.activation.apply(g, x);
            }
        }
        x
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        match self.layers.last() {
            Some(l) => l.out_dim(),
            None => unreachable!("Mlp::new requires at least two dims, so layers is non-empty"),
        }
    }

    /// The constituent dense layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[5, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 5);
        assert_eq!(mlp.out_dim(), 3);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[7, 5]));
        let y = mlp.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[7, 3]);
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic nonlinear sanity check: a 2-4-1 tanh MLP must fit XOR.
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let xs = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Tensor::from_vec(&[4, 1], vec![0., 1., 1., 0.]);
        let mut last = f32::INFINITY;
        for _ in 0..2000 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.leaf(xs.clone());
            let t = g.leaf(ys.clone());
            let p = mlp.forward(&mut g, &store, x);
            let s = g.sigmoid(p);
            let d = g.sub(s, t);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            last = g.backward(loss, &mut store);
            store.for_each_trainable(|v, gr| v.add_scaled(gr, -1.0));
        }
        assert!(last < 0.02, "XOR loss stuck at {last}");
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn single_dim_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        Mlp::new(&mut store, "m", &[4], Activation::Relu, &mut rng);
    }
}
