//! Neural-network layers built on the autograd [`crate::graph::Graph`].
//!
//! A layer registers its parameters in a [`crate::param::ParamStore`] at
//! construction time and holds only [`crate::param::ParamId`]s; `forward`
//! re-binds those parameters into whichever graph the caller is building.

mod conv2d;
mod embedding;
mod layer_norm;
mod linear;
mod mlp;

pub use conv2d::Conv2dLayer;
pub use embedding::Embedding;
pub use layer_norm::LayerNormLayer;
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
