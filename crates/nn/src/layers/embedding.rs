//! Embedding table with optional freezing.
//!
//! The spatial curiosity model of DRL-CEWS uses a *static* (randomly
//! initialized, never trained) embedding of grid positions — Burda et al.'s
//! observation that random features are stable curiosity targets. The same
//! layer with `trainable = true` serves as an ordinary embedding.

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A `[vocab, dim]` lookup table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers a N(0,1)-initialized table; `trainable = false` freezes it.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        vocab: usize,
        dim: usize,
        trainable: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let t = init::randn(&[vocab, dim], 1.0, rng);
        let table = if trainable {
            store.add(format!("{name}.table"), t)
        } else {
            store.add_frozen(format!("{name}.table"), t)
        };
        Self { table, vocab, dim }
    }

    /// Looks up a batch of indices → `[len, dim]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, indices: Vec<usize>) -> NodeId {
        let t = g.param(store, self.table);
        g.gather_rows(t, indices)
    }

    /// Direct (graph-free) lookup for inference-time feature extraction.
    pub fn lookup(&self, store: &ParamStore, index: usize) -> Vec<f32> {
        assert!(index < self.vocab, "embedding index {index} out of {}", self.vocab);
        let t = store.value(self.table);
        t.data()[index * self.dim..(index + 1) * self.dim].to_vec()
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The table's parameter handle.
    pub fn param(&self) -> ParamId {
        self.table
    }

    /// The full table tensor.
    pub fn table<'s>(&self, store: &'s ParamStore) -> &'s Tensor {
        store.value(self.table)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 10, 4, false, &mut rng);
        let direct = emb.lookup(&store, 7);
        let mut g = Graph::new();
        let node = emb.forward(&mut g, &store, vec![7]);
        assert_eq!(g.value(node).data(), &direct[..]);
    }

    #[test]
    fn frozen_embedding_never_changes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, false, &mut rng);
        let before = emb.table(&store).clone();
        let mut g = Graph::new();
        let node = emb.forward(&mut g, &store, vec![0, 1, 2]);
        let sq = g.square(node);
        let loss = g.sum_all(sq);
        g.backward(loss, &mut store);
        store.for_each_trainable(|v, gr| v.add_scaled(gr, -0.1));
        assert_eq!(emb.table(&store), &before);
    }

    #[test]
    fn trainable_embedding_receives_grads() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 5, 3, true, &mut rng);
        let mut g = Graph::new();
        let node = emb.forward(&mut g, &store, vec![2]);
        let loss = g.sum_all(node);
        g.backward(loss, &mut store);
        let grad = store.grad(emb.param());
        assert_eq!(&grad.data()[6..9], &[1.0, 1.0, 1.0]);
        assert_eq!(&grad.data()[..6], &[0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_vocab_lookup_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let emb = Embedding::new(&mut store, "e", 3, 2, false, &mut rng);
        emb.lookup(&store, 3);
    }
}
