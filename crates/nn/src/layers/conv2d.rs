//! Convolutional layer wrapping [`crate::ops::conv`].

use crate::graph::{Graph, NodeId};
use crate::init;
use crate::ops::conv::ConvCfg;
use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A 2-D convolution layer `[B, C_in, H, W] -> [B, C_out, HO, WO]`.
///
/// `ConvCfg` derives its own serde impls (field-for-field map encoding), so
/// the layer serializes as a plain three-field map.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Conv2dLayer {
    w: ParamId,
    b: ParamId,
    cfg: ConvCfg,
}

impl Conv2dLayer {
    /// Registers a Kaiming-initialized kernel and zero bias in `store`.
    pub fn new(store: &mut ParamStore, name: &str, cfg: ConvCfg, rng: &mut impl Rng) -> Self {
        let fan_in = cfg.in_channels * cfg.kernel * cfg.kernel;
        let w = store.add(
            format!("{name}.w"),
            init::kaiming_normal(
                &[cfg.out_channels, cfg.in_channels, cfg.kernel, cfg.kernel],
                fan_in,
                rng,
            ),
        );
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[cfg.out_channels]));
        Self { w, b, cfg }
    }

    /// Applies the convolution to a `[B, C_in, H, W]` node.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        g.conv2d(x, w, b, self.cfg)
    }

    /// The layer's static configuration.
    pub fn cfg(&self) -> &ConvCfg {
        &self.cfg
    }

    /// Parameter handles `(w, b)`.
    pub fn params(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let cfg = ConvCfg { in_channels: 3, out_channels: 8, kernel: 3, stride: 2, padding: 1 };
        let layer = Conv2dLayer::new(&mut store, "c1", cfg, &mut rng);
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[2, 3, 16, 16]));
        let y = layer.forward(&mut g, &store, x);
        assert_eq!(g.shape(y), &[2, 8, 8, 8]);
    }

    #[test]
    fn training_reduces_loss_on_edge_filter_task() {
        // Teach a single conv to detect a vertical edge via SGD: loss must
        // drop by an order of magnitude.
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let cfg = ConvCfg { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let layer = Conv2dLayer::new(&mut store, "c", cfg, &mut rng);

        // Input: step image; target: response at the step location only.
        let mut img = vec![0.0f32; 36];
        for r in 0..6 {
            for c in 3..6 {
                img[r * 6 + c] = 1.0;
            }
        }
        let x = Tensor::from_vec(&[1, 1, 6, 6], img);
        let mut tgt = vec![0.0f32; 36];
        for r in 0..6 {
            tgt[r * 6 + 3] = 1.0;
        }
        let target = Tensor::from_vec(&[1, 1, 6, 6], tgt);

        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..400 {
            store.zero_grads();
            let mut g = Graph::new();
            let xn = g.leaf(x.clone());
            let tn = g.leaf(target.clone());
            let y = layer.forward(&mut g, &store, xn);
            let d = g.sub(y, tn);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            let lv = g.backward(loss, &mut store);
            if step == 0 {
                first = lv;
            }
            last = lv;
            store.for_each_trainable(|v, gr| v.add_scaled(gr, -0.1));
        }
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }
}
