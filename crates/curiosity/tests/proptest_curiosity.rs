//! Randomized property tests for the intrinsic-reward models.
//!
//! The original proptest harness is unavailable offline, so each property
//! runs over a fixed number of seeded random cases instead — same
//! assertions, deterministic inputs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_curiosity::prelude::*;
use vc_env::geometry::Point;

const CASES: usize = 48;

fn spatial_cfg(workers: usize) -> vc_curiosity::spatial::SpatialCuriosityConfig {
    vc_curiosity::spatial::SpatialCuriosityConfig {
        feature: FeatureKind::Embedding,
        structure: StructureKind::Shared,
        eta: 0.3,
        grid: 8,
        size_x: 8.0,
        size_y: 8.0,
        num_workers: workers,
        seed: 5,
    }
}

fn point(rng: &mut StdRng) -> Point {
    Point::new(rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0))
}

#[test]
fn spatial_rewards_are_nonnegative_and_finite() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let w = rng.gen_range(1usize..4);
        let pos: Vec<Point> = (0..w).map(|_| point(&mut rng)).collect();
        let moves: Vec<usize> = (0..w).map(|_| rng.gen_range(0usize..9)).collect();
        let mut c = SpatialCuriosity::new(spatial_cfg(w));
        let next: Vec<Point> = pos.iter().map(|p| Point::new((p.x + 1.0).min(8.0), p.y)).collect();
        let r = c.intrinsic_reward(&TransitionView {
            state: &[],
            next_state: &[],
            positions: &pos,
            next_positions: &next,
            moves: &moves,
        });
        assert!(r >= 0.0, "negative intrinsic reward {r}");
        assert!(r.is_finite());
    }
}

#[test]
fn spatial_error_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let p = point(&mut rng);
        let mv = rng.gen_range(0usize..9);
        let c = SpatialCuriosity::new(spatial_cfg(1));
        let next = Point::new(p.x, (p.y + 1.0).min(8.0));
        let a = c.prediction_error(0, &p, mv, &next);
        let b = c.prediction_error(0, &p, mv, &next);
        assert_eq!(a, b);
    }
}

#[test]
fn training_never_increases_error_on_the_trained_pair() {
    use vc_nn::optim::{Adam, Optimizer};
    let mut case_rng = StdRng::seed_from_u64(13);
    for _ in 0..8 {
        let p = point(&mut case_rng);
        let mv = case_rng.gen_range(0usize..9);
        let iters = case_rng.gen_range(5usize..40);
        let mut c = SpatialCuriosity::new(spatial_cfg(1));
        let next = Point::new((p.x + 0.7).min(8.0), p.y);
        let before = c.prediction_error(0, &p, mv, &next);
        let mut rng = StdRng::seed_from_u64(1);
        let mut opt = Adam::new(5e-3);
        let pos = [p];
        let nx = [next];
        let mvs = [mv];
        for _ in 0..iters {
            c.intrinsic_reward(&TransitionView {
                state: &[],
                next_state: &[],
                positions: &pos,
                next_positions: &nx,
                moves: &mvs,
            });
            c.params_mut().zero_grads();
            c.compute_grads(16, &mut rng);
            opt.step(c.params_mut());
            c.clear_buffer();
        }
        let after = c.prediction_error(0, &p, mv, &next);
        assert!(after <= before + 1e-4, "error rose {before} -> {after}");
    }
}

#[test]
fn rnd_rewards_nonnegative() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES {
        let state: Vec<f32> = (0..12).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let mut r = Rnd::new(RndConfig::for_state(12));
        let view = TransitionView {
            state: &[],
            next_state: &state,
            positions: &[],
            next_positions: &[],
            moves: &[],
        };
        let reward = r.intrinsic_reward(&view);
        assert!(reward >= 0.0 && reward.is_finite());
    }
}

#[test]
fn icm_rewards_nonnegative() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..CASES {
        let s: Vec<f32> = (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let sn: Vec<f32> = (0..10).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mv = rng.gen_range(0usize..9);
        let mut icm = Icm::new(IcmConfig::for_state(10, 1));
        let moves = [mv];
        let view = TransitionView {
            state: &s,
            next_state: &sn,
            positions: &[],
            next_positions: &[],
            moves: &moves,
        };
        let reward = icm.intrinsic_reward(&view);
        assert!(reward >= 0.0 && reward.is_finite());
    }
}
