//! Property-based tests for the intrinsic-reward models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_curiosity::prelude::*;
use vc_env::geometry::Point;

fn spatial_cfg(workers: usize) -> vc_curiosity::spatial::SpatialCuriosityConfig {
    vc_curiosity::spatial::SpatialCuriosityConfig {
        feature: FeatureKind::Embedding,
        structure: StructureKind::Shared,
        eta: 0.3,
        grid: 8,
        size_x: 8.0,
        size_y: 8.0,
        num_workers: workers,
        seed: 5,
    }
}

fn point() -> impl Strategy<Value = Point> {
    (0.0f32..8.0, 0.0f32..8.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spatial_rewards_are_nonnegative_and_finite(
        pos in proptest::collection::vec(point(), 1..4),
        moves in proptest::collection::vec(0usize..9, 4),
    ) {
        let w = pos.len();
        let mut c = SpatialCuriosity::new(spatial_cfg(w));
        let next: Vec<Point> = pos.iter().map(|p| Point::new((p.x + 1.0).min(8.0), p.y)).collect();
        let mv = &moves[..w];
        let r = c.intrinsic_reward(&TransitionView {
            state: &[],
            next_state: &[],
            positions: &pos,
            next_positions: &next,
            moves: mv,
        });
        prop_assert!(r >= 0.0, "negative intrinsic reward {r}");
        prop_assert!(r.is_finite());
    }

    #[test]
    fn spatial_error_is_deterministic(p in point(), mv in 0usize..9) {
        let c = SpatialCuriosity::new(spatial_cfg(1));
        let next = Point::new(p.x, (p.y + 1.0).min(8.0));
        let a = c.prediction_error(0, &p, mv, &next);
        let b = c.prediction_error(0, &p, mv, &next);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn training_never_increases_error_on_the_trained_pair(
        p in point(), mv in 0usize..9, iters in 5usize..40,
    ) {
        use vc_nn::optim::{Adam, Optimizer};
        let mut c = SpatialCuriosity::new(spatial_cfg(1));
        let next = Point::new((p.x + 0.7).min(8.0), p.y);
        let before = c.prediction_error(0, &p, mv, &next);
        let mut rng = StdRng::seed_from_u64(1);
        let mut opt = Adam::new(5e-3);
        let pos = [p];
        let nx = [next];
        let mvs = [mv];
        for _ in 0..iters {
            c.intrinsic_reward(&TransitionView {
                state: &[],
                next_state: &[],
                positions: &pos,
                next_positions: &nx,
                moves: &mvs,
            });
            c.params_mut().zero_grads();
            c.compute_grads(16, &mut rng);
            opt.step(c.params_mut());
            c.clear_buffer();
        }
        let after = c.prediction_error(0, &p, mv, &next);
        prop_assert!(after <= before + 1e-4, "error rose {before} -> {after}");
    }

    #[test]
    fn rnd_rewards_nonnegative(state in proptest::collection::vec(-2.0f32..2.0, 12)) {
        let mut r = Rnd::new(RndConfig::for_state(12));
        let view = TransitionView {
            state: &[],
            next_state: &state,
            positions: &[],
            next_positions: &[],
            moves: &[],
        };
        let reward = r.intrinsic_reward(&view);
        prop_assert!(reward >= 0.0 && reward.is_finite());
    }

    #[test]
    fn icm_rewards_nonnegative(
        s in proptest::collection::vec(-1.0f32..1.0, 10),
        sn in proptest::collection::vec(-1.0f32..1.0, 10),
        mv in 0usize..9,
    ) {
        let mut icm = Icm::new(IcmConfig::for_state(10, 1));
        let moves = [mv];
        let view = TransitionView {
            state: &s,
            next_state: &sn,
            positions: &[],
            next_positions: &[],
            moves: &moves,
        };
        let reward = icm.intrinsic_reward(&view);
        prop_assert!(reward >= 0.0 && reward.is_finite());
    }
}
