//! The spatial curiosity model (Section V-C, Algorithm 3).
//!
//! A forward model `f` predicts the feature of a worker's *next position*
//! from its current position and route-planning decision:
//! `φ̂(l_{t+1}) = f(φ(l_t), v_t)` (Eqn 15). The prediction error
//! `Loss^f = ‖φ̂(l_{t+1}) − φ(l_{t+1})‖²` (Eqn 16) is both the training loss
//! and — scaled by η — the intrinsic reward (Eqn 17). Novel positions and
//! novel actions predict badly, so they pay out curiosity.
//!
//! **Function-class realization.** Because the feature targets are *static
//! random* codes (Burda-style), predicting them is pure memorization: a
//! small MLP on the 8-dim input code plateaus far from the codebook and the
//! intrinsic reward never fades (destroying the Fig. 9 dynamics). We
//! therefore realize `f` as a **linear codebook**: one trainable row per
//! `(grid cell, move)` pair, looked up by the pair index. Gradient descent
//! on Eqn (16) then decays the error *exactly where the worker has been* —
//! fast fading at visited transitions, full curiosity at novel ones — which
//! is the behavior the paper demonstrates. The feature choice of Fig. 4
//! (embedding vs direct) applies to the prediction *targets*.
//!
//! Two structures (Section VII-D): **shared** — one forward model serves all
//! workers sequentially (parameters don't grow with W, and workers benefit
//! from each other's experience); **independent** — one model per worker.

use crate::features::{FeatureKind, PositionFeature};
use crate::traits::{Curiosity, TransitionView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_env::geometry::Point;
use vc_nn::prelude::*;

/// Shared vs independent forward-model structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructureKind {
    /// One forward model for all workers (the paper's final choice).
    Shared,
    /// One forward model per worker.
    Independent,
}

/// Configuration of a spatial curiosity model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpatialCuriosityConfig {
    /// Position-feature extractor variant.
    pub feature: FeatureKind,
    /// Predictor structure (joint or per-worker).
    pub structure: StructureKind,
    /// Intrinsic-reward scale η (0.3 in the paper).
    pub eta: f32,
    /// Grid resolution used for position discretization and the embedding
    /// feature.
    pub grid: usize,
    /// Space width (for coordinate normalization).
    pub size_x: f32,
    /// Space height (for coordinate normalization).
    pub size_y: f32,
    /// Number of workers.
    pub num_workers: usize,
    /// Seed for feature tables and model init.
    pub seed: u64,
}

impl SpatialCuriosityConfig {
    /// The paper's final configuration: shared structure, embedding feature,
    /// η = 0.3.
    pub fn paper_default(grid: usize, size_x: f32, size_y: f32, num_workers: usize) -> Self {
        Self {
            feature: FeatureKind::Embedding,
            structure: StructureKind::Shared,
            eta: 0.3,
            grid,
            size_x,
            size_y,
            num_workers,
            seed: 7,
        }
    }
}

/// One recorded `(pair index, φ(l_{t+1}))` sample, per worker.
#[derive(Clone, Debug)]
struct Sample {
    worker: usize,
    pair: usize,
    next_feat: Vec<f32>,
}

/// The spatial curiosity model.
pub struct SpatialCuriosity {
    cfg: SpatialCuriosityConfig,
    store: ParamStore,
    features: Vec<PositionFeature>,
    /// Trainable prediction codebooks, one per model: `[grid²·9, feat_dim]`.
    models: Vec<Embedding>,
    buffer: Vec<Sample>,
}

const NUM_MOVES: usize = vc_env::action::NUM_MOVES;

impl SpatialCuriosity {
    /// Builds the model (feature extractors are frozen; the prediction
    /// codebooks are trainable and start at zero, so the initial error is
    /// exactly the target-feature energy everywhere).
    pub fn new(cfg: SpatialCuriosityConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_models = match cfg.structure {
            StructureKind::Shared => 1,
            StructureKind::Independent => cfg.num_workers,
        };
        let mut features = Vec::with_capacity(n_models);
        let mut models = Vec::with_capacity(n_models);
        for i in 0..n_models {
            let f = PositionFeature::new(
                cfg.feature,
                cfg.grid,
                cfg.size_x,
                cfg.size_y,
                &mut store,
                &format!("cur.feat{i}"),
                cfg.seed.wrapping_add(i as u64),
            );
            let dim = f.dim();
            let m = Embedding::new(
                &mut store,
                &format!("cur.fwd{i}"),
                cfg.grid * cfg.grid * NUM_MOVES,
                dim,
                true,
                &mut rng,
            );
            store.value_mut(m.param()).fill_zero();
            features.push(f);
            models.push(m);
        }
        Self { cfg, store, features, models, buffer: Vec::new() }
    }

    /// The model configuration.
    pub fn config(&self) -> &SpatialCuriosityConfig {
        &self.cfg
    }

    fn model_index(&self, worker: usize) -> usize {
        match self.cfg.structure {
            StructureKind::Shared => 0,
            StructureKind::Independent => worker,
        }
    }

    /// Discretizes a position and move into the codebook pair index.
    fn pair_index(&self, pos: &Point, mv: usize) -> usize {
        let g = self.cfg.grid;
        let cx = ((pos.x / self.cfg.size_x * g as f32) as usize).min(g - 1);
        let cy = ((pos.y / self.cfg.size_y * g as f32) as usize).min(g - 1);
        (cy * g + cx) * NUM_MOVES + mv
    }

    /// Forward-model prediction error for one worker transition (graph-free
    /// readout used for the per-step intrinsic reward and for Fig. 9 heat
    /// maps).
    pub fn prediction_error(&self, worker: usize, pos: &Point, mv: usize, next_pos: &Point) -> f32 {
        let mi = self.model_index(worker);
        let next_feat = self.features[mi].extract(&self.store, next_pos);
        let pred = self.models[mi].lookup(&self.store, self.pair_index(pos, mv));
        let dim = next_feat.len() as f32;
        pred.iter().zip(&next_feat).map(|(a, b)| (a - b) * (a - b)).sum::<f32>() / dim
    }
}

impl Curiosity for SpatialCuriosity {
    /// Algorithm 3: per worker, embed both positions, evaluate `Loss^f`, and
    /// return `η · Loss^f` averaged over workers. Also records the samples
    /// for the next gradient round.
    fn intrinsic_reward(&mut self, t: &TransitionView<'_>) -> f32 {
        assert_eq!(t.positions.len(), t.moves.len());
        assert_eq!(t.positions.len(), t.next_positions.len());
        let w = t.positions.len();
        let mut total = 0.0;
        for wi in 0..w {
            total +=
                self.prediction_error(wi, &t.positions[wi], t.moves[wi], &t.next_positions[wi]);
            let mi = self.model_index(wi);
            let next_feat = self.features[mi].extract(&self.store, &t.next_positions[wi]);
            self.buffer.push(Sample {
                worker: wi,
                pair: self.pair_index(&t.positions[wi], t.moves[wi]),
                next_feat,
            });
        }
        self.cfg.eta * total / w.max(1) as f32
    }

    /// Minimizes Eqn (16) over a sampled minibatch, accumulating gradients
    /// into the curiosity store (shipped to the curiosity gradient buffer).
    fn compute_grads(&mut self, minibatch: usize, rng: &mut StdRng) {
        if self.buffer.is_empty() {
            return;
        }
        let mut idx: Vec<usize> = (0..self.buffer.len()).collect();
        idx.shuffle(rng);
        idx.truncate(minibatch.max(1));
        // Group per model so each model sees one batched gather.
        let n_models = self.models.len();
        for mi in 0..n_models {
            let rows: Vec<&Sample> = idx
                .iter()
                .map(|&i| &self.buffer[i])
                .filter(|s| self.model_index(s.worker) == mi)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let dim = self.features[mi].dim();
            let b = rows.len();
            let pairs: Vec<usize> = rows.iter().map(|s| s.pair).collect();
            let mut targets = Vec::with_capacity(b * dim);
            for s in &rows {
                targets.extend_from_slice(&s.next_feat);
            }
            let mut g = Graph::new();
            let target = g.leaf(Tensor::from_vec(&[b, dim], targets));
            let pred = self.models[mi].forward(&mut g, &self.store, pairs);
            let d = g.sub(pred, target);
            let sq = g.square(d);
            let loss = g.mean_all(sq);
            g.backward(loss, &mut self.store);
        }
    }

    fn clear_buffer(&mut self) {
        self.buffer.clear();
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn as_spatial(&self) -> Option<&SpatialCuriosity> {
        Some(self)
    }

    fn name(&self) -> &'static str {
        match (self.cfg.structure, self.cfg.feature) {
            (StructureKind::Shared, FeatureKind::Embedding) => "shared-embedding",
            (StructureKind::Shared, FeatureKind::Direct) => "shared-direct",
            (StructureKind::Independent, FeatureKind::Embedding) => "independent-embedding",
            (StructureKind::Independent, FeatureKind::Direct) => "independent-direct",
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use vc_nn::optim::{Adam, Optimizer};

    fn cfg(
        structure: StructureKind,
        feature: FeatureKind,
        workers: usize,
    ) -> SpatialCuriosityConfig {
        SpatialCuriosityConfig {
            feature,
            structure,
            eta: 0.3,
            grid: 8,
            size_x: 8.0,
            size_y: 8.0,
            num_workers: workers,
            seed: 11,
        }
    }

    fn view<'a>(pos: &'a [Point], next: &'a [Point], moves: &'a [usize]) -> TransitionView<'a> {
        TransitionView { state: &[], next_state: &[], positions: pos, next_positions: next, moves }
    }

    #[test]
    fn intrinsic_reward_is_positive_and_scaled_by_eta() {
        let mut c = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 1));
        let pos = [Point::new(1.0, 1.0)];
        let next = [Point::new(2.0, 1.0)];
        let moves = [3usize];
        let r = c.intrinsic_reward(&view(&pos, &next, &moves));
        assert!(r > 0.0, "fresh model must be curious");
        let err = c.prediction_error(0, &pos[0], 3, &next[0]);
        assert!((r - 0.3 * err).abs() < 1e-5);
    }

    #[test]
    fn pair_index_distinguishes_cells_and_moves() {
        let c = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 1));
        let a = c.pair_index(&Point::new(1.5, 1.5), 3);
        let b = c.pair_index(&Point::new(1.5, 1.5), 4);
        let d = c.pair_index(&Point::new(2.5, 1.5), 3);
        assert_ne!(a, b);
        assert_ne!(a, d);
        // Edge positions clamp into the grid.
        let e = c.pair_index(&Point::new(8.0, 8.0), 0);
        assert!(e < 8 * 8 * NUM_MOVES);
    }

    #[test]
    fn training_reduces_prediction_error_on_repeated_transition() {
        // The Fig. 9 effect: repeatedly visiting the same transition drives
        // the curiosity value at that location down.
        let mut c = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 1));
        let pos = [Point::new(1.5, 1.5)];
        let next = [Point::new(2.5, 1.5)];
        let moves = [3usize];
        let before = c.prediction_error(0, &pos[0], 3, &next[0]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = Adam::new(1e-2);
        for _ in 0..400 {
            c.intrinsic_reward(&view(&pos, &next, &moves));
            c.params_mut().zero_grads();
            c.compute_grads(32, &mut rng);
            opt.step(c.params_mut());
            c.clear_buffer();
        }
        let after = c.prediction_error(0, &pos[0], 3, &next[0]);
        assert!(after < before / 10.0, "error {before} -> {after}: curiosity did not fade");
    }

    #[test]
    fn novel_location_stays_more_curious_than_trained_one() {
        let mut c = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 1));
        let pos = [Point::new(1.5, 1.5)];
        let next = [Point::new(2.5, 1.5)];
        let moves = [3usize];
        let mut rng = StdRng::seed_from_u64(1);
        let mut opt = Adam::new(1e-2);
        for _ in 0..150 {
            c.intrinsic_reward(&view(&pos, &next, &moves));
            c.params_mut().zero_grads();
            c.compute_grads(32, &mut rng);
            opt.step(c.params_mut());
            c.clear_buffer();
        }
        let trained = c.prediction_error(0, &pos[0], 3, &next[0]);
        let novel = c.prediction_error(0, &Point::new(6.5, 6.5), 1, &Point::new(6.5, 7.5));
        assert!(novel > trained * 5.0, "novel {novel} vs trained {trained}");
    }

    #[test]
    fn shared_structure_param_count_independent_of_workers() {
        let c2 = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 2));
        let c8 = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 8));
        assert_eq!(c2.params().num_scalars(), c8.params().num_scalars());
    }

    #[test]
    fn independent_structure_params_scale_with_workers() {
        let c2 = SpatialCuriosity::new(cfg(StructureKind::Independent, FeatureKind::Embedding, 2));
        let c4 = SpatialCuriosity::new(cfg(StructureKind::Independent, FeatureKind::Embedding, 4));
        assert_eq!(c4.params().num_scalars(), 2 * c2.params().num_scalars());
    }

    #[test]
    fn independent_models_learn_separately() {
        let mut c =
            SpatialCuriosity::new(cfg(StructureKind::Independent, FeatureKind::Embedding, 2));
        // Train only worker 0's moving transition; worker 1 stays put.
        let pos = [Point::new(1.5, 1.5), Point::new(5.5, 5.5)];
        let next = [Point::new(2.5, 1.5), Point::new(5.5, 5.5)];
        let moves = [3usize, 0usize];
        let mut rng = StdRng::seed_from_u64(2);
        let mut opt = Adam::new(1e-2);
        for _ in 0..60 {
            c.intrinsic_reward(&view(&pos, &next, &moves));
            c.params_mut().zero_grads();
            c.compute_grads(64, &mut rng);
            opt.step(c.params_mut());
            c.clear_buffer();
        }
        // Worker 0's trained transition faded relative to a fresh model.
        let w0 = c.prediction_error(0, &pos[0], 3, &next[0]);
        let fresh =
            SpatialCuriosity::new(cfg(StructureKind::Independent, FeatureKind::Embedding, 2));
        let w0_fresh = fresh.prediction_error(0, &pos[0], 3, &next[0]);
        assert!(w0 < w0_fresh, "worker 0 model did not learn");
        // Worker 1's model never saw worker 0's transition: its error there
        // is untouched (no cross-worker leakage).
        let w1 = c.prediction_error(1, &pos[0], 3, &next[0]);
        let w1_fresh = fresh.prediction_error(1, &pos[0], 3, &next[0]);
        assert!((w1 - w1_fresh).abs() < 1e-6, "independent models leaked: {w1} vs {w1_fresh}");
    }

    #[test]
    fn variant_names_are_distinct() {
        let mut names = std::collections::HashSet::new();
        for s in [StructureKind::Shared, StructureKind::Independent] {
            for f in [FeatureKind::Embedding, FeatureKind::Direct] {
                names.insert(SpatialCuriosity::new(cfg(s, f, 1)).name());
            }
        }
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn direct_feature_variant_works_end_to_end() {
        let mut c = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Direct, 1));
        let pos = [Point::new(1.0, 1.0)];
        let next = [Point::new(2.0, 1.0)];
        let moves = [3usize];
        let r = c.intrinsic_reward(&view(&pos, &next, &moves));
        assert!(r >= 0.0 && r.is_finite());
        let mut rng = StdRng::seed_from_u64(3);
        c.params_mut().zero_grads();
        c.compute_grads(8, &mut rng);
        assert!(c.params().grad_global_norm() > 0.0);
    }

    #[test]
    fn embedding_targets_pay_larger_curiosity_than_direct() {
        // The Fig. 4 finding reproduced at model level: random embedding
        // targets carry more energy than normalized coordinates, so the
        // fresh-model intrinsic reward is larger and better separated.
        let mut emb = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Embedding, 1));
        let mut dir = SpatialCuriosity::new(cfg(StructureKind::Shared, FeatureKind::Direct, 1));
        let pos = [Point::new(3.0, 3.0)];
        let next = [Point::new(4.0, 3.0)];
        let moves = [3usize];
        let re = emb.intrinsic_reward(&view(&pos, &next, &moves));
        let rd = dir.intrinsic_reward(&view(&pos, &next, &moves));
        assert!(re > rd, "embedding reward {re} should exceed direct {rd}");
    }
}
