//! # vc-curiosity — intrinsic-reward models for DRL-CEWS
//!
//! The paper's **spatial curiosity model** (Section V-C, Algorithm 3) in all
//! four variants studied in Section VII-D — {shared, independent} structure ×
//! {embedding, direct} position features — plus the **RND** comparator of
//! Fig. 4 and the original **ICM** of Pathak et al. for reference.
//!
//! All models implement the [`traits::Curiosity`] interface: they return the
//! per-transition intrinsic reward `r_t^{int}` (recording the sample), and on
//! demand accumulate forward-model gradients into their own parameter store,
//! which the chief thread sums through the *curiosity gradient buffer*
//! (Fig. 1) and steps with Adam.

pub mod count;
pub mod features;
pub mod icm;
pub mod rnd;
pub mod spatial;
pub mod traits;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::count::{CountCuriosity, CountCuriosityConfig};
    pub use crate::features::{FeatureKind, PositionFeature, EMBEDDING_DIM};
    pub use crate::icm::{Icm, IcmConfig};
    pub use crate::rnd::{Rnd, RndConfig};
    pub use crate::spatial::{SpatialCuriosity, SpatialCuriosityConfig, StructureKind};
    pub use crate::traits::{Curiosity, NoCuriosity, TransitionView};
}
