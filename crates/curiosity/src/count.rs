//! Count-based novelty bonus — the classic exploration baseline the spatial
//! curiosity model approaches in the limit.
//!
//! `r^int = η / √(1 + N(cell, move))`, where `N` counts how often the
//! worker has taken that move from that cell. No parameters, no gradients —
//! included to quantify how much of the spatial model's benefit is explained
//! by pure visitation novelty versus its learned prediction dynamics.

use crate::traits::{Curiosity, TransitionView};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use vc_env::geometry::Point;
use vc_nn::param::ParamStore;

const NUM_MOVES: usize = vc_env::action::NUM_MOVES;

/// Count-based curiosity configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CountCuriosityConfig {
    /// Bonus scale η.
    pub eta: f32,
    /// Grid resolution for position discretization.
    pub grid: usize,
    /// Space width (for normalizing x).
    pub size_x: f32,
    /// Space height (for normalizing y).
    pub size_y: f32,
}

impl CountCuriosityConfig {
    /// Defaults matched to a scenario.
    pub fn for_space(grid: usize, size_x: f32, size_y: f32) -> Self {
        Self { eta: 0.3, grid, size_x, size_y }
    }
}

/// The count-based intrinsic-reward model.
pub struct CountCuriosity {
    cfg: CountCuriosityConfig,
    counts: Vec<u32>,
    /// Empty store: this model has nothing to train.
    store: ParamStore,
}

impl CountCuriosity {
    /// A fresh model with all counts zero.
    pub fn new(cfg: CountCuriosityConfig) -> Self {
        let n = cfg.grid * cfg.grid * NUM_MOVES;
        Self { cfg, counts: vec![0; n], store: ParamStore::new() }
    }

    fn pair_index(&self, pos: &Point, mv: usize) -> usize {
        let g = self.cfg.grid;
        let cx = ((pos.x / self.cfg.size_x * g as f32) as usize).min(g - 1);
        let cy = ((pos.y / self.cfg.size_y * g as f32) as usize).min(g - 1);
        (cy * g + cx) * NUM_MOVES + mv
    }

    /// Visit count of a (position, move) pair.
    pub fn count(&self, pos: &Point, mv: usize) -> u32 {
        self.counts[self.pair_index(pos, mv)]
    }

    /// The bonus a pair would pay *before* being visited again.
    pub fn bonus(&self, pos: &Point, mv: usize) -> f32 {
        self.cfg.eta / (1.0 + self.count(pos, mv) as f32).sqrt()
    }

    /// Number of distinct visited pairs.
    pub fn visited_pairs(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

impl Curiosity for CountCuriosity {
    fn intrinsic_reward(&mut self, t: &TransitionView<'_>) -> f32 {
        assert_eq!(t.positions.len(), t.moves.len());
        let w = t.positions.len();
        let mut total = 0.0;
        for wi in 0..w {
            let idx = self.pair_index(&t.positions[wi], t.moves[wi]);
            total += self.cfg.eta / (1.0 + self.counts[idx] as f32).sqrt();
            self.counts[idx] += 1;
        }
        total / w.max(1) as f32
    }

    /// Counts update online in [`Self::intrinsic_reward`]; nothing to train.
    fn compute_grads(&mut self, _minibatch: usize, _rng: &mut StdRng) {}

    fn clear_buffer(&mut self) {}

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "count"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn model() -> CountCuriosity {
        CountCuriosity::new(CountCuriosityConfig::for_space(8, 8.0, 8.0))
    }

    fn view<'a>(pos: &'a [Point], moves: &'a [usize]) -> TransitionView<'a> {
        TransitionView { state: &[], next_state: &[], positions: pos, next_positions: pos, moves }
    }

    #[test]
    fn bonus_decays_with_repeat_visits() {
        let mut c = model();
        let pos = [Point::new(2.5, 2.5)];
        let moves = [3usize];
        let r1 = c.intrinsic_reward(&view(&pos, &moves));
        let r2 = c.intrinsic_reward(&view(&pos, &moves));
        let r3 = c.intrinsic_reward(&view(&pos, &moves));
        assert!((r1 - 0.3).abs() < 1e-6, "first visit pays eta, got {r1}");
        assert!(r2 < r1 && r3 < r2, "bonus must be strictly decreasing: {r1} {r2} {r3}");
        assert_eq!(c.count(&pos[0], 3), 3);
    }

    #[test]
    fn novel_pairs_pay_full_bonus() {
        let mut c = model();
        let a = [Point::new(1.5, 1.5)];
        let moves = [2usize];
        for _ in 0..10 {
            c.intrinsic_reward(&view(&a, &moves));
        }
        // An unvisited pair still pays η.
        assert!((c.bonus(&Point::new(6.5, 6.5), 7) - 0.3).abs() < 1e-6);
        assert_eq!(c.visited_pairs(), 1);
    }

    #[test]
    fn counts_are_per_move_not_per_cell() {
        let mut c = model();
        let p = [Point::new(4.0, 4.0)];
        c.intrinsic_reward(&view(&p, &[1usize]));
        assert_eq!(c.count(&p[0], 1), 1);
        assert_eq!(c.count(&p[0], 2), 0);
    }

    #[test]
    fn is_inert_to_training_machinery() {
        use rand::SeedableRng;
        let mut c = model();
        let mut rng = StdRng::seed_from_u64(0);
        c.compute_grads(32, &mut rng);
        c.clear_buffer();
        assert!(c.params().is_empty());
        assert_eq!(c.name(), "count");
    }

    #[test]
    fn worker_average_matches_manual() {
        let mut c = model();
        let pos = [Point::new(1.0, 1.0), Point::new(6.0, 6.0)];
        let moves = [0usize, 5];
        let r = c.intrinsic_reward(&view(&pos, &moves));
        // Two fresh pairs, each paying eta; mean is eta.
        assert!((r - 0.3).abs() < 1e-6);
    }
}
