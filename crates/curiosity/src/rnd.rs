//! Random network distillation (Burda et al., ICLR 2019) — the
//! state-of-the-art comparator of Section VII-D.
//!
//! A fixed random *target* network maps the full encoded state to an
//! embedding; a trainable *predictor* learns to match it. The prediction
//! error is the intrinsic reward: novel states predict badly. The paper
//! finds RND inefficient in this multi-worker system because it models the
//! conjoint state of all workers — reproducing that comparison requires the
//! faithful full-state formulation implemented here.

use crate::traits::{Curiosity, TransitionView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_nn::prelude::*;

/// RND configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RndConfig {
    /// Flat length of the encoded state.
    pub state_len: usize,
    /// Embedding width of the target network.
    pub embed_dim: usize,
    /// Predictor hidden width.
    pub hidden: usize,
    /// Intrinsic-reward scale η.
    pub eta: f32,
    /// Seed for target/predictor initialization.
    pub seed: u64,
}

impl RndConfig {
    /// Defaults matched to the curiosity-model scale of the paper setup.
    pub fn for_state(state_len: usize) -> Self {
        Self { state_len, embed_dim: 16, hidden: 64, eta: 0.3, seed: 23 }
    }
}

/// The RND intrinsic-reward model.
pub struct Rnd {
    cfg: RndConfig,
    store: ParamStore,
    /// Frozen random target (its Linear params are registered frozen).
    target: Mlp,
    predictor: Mlp,
    buffer: Vec<Vec<f32>>,
}

impl Rnd {
    /// Builds the target (frozen) and predictor (trainable) networks.
    pub fn new(cfg: RndConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let target = Mlp::new(
            &mut store,
            "rnd.target",
            &[cfg.state_len, cfg.hidden, cfg.embed_dim],
            Activation::Relu,
            &mut rng,
        );
        // Freeze the target by re-registering its params as frozen copies.
        // Simpler: build it in a scratch store, then add frozen.
        // (Mlp has no frozen mode, so rebuild parameters as frozen.)
        let mut frozen_store = ParamStore::new();
        for id in store.ids() {
            frozen_store.add_frozen(store.name(id).to_string(), store.value(id).clone());
        }
        let mut store = frozen_store;
        let predictor = Mlp::new(
            &mut store,
            "rnd.pred",
            &[cfg.state_len, cfg.hidden, cfg.embed_dim],
            Activation::Relu,
            &mut rng,
        );
        Self { cfg, store, target, predictor, buffer: Vec::new() }
    }

    /// Prediction error ‖pred(s) − target(s)‖² for one encoded state.
    pub fn prediction_error(&self, state: &[f32]) -> f32 {
        assert_eq!(state.len(), self.cfg.state_len, "state length mismatch");
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[1, self.cfg.state_len], state.to_vec()));
        let t = self.target.forward(&mut g, &self.store, x);
        let p = self.predictor.forward(&mut g, &self.store, x);
        let dim_n = self.cfg.embed_dim as f32;
        g.value(p).data().iter().zip(g.value(t).data()).map(|(a, b)| (a - b) * (a - b)).sum::<f32>()
            / dim_n
    }
}

impl Curiosity for Rnd {
    fn intrinsic_reward(&mut self, t: &TransitionView<'_>) -> f32 {
        let err = self.prediction_error(t.next_state);
        self.buffer.push(t.next_state.to_vec());
        self.cfg.eta * err
    }

    fn compute_grads(&mut self, minibatch: usize, rng: &mut StdRng) {
        if self.buffer.is_empty() {
            return;
        }
        let mut idx: Vec<usize> = (0..self.buffer.len()).collect();
        idx.shuffle(rng);
        idx.truncate(minibatch.max(1));
        let b = idx.len();
        let mut states = Vec::with_capacity(b * self.cfg.state_len);
        for &i in &idx {
            states.extend_from_slice(&self.buffer[i]);
        }
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(&[b, self.cfg.state_len], states));
        let t = self.target.forward(&mut g, &self.store, x);
        let p = self.predictor.forward(&mut g, &self.store, x);
        let d = g.sub(p, t);
        let sq = g.square(d);
        let loss = g.mean_all(sq);
        g.backward(loss, &mut self.store);
    }

    fn clear_buffer(&mut self) {
        self.buffer.clear();
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "rnd"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use vc_nn::optim::{Adam, Optimizer};

    fn view(next_state: &[f32]) -> TransitionView<'_> {
        TransitionView { state: &[], next_state, positions: &[], next_positions: &[], moves: &[] }
    }

    #[test]
    fn target_params_are_frozen_predictor_trainable() {
        let r = Rnd::new(RndConfig::for_state(12));
        let frozen: Vec<bool> = r.params().ids().map(|id| r.params().is_frozen(id)).collect();
        assert!(frozen.iter().any(|&f| f), "no frozen target params");
        assert!(frozen.iter().any(|&f| !f), "no trainable predictor params");
    }

    #[test]
    fn novel_states_are_rewarded() {
        let mut r = Rnd::new(RndConfig::for_state(8));
        let s = vec![0.3f32; 8];
        let reward = r.intrinsic_reward(&view(&s));
        assert!(reward > 0.0);
    }

    #[test]
    fn training_reduces_error_on_seen_state() {
        let mut r = Rnd::new(RndConfig::for_state(8));
        let s = vec![0.5f32; 8];
        let before = r.prediction_error(&s);
        let mut rng = StdRng::seed_from_u64(0);
        let mut opt = Adam::new(1e-2);
        for _ in 0..200 {
            r.intrinsic_reward(&view(&s));
            r.params_mut().zero_grads();
            r.compute_grads(16, &mut rng);
            opt.step(r.params_mut());
            r.clear_buffer();
        }
        let after = r.prediction_error(&s);
        assert!(after < before / 5.0, "RND error {before} -> {after}");
    }

    #[test]
    fn unseen_state_stays_curious_after_training() {
        let mut r = Rnd::new(RndConfig::for_state(8));
        let seen = vec![0.5f32; 8];
        let unseen = vec![-0.7f32, 0.9, -0.1, 0.4, -0.9, 0.2, 0.8, -0.3];
        let mut rng = StdRng::seed_from_u64(1);
        let mut opt = Adam::new(1e-2);
        for _ in 0..200 {
            r.intrinsic_reward(&view(&seen));
            r.params_mut().zero_grads();
            r.compute_grads(16, &mut rng);
            opt.step(r.params_mut());
            r.clear_buffer();
        }
        assert!(r.prediction_error(&unseen) > 3.0 * r.prediction_error(&seen));
    }

    #[test]
    #[should_panic(expected = "state length mismatch")]
    fn wrong_state_length_panics() {
        let r = Rnd::new(RndConfig::for_state(8));
        r.prediction_error(&[0.0; 4]);
    }
}
