//! The common interface every intrinsic-reward model implements, so the
//! DRL-CEWS trainer can swap spatial curiosity, RND, ICM, or nothing.

use rand::rngs::StdRng;
use vc_env::geometry::Point;
use vc_nn::param::ParamStore;

/// Everything an intrinsic-reward model may look at for one transition.
pub struct TransitionView<'a> {
    /// Encoded state `s_t` (flat `[C·G·G]`).
    pub state: &'a [f32],
    /// Encoded next state `s_{t+1}`.
    pub next_state: &'a [f32],
    /// Worker positions `l_t`.
    pub positions: &'a [Point],
    /// Worker positions `l_{t+1}`.
    pub next_positions: &'a [Point],
    /// Per-worker route-planning indices `v_t`.
    pub moves: &'a [usize],
}

/// An intrinsic-reward ("curiosity") model.
pub trait Curiosity: Send {
    /// Computes the intrinsic reward `r_t^{int}` for a transition and
    /// records it for later training.
    fn intrinsic_reward(&mut self, t: &TransitionView<'_>) -> f32;

    /// Samples a minibatch from the recorded transitions and accumulates
    /// training gradients into [`Self::params_mut`]. No-op while the episode
    /// buffer is empty.
    fn compute_grads(&mut self, minibatch: usize, rng: &mut StdRng);

    /// Clears the per-episode transition buffer.
    fn clear_buffer(&mut self);

    /// The model's parameter store (for the chief's flat exchange).
    fn params(&self) -> &ParamStore;

    /// Mutable access to the parameter store.
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Short identifier used in experiment reports.
    fn name(&self) -> &'static str;

    /// Downcast hook for spatial-curiosity visualizations (Fig. 9): models
    /// that can report a per-location prediction error override this.
    fn as_spatial(&self) -> Option<&crate::spatial::SpatialCuriosity> {
        None
    }
}

/// The "no curiosity" null object: zero intrinsic reward, no parameters.
#[derive(Debug, Default)]
pub struct NoCuriosity {
    store: ParamStore,
}

impl NoCuriosity {
    /// A fresh null model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Curiosity for NoCuriosity {
    fn intrinsic_reward(&mut self, _t: &TransitionView<'_>) -> f32 {
        0.0
    }
    fn compute_grads(&mut self, _minibatch: usize, _rng: &mut StdRng) {}
    fn clear_buffer(&mut self) {}
    fn params(&self) -> &ParamStore {
        &self.store
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn no_curiosity_is_inert() {
        let mut c = NoCuriosity::new();
        let view = TransitionView {
            state: &[0.0],
            next_state: &[0.0],
            positions: &[Point::new(0.0, 0.0)],
            next_positions: &[Point::new(1.0, 0.0)],
            moves: &[3],
        };
        assert_eq!(c.intrinsic_reward(&view), 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        c.compute_grads(32, &mut rng);
        assert!(c.params().is_empty());
        assert_eq!(c.name(), "none");
    }
}
