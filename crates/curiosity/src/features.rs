//! Position feature representations for the spatial curiosity model
//! (Section VII-D, "Feature Selection").
//!
//! Following Burda et al.'s observation that *static randomly initialized*
//! features are stable curiosity targets, both representations here are
//! frozen:
//!
//! * **direct** — the position scaled into `(0, 1)²` (2 dimensions);
//! * **embedding** — the position's grid cell looked up in a static random
//!   embedding table (8 dimensions in the paper). Two physically close
//!   cells can be far apart in embedding space, which the paper credits for
//!   the larger, more informative intrinsic rewards.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_env::geometry::Point;
use vc_nn::layers::Embedding;
use vc_nn::param::ParamStore;

/// Which position representation a curiosity model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Raw normalized coordinates (2-D).
    Direct,
    /// Static random embedding of the grid cell (8-D in the paper).
    Embedding,
}

/// Paper embedding width.
pub const EMBEDDING_DIM: usize = 8;

/// A frozen position-feature extractor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum PositionFeature {
    /// Normalized raw coordinates `(x/size_x, y/size_y)`.
    Direct {
        /// Space width.
        size_x: f32,
        /// Space height.
        size_y: f32,
    },
    /// Learned-table lookup of the discretized cell.
    Embedding {
        /// Grid resolution for cell discretization.
        grid: usize,
        /// Space width.
        size_x: f32,
        /// Space height.
        size_y: f32,
        /// Frozen embedding table, one row per cell.
        table: Embedding,
    },
}

impl PositionFeature {
    /// Builds an extractor; embedding tables are registered frozen in
    /// `store` (they receive no gradients).
    pub fn new(
        kind: FeatureKind,
        grid: usize,
        size_x: f32,
        size_y: f32,
        store: &mut ParamStore,
        name: &str,
        seed: u64,
    ) -> Self {
        match kind {
            FeatureKind::Direct => PositionFeature::Direct { size_x, size_y },
            FeatureKind::Embedding => {
                let mut rng = StdRng::seed_from_u64(seed);
                let table =
                    Embedding::new(store, name, grid * grid, EMBEDDING_DIM, false, &mut rng);
                PositionFeature::Embedding { grid, size_x, size_y, table }
            }
        }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            PositionFeature::Direct { .. } => 2,
            PositionFeature::Embedding { .. } => EMBEDDING_DIM,
        }
    }

    /// Extracts the feature `φ(l)` of a position.
    pub fn extract(&self, store: &ParamStore, p: &Point) -> Vec<f32> {
        match self {
            PositionFeature::Direct { size_x, size_y } => {
                vec![(p.x / size_x).clamp(0.0, 1.0), (p.y / size_y).clamp(0.0, 1.0)]
            }
            PositionFeature::Embedding { grid, size_x, size_y, table } => {
                let cx = ((p.x / size_x * *grid as f32) as usize).min(grid - 1);
                let cy = ((p.y / size_y * *grid as f32) as usize).min(grid - 1);
                table.lookup(store, cy * grid + cx)
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn direct_feature_scales_into_unit_square() {
        let mut store = ParamStore::new();
        let f = PositionFeature::new(FeatureKind::Direct, 16, 16.0, 16.0, &mut store, "f", 0);
        assert_eq!(f.dim(), 2);
        let v = f.extract(&store, &Point::new(8.0, 4.0));
        assert_eq!(v, vec![0.5, 0.25]);
        // Out-of-range positions clamp rather than explode.
        let v = f.extract(&store, &Point::new(-1.0, 99.0));
        assert_eq!(v, vec![0.0, 1.0]);
    }

    #[test]
    fn embedding_feature_has_paper_dim_and_is_frozen() {
        let mut store = ParamStore::new();
        let f = PositionFeature::new(FeatureKind::Embedding, 16, 16.0, 16.0, &mut store, "emb", 1);
        assert_eq!(f.dim(), EMBEDDING_DIM);
        assert_eq!(store.len(), 1);
        let id = store.ids().next().unwrap();
        assert!(store.is_frozen(id), "embedding table must be static");
    }

    #[test]
    fn embedding_same_cell_same_feature() {
        let mut store = ParamStore::new();
        let f = PositionFeature::new(FeatureKind::Embedding, 16, 16.0, 16.0, &mut store, "emb", 2);
        let a = f.extract(&store, &Point::new(3.1, 5.2));
        let b = f.extract(&store, &Point::new(3.9, 5.8));
        assert_eq!(a, b, "same cell must map to the same embedding");
        let c = f.extract(&store, &Point::new(4.1, 5.2));
        assert_ne!(a, c, "neighboring cell should differ");
    }

    #[test]
    fn embedding_can_separate_physically_close_cells() {
        // The paper's argument: adjacent cells can be far apart in embedding
        // space. Verify the embedding distance of neighbors is not tiny
        // compared to the distance of remote cells (statistically, random
        // embeddings make all pairs comparably distant).
        let mut store = ParamStore::new();
        let f = PositionFeature::new(FeatureKind::Embedding, 16, 16.0, 16.0, &mut store, "emb", 3);
        let d = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>().sqrt()
        };
        let base = f.extract(&store, &Point::new(1.5, 1.5));
        let near = f.extract(&store, &Point::new(2.5, 1.5));
        let far = f.extract(&store, &Point::new(14.5, 14.5));
        let dn = d(&base, &near);
        let df = d(&base, &far);
        assert!(dn > 0.3 * df, "near-cell distance {dn} collapsed vs far {df}");
    }

    #[test]
    fn embedding_deterministic_per_seed() {
        let mut s1 = ParamStore::new();
        let f1 = PositionFeature::new(FeatureKind::Embedding, 8, 8.0, 8.0, &mut s1, "e", 42);
        let mut s2 = ParamStore::new();
        let f2 = PositionFeature::new(FeatureKind::Embedding, 8, 8.0, 8.0, &mut s2, "e", 42);
        let p = Point::new(3.0, 3.0);
        assert_eq!(f1.extract(&s1, &p), f2.extract(&s2, &p));
    }
}
