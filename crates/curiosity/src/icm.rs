//! The full intrinsic curiosity module of Pathak et al. (CVPR 2017) —
//! the lineage the paper's spatial model descends from (Section V-C).
//!
//! Three networks on the *encoded full state*: an encoder `ϕ(s)`, a forward
//! model `f(ϕ(s), a) → ϕ̂(s')` whose error is the intrinsic reward, and an
//! inverse model `g(ϕ(s), ϕ(s')) → â` that grounds the encoder in
//! action-relevant features. Included as an additional comparator beyond the
//! paper's four spatial variants and RND.

use crate::traits::{Curiosity, TransitionView};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vc_nn::prelude::*;

const NUM_MOVES: usize = vc_env::action::NUM_MOVES;

/// ICM configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct IcmConfig {
    /// Flat length of the encoded state.
    pub state_len: usize,
    /// Encoder output width ϕ(s).
    pub embed_dim: usize,
    /// Hidden width of all three MLPs.
    pub hidden: usize,
    /// Number of workers (the inverse model predicts each worker's move).
    pub num_workers: usize,
    /// Intrinsic-reward scale η.
    pub eta: f32,
    /// Weight of the inverse loss relative to the forward loss.
    pub inverse_weight: f32,
    /// Seed for network initialization.
    pub seed: u64,
}

impl IcmConfig {
    /// Reasonable defaults for the crowdsensing state.
    pub fn for_state(state_len: usize, num_workers: usize) -> Self {
        Self {
            state_len,
            embed_dim: 16,
            hidden: 64,
            num_workers,
            eta: 0.3,
            inverse_weight: 0.5,
            seed: 31,
        }
    }
}

#[derive(Clone, Debug)]
struct IcmSample {
    state: Vec<f32>,
    next_state: Vec<f32>,
    moves: Vec<usize>,
}

/// The ICM intrinsic-reward model.
pub struct Icm {
    cfg: IcmConfig,
    store: ParamStore,
    encoder: Mlp,
    forward_model: Mlp,
    inverse_model: Mlp,
    buffer: Vec<IcmSample>,
}

impl Icm {
    /// Builds the three networks.
    pub fn new(cfg: IcmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let encoder = Mlp::new(
            &mut store,
            "icm.enc",
            &[cfg.state_len, cfg.hidden, cfg.embed_dim],
            Activation::Relu,
            &mut rng,
        );
        let forward_model = Mlp::new(
            &mut store,
            "icm.fwd",
            &[cfg.embed_dim + cfg.num_workers * NUM_MOVES, cfg.hidden, cfg.embed_dim],
            Activation::Relu,
            &mut rng,
        );
        let inverse_model = Mlp::new(
            &mut store,
            "icm.inv",
            &[2 * cfg.embed_dim, cfg.hidden, cfg.num_workers * NUM_MOVES],
            Activation::Relu,
            &mut rng,
        );
        Self { cfg, store, encoder, forward_model, inverse_model, buffer: Vec::new() }
    }

    fn one_hot_moves(&self, moves: &[usize]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.cfg.num_workers * NUM_MOVES];
        for (wi, &m) in moves.iter().enumerate() {
            v[wi * NUM_MOVES + m] = 1.0;
        }
        v
    }

    /// Forward-model prediction error for one transition.
    pub fn prediction_error(&self, state: &[f32], moves: &[usize], next_state: &[f32]) -> f32 {
        let mut g = Graph::new();
        let s = g.leaf(Tensor::from_vec(&[1, self.cfg.state_len], state.to_vec()));
        let sn = g.leaf(Tensor::from_vec(&[1, self.cfg.state_len], next_state.to_vec()));
        let phi = self.encoder.forward(&mut g, &self.store, s);
        let phi_n = self.encoder.forward(&mut g, &self.store, sn);
        let a = g.leaf(Tensor::from_vec(
            &[1, self.cfg.num_workers * NUM_MOVES],
            self.one_hot_moves(moves),
        ));
        let joined = g.concat_cols(phi, a);
        let pred = self.forward_model.forward(&mut g, &self.store, joined);
        let dim_n = self.cfg.embed_dim as f32;
        g.value(pred)
            .data()
            .iter()
            .zip(g.value(phi_n).data())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            / dim_n
    }
}

impl Curiosity for Icm {
    fn intrinsic_reward(&mut self, t: &TransitionView<'_>) -> f32 {
        let err = self.prediction_error(t.state, t.moves, t.next_state);
        self.buffer.push(IcmSample {
            state: t.state.to_vec(),
            next_state: t.next_state.to_vec(),
            moves: t.moves.to_vec(),
        });
        self.cfg.eta * err
    }

    fn compute_grads(&mut self, minibatch: usize, rng: &mut StdRng) {
        if self.buffer.is_empty() {
            return;
        }
        let mut idx: Vec<usize> = (0..self.buffer.len()).collect();
        idx.shuffle(rng);
        idx.truncate(minibatch.max(1));
        let b = idx.len();
        let (sl, w) = (self.cfg.state_len, self.cfg.num_workers);

        let mut states = Vec::with_capacity(b * sl);
        let mut next_states = Vec::with_capacity(b * sl);
        let mut onehots = Vec::with_capacity(b * w * NUM_MOVES);
        let mut flat_moves = Vec::with_capacity(b * w);
        for &i in &idx {
            let s = &self.buffer[i];
            states.extend_from_slice(&s.state);
            next_states.extend_from_slice(&s.next_state);
            onehots.extend(self.one_hot_moves(&s.moves));
            flat_moves.extend_from_slice(&s.moves);
        }

        let mut g = Graph::new();
        let s = g.leaf(Tensor::from_vec(&[b, sl], states));
        let sn = g.leaf(Tensor::from_vec(&[b, sl], next_states));
        let phi = self.encoder.forward(&mut g, &self.store, s);
        let phi_n = self.encoder.forward(&mut g, &self.store, sn);

        // Forward loss (intrinsic-reward objective).
        let a = g.leaf(Tensor::from_vec(&[b, w * NUM_MOVES], onehots));
        let joined = g.concat_cols(phi, a);
        let pred = self.forward_model.forward(&mut g, &self.store, joined);
        let d = g.sub(pred, phi_n);
        let sq = g.square(d);
        let forward_loss = g.mean_all(sq);

        // Inverse loss: per-worker move classification from (ϕ, ϕ').
        let pair = g.concat_cols(phi, phi_n);
        let logits = self.inverse_model.forward(&mut g, &self.store, pair);
        let per_worker = g.reshape(logits, &[b * w, NUM_MOVES]);
        let lsm = g.log_softmax(per_worker);
        let picked = g.pick_column(lsm, flat_moves);
        let nll = g.neg(picked);
        let inverse_loss = g.mean_all(nll);

        let weighted = g.scale(inverse_loss, self.cfg.inverse_weight);
        let loss = g.add(forward_loss, weighted);
        g.backward(loss, &mut self.store);
    }

    fn clear_buffer(&mut self) {
        self.buffer.clear();
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn name(&self) -> &'static str {
        "icm"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use vc_nn::optim::{Adam, Optimizer};

    fn sample_view<'a>(s: &'a [f32], sn: &'a [f32], mv: &'a [usize]) -> TransitionView<'a> {
        TransitionView { state: s, next_state: sn, positions: &[], next_positions: &[], moves: mv }
    }

    #[test]
    fn reward_positive_for_fresh_model() {
        let mut icm = Icm::new(IcmConfig::for_state(10, 2));
        let s = vec![0.1f32; 10];
        let sn = vec![0.4f32; 10];
        let mv = vec![1usize, 5];
        assert!(icm.intrinsic_reward(&sample_view(&s, &sn, &mv)) > 0.0);
    }

    #[test]
    fn all_three_networks_receive_grads() {
        let mut icm = Icm::new(IcmConfig::for_state(10, 1));
        let s = vec![0.1f32; 10];
        let sn = vec![0.4f32; 10];
        let mv = vec![2usize];
        icm.intrinsic_reward(&sample_view(&s, &sn, &mv));
        let mut rng = StdRng::seed_from_u64(0);
        icm.params_mut().zero_grads();
        icm.compute_grads(8, &mut rng);
        let mut missing = Vec::new();
        for id in icm.params().ids() {
            // Final-layer biases of the encoder may legitimately get tiny
            // grads, but every *network* must receive some gradient.
            if icm.params().grad(id).l2_norm() == 0.0 {
                missing.push(icm.params().name(id).to_string());
            }
        }
        let nets = ["icm.enc", "icm.fwd", "icm.inv"];
        for net in nets {
            assert!(
                !missing.iter().filter(|n| n.starts_with(net)).count().eq(&{
                    icm.params().ids().filter(|&i| icm.params().name(i).starts_with(net)).count()
                }),
                "no gradient reached {net}"
            );
        }
    }

    #[test]
    fn training_fades_curiosity_on_repeated_transition() {
        let mut icm = Icm::new(IcmConfig::for_state(6, 1));
        let s = vec![0.2f32; 6];
        let sn = vec![0.8f32; 6];
        let mv = vec![4usize];
        let before = icm.prediction_error(&s, &mv, &sn);
        let mut rng = StdRng::seed_from_u64(1);
        let mut opt = Adam::new(1e-2);
        for _ in 0..150 {
            icm.intrinsic_reward(&sample_view(&s, &sn, &mv));
            icm.params_mut().zero_grads();
            icm.compute_grads(16, &mut rng);
            opt.step(icm.params_mut());
            icm.clear_buffer();
        }
        let after = icm.prediction_error(&s, &mv, &sn);
        assert!(after < before, "ICM error {before} -> {after}");
    }
}
