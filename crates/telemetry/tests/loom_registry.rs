//! Loom model checking for the telemetry registry handle path
//! (`crates/telemetry/src/lib.rs`): racing registrations must converge on
//! one shared metric instance, and lock-free recording through the
//! returned handles must stay exact.
//!
//! Run via `cargo xtask analyze --loom`; empty without `--cfg loom`.

#![cfg(loom)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_telemetry::Telemetry;

/// Two threads racing `counter("x")` on first use must get the *same*
/// counter (entry-or-insert under the registry lock), so their increments
/// land on one instance: the total is exactly 2 in every interleaving.
#[test]
fn racing_registrations_share_one_counter() {
    loom::model(|| {
        let t = Telemetry::new();
        let t1 = t.clone();
        let t2 = t.clone();
        let a = loom::thread::spawn(move || t1.counter("x").inc());
        let b = loom::thread::spawn(move || t2.counter("x").inc());
        a.join().unwrap();
        b.join().unwrap();
        assert_eq!(t.counter("x").get(), 2, "registrations must converge on one instance");
    });
}

/// The enabled flag races a recording thread: the record may land or not
/// depending on the interleaving, but the counter may only ever read 0 or
/// 1 — never a torn or duplicated tick — and the flag itself settles.
#[test]
fn enabled_toggle_races_recording_safely() {
    loom::model(|| {
        let t = Telemetry::new();
        let rec = {
            let t = t.clone();
            loom::thread::spawn(move || {
                if t.is_on() {
                    t.counter("ticks").inc();
                }
            })
        };
        t.set_on(false);
        rec.join().unwrap();
        let got = t.counter("ticks").get();
        assert!(got <= 1, "a race may drop a tick but never invent one (got {got})");
        assert!(!t.is_on());
    });
}

/// Concurrent histogram observes through cached handles: bucket counts,
/// total count, and the CAS-maintained sum must all be exact in every
/// interleaving.
#[test]
fn concurrent_observes_stay_exact() {
    loom::model(|| {
        let t = Telemetry::new();
        let h1 = t.histogram("h", &[1.0]);
        let h2 = t.histogram("h", &[1.0]);
        let a = loom::thread::spawn(move || h1.observe(0.5));
        let b = loom::thread::spawn(move || h2.observe(2.0));
        a.join().unwrap();
        b.join().unwrap();
        let snap = t.histogram("h", &[1.0]).snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.buckets, vec![1, 1], "one observation per bucket");
        assert!((snap.sum - 2.5).abs() < 1e-12, "CAS sum lost an update: {}", snap.sum);
    });
}
