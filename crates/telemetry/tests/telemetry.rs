//! Integration tests for `vc_telemetry`: bucket semantics, saturation,
//! multi-threaded recording determinism, JSONL sink line-atomicity, and the
//! disabled-handle guarantee.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test assertions may abort loudly

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use vc_telemetry::{Field, Telemetry, SPAN_SECONDS_BOUNDS};

/// A fresh per-test temp dir (process-unique, cleaned up at start).
fn test_dir(name: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vc_telemetry_{name}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn histogram_bucket_boundaries_are_le() {
    let t = Telemetry::new();
    let h = t.histogram("bounds", &[1.0, 2.0, 4.0]);
    // Prometheus `le` semantics: a value exactly on a bound lands in that
    // bound's bucket, one ulp above lands in the next.
    h.observe(1.0);
    h.observe(f64::from_bits(1.0f64.to_bits() + 1));
    h.observe(2.0);
    h.observe(4.0);
    h.observe(4.000001);
    h.observe(-3.0); // below every bound → first bucket
    let snap = h.snapshot();
    assert_eq!(snap.bounds, vec![1.0, 2.0, 4.0]);
    assert_eq!(snap.buckets, vec![2, 2, 1, 1]);
    assert_eq!(snap.count, 6);
}

#[test]
fn histogram_non_finite_goes_to_overflow_without_poisoning_sum() {
    let t = Telemetry::new();
    let h = t.histogram("nf", &[1.0]);
    h.observe(0.5);
    h.observe(f64::NAN);
    h.observe(f64::INFINITY);
    let snap = h.snapshot();
    assert_eq!(snap.buckets, vec![1, 2]);
    assert_eq!(snap.count, 3);
    assert_eq!(snap.sum, 0.5); // non-finite contributed nothing
}

#[test]
fn counter_saturates_at_max() {
    let t = Telemetry::new();
    let c = t.counter("sat");
    c.add(u64::MAX - 1);
    c.add(5);
    assert_eq!(c.get(), u64::MAX);
    c.inc();
    assert_eq!(c.get(), u64::MAX); // saturated, never wraps to 0
}

#[test]
fn eight_threads_record_deterministic_totals() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let t = Telemetry::new();
    // Pre-register so all threads share the same handles.
    let c = t.counter("mt_total");
    let h = t.histogram("mt_hist", &[10.0, 100.0, 1000.0]);
    thread::scope(|scope| {
        for _tid in 0..THREADS {
            let c = &c;
            let h = &h;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    // Values 0..4 are exactly representable and sum exactly
                    // in any order, so the final sum is deterministic.
                    h.observe((i % 5) as f64);
                }
            });
        }
    });
    assert_eq!(c.get(), THREADS * PER_THREAD);
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    // Each thread contributes 2000 each of {0,1,2,3,4}: sum = 2000·10 per thread.
    assert_eq!(snap.sum, (THREADS * PER_THREAD * 2) as f64);
    // All values ≤ 10 → everything in the first bucket.
    assert_eq!(snap.buckets, vec![THREADS * PER_THREAD, 0, 0, 0]);
}

#[test]
fn jsonl_sink_lines_are_atomic_under_concurrency() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 200;
    let dir = test_dir("jsonl_atomic");
    let path = dir.join("events.jsonl");
    let t = Telemetry::new();
    t.attach_jsonl(&path).unwrap();
    thread::scope(|scope| {
        for tid in 0..THREADS {
            let t = t.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    t.event(
                        "burst",
                        &[
                            ("thread", Field::U64(tid as u64)),
                            ("i", Field::U64(i as u64)),
                            ("payload", Field::Str("x\"y\\z")),
                        ],
                    );
                }
            });
        }
    });
    t.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), THREADS * PER_THREAD);
    let mut seqs = Vec::with_capacity(lines.len());
    for line in &lines {
        // Every line must parse as a self-contained JSON object with the
        // standard envelope — no torn or interleaved writes.
        let v: serde::Value = serde_json::from_str(line).expect("line must be valid JSON");
        assert_eq!(v.get("type").and_then(serde::Value::as_str), Some("burst"));
        assert_eq!(v.get("payload").and_then(serde::Value::as_str), Some("x\"y\\z"));
        seqs.push(v.get("seq").and_then(serde::Value::as_u64).expect("seq"));
    }
    // Sequence numbers cover 0..N exactly once (every event landed once).
    seqs.sort_unstable();
    assert_eq!(seqs, (0..(THREADS * PER_THREAD) as u64).collect::<Vec<_>>());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_handle_writes_no_events() {
    let dir = test_dir("disabled");
    let path = dir.join("events.jsonl");
    let t = Telemetry::off();
    t.attach_jsonl(&path).unwrap();
    t.event("should_not_appear", &[("x", Field::U64(1))]);
    t.span("should_not_record").finish();
    t.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.is_empty(), "disabled handle must write nothing, got: {text:?}");
    assert_eq!(t.histogram("should_not_record", &SPAN_SECONDS_BOUNDS).count(), 0);
    // Flipping the shared flag re-enables every clone.
    t.set_on(true);
    t.event("now_visible", &[]);
    t.flush().unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(text.lines().count(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn prometheus_dump_schema() {
    let t = Telemetry::new();
    t.counter("z_total").add(3);
    t.gauge("a_gauge").set(0.25);
    t.histogram("lat_seconds", &[0.1, 1.0]).observe(0.05);
    let text = t.prometheus();
    // Counters, then gauges, then histograms; names sorted within a kind.
    let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
    assert_eq!(
        type_lines,
        vec!["# TYPE z_total counter", "# TYPE a_gauge gauge", "# TYPE lat_seconds histogram"]
    );
    assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"));
    assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("lat_seconds_sum 0.05"));
    assert!(text.contains("lat_seconds_count 1"));
}
